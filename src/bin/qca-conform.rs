//! Seeded differential conformance campaigns from the command line.
//!
//! ```text
//! qca-conform --seed 7 --cases 200       # run a campaign; exit 0 iff all engines agree
//! qca-conform --replay 81985529216486895 # re-run one case by its seed, verbosely
//! qca-conform --cases 200 --fail-file failing-seeds.txt
//! qca-conform --cases 200 --clifford-only --min-tableau 200 --min-frame 80
//! ```
//!
//! Each case is a randomly generated cQASM program (including mid-circuit
//! measurement, binary-controlled gates, resets and stabilizer-code ESM
//! rounds) executed through every engine in the stack — the independent
//! reference oracle, the interpreter, the compiled plan, sharded shot
//! ranges, and (on Clifford-class cases) the CHP tableau executor and
//! Pauli-frame sampler with 1/2/4-worker shard splits — which must
//! produce bit-identical histograms, plus a statistical check of the
//! density-matrix engine where it applies. Campaigns are bit-reproducible:
//! a failing case prints its seed, `--replay <seed>` reproduces it
//! exactly, and `--fail-file` writes the failing seeds one per line (for
//! CI artifact upload).
//!
//! `--clifford-only` restricts generation to the Clifford-family shapes;
//! `--min-tableau` / `--min-frame` are coverage floors: the campaign fails
//! if fewer cases exercised the corresponding stabilizer engine, so CI
//! cannot silently stop covering the fast paths.

use qca_core::conform::{run_campaign_filtered, run_case};
use std::process::ExitCode;

struct Args {
    seed: u64,
    cases: u64,
    replay: Option<u64>,
    fail_file: Option<String>,
    clifford_only: bool,
    min_tableau: u64,
    min_frame: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        cases: 200,
        replay: None,
        fail_file: None,
        clifford_only: false,
        min_tableau: 0,
        min_frame: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let parse = |name: &str, v: String| -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = parse("--seed", take("--seed")?)?,
            "--cases" => args.cases = parse("--cases", take("--cases")?)?,
            "--replay" => args.replay = Some(parse("--replay", take("--replay")?)?),
            "--fail-file" => args.fail_file = Some(take("--fail-file")?),
            "--clifford-only" => args.clifford_only = true,
            "--min-tableau" => args.min_tableau = parse("--min-tableau", take("--min-tableau")?)?,
            "--min-frame" => args.min_frame = parse("--min-frame", take("--min-frame")?)?,
            "--help" | "-h" => return Err(
                "usage: qca-conform [--seed N] [--cases M] [--replay CASE_SEED] [--fail-file PATH] [--clifford-only] [--min-tableau N] [--min-frame N]"
                    .to_string(),
            ),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(seed) = args.replay {
        let case = run_case(seed);
        println!("case seed   : {}", case.seed);
        println!("shape       : {:?}", case.shape);
        println!("shots       : {}", case.shots);
        println!("--- source ---\n{}--------------", case.source);
        return match &case.detail {
            None => {
                println!("outcome     : ok (all engines bit-identical)");
                ExitCode::SUCCESS
            }
            Some(detail) => {
                println!("outcome     : DIVERGED: {detail}");
                ExitCode::FAILURE
            }
        };
    }

    let report = run_campaign_filtered(args.seed, args.cases, args.clifford_only);
    println!(
        "conformance campaign: seed {} cases {} -> {} passed, {} diverged",
        args.seed,
        report.cases,
        report.passed,
        report.failures.len()
    );
    println!(
        "stabilizer coverage : tableau {} cases, pauli-frame {} cases",
        report.tableau_cases, report.frame_cases
    );
    for case in &report.failures {
        println!(
            "  DIVERGED case seed {} ({:?}, replay with --replay {}): {}",
            case.seed,
            case.shape,
            case.seed,
            case.detail.as_deref().unwrap_or("<no detail>")
        );
    }
    if let Some(path) = &args.fail_file {
        let body: String = report
            .failures
            .iter()
            .map(|c| format!("{}\n", c.seed))
            .collect();
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write failing seeds to {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !report.failures.is_empty() {
            println!("failing seeds written to {path}");
        }
    }
    let mut floor_failed = false;
    if report.tableau_cases < args.min_tableau {
        println!(
            "COVERAGE FLOOR: only {} tableau cases (< {})",
            report.tableau_cases, args.min_tableau
        );
        floor_failed = true;
    }
    if report.frame_cases < args.min_frame {
        println!(
            "COVERAGE FLOOR: only {} pauli-frame cases (< {})",
            report.frame_cases, args.min_frame
        );
        floor_failed = true;
    }
    if report.failures.is_empty() && !floor_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
