//! Seeded service-layer chaos campaigns from the command line.
//!
//! ```text
//! qca-chaos-serve --seed 7 --cases 200   # run a campaign; exit 0 iff every invariant held
//! qca-chaos-serve --replay 1234567890    # re-run one case by its seed, verbosely
//! qca-chaos-serve --cases 200 --fail-file failing-seeds.txt
//! ```
//!
//! Each case spins up a live in-process `qca-service` (and, for the wire
//! scenarios, a real TCP front-end on a loopback port) and injects one
//! fault: a worker panic, transient execution faults, retry exhaustion,
//! a mid-`wait` cancellation, an abrupt `shutdown_now`, an oversized or
//! malformed frame, or a client that vanishes mid-conversation. The case
//! passes only if every job reaches a terminal state, the worker pool
//! heals to its configured size, successful histograms stay bit-identical
//! to a fault-free run, and the front-end keeps serving other clients.
//! Campaigns are bit-reproducible: a failing case prints its seed,
//! `--replay <seed>` reproduces it exactly, and `--fail-file` writes the
//! failing seeds one per line (for CI artifact upload).

use qca_service::chaos::{run_campaign, run_case};
use std::process::ExitCode;

struct Args {
    seed: u64,
    cases: u64,
    replay: Option<u64>,
    fail_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        cases: 200,
        replay: None,
        fail_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let parse = |name: &str, v: String| -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = parse("--seed", take("--seed")?)?,
            "--cases" => args.cases = parse("--cases", take("--cases")?)?,
            "--replay" => args.replay = Some(parse("--replay", take("--replay")?)?),
            "--fail-file" => args.fail_file = Some(take("--fail-file")?),
            "--help" | "-h" => return Err(
                "usage: qca-chaos-serve [--seed N] [--cases M] [--replay CASE_SEED] [--fail-file PATH]"
                    .to_string(),
            ),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(seed) = args.replay {
        let case = run_case(seed);
        println!("case seed   : {}", case.seed);
        println!("scenario    : {:?}", case.scenario);
        return match &case.failure {
            None => {
                println!("outcome     : ok (all serving invariants held)");
                ExitCode::SUCCESS
            }
            Some(detail) => {
                println!("outcome     : FAILED: {detail}");
                ExitCode::FAILURE
            }
        };
    }

    let report = run_campaign(args.seed, args.cases);
    println!(
        "service chaos campaign: seed {} cases {} -> {} passed, {} failed",
        args.seed,
        report.cases,
        report.passed,
        report.failures.len()
    );
    for case in &report.failures {
        println!(
            "  FAILED case seed {} ({:?}, replay with --replay {}): {}",
            case.seed,
            case.scenario,
            case.seed,
            case.failure.as_deref().unwrap_or("<no detail>")
        );
    }
    if let Some(path) = &args.fail_file {
        let body: String = report
            .failures
            .iter()
            .map(|c| format!("{}\n", c.seed))
            .collect();
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write failing seeds to {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !report.failures.is_empty() {
            println!("failing seeds written to {path}");
        }
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
