//! The accelerator serving daemon: a job queue, compiled-plan cache and
//! worker pool behind a newline-delimited JSON TCP front-end.
//!
//! ```text
//! qca-serve                              # serve on 127.0.0.1:7878
//! qca-serve --addr 127.0.0.1:9000 --workers 4 --queue 512 --cache 128
//! qca-serve --smoke                      # self-test: in-process client,
//!                                        # 3 jobs, assert a cache hit
//! ```
//!
//! One JSON request per line, one JSON response per line; see
//! `qca_service::wire` for the verbs. `--smoke` exists so CI can exercise
//! the whole serving path (TCP included, on an OS-assigned port) without
//! external tooling.

use qca_service::{Service, ServiceConfig, TcpServer};
use qca_telemetry::Telemetry;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    cache: usize,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        workers: 2,
        queue: 256,
        cache: 64,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let parse = |name: &str, v: String| -> Result<usize, String> {
            v.parse::<usize>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = take("--addr")?,
            "--workers" => args.workers = parse("--workers", take("--workers")?)?,
            "--queue" => args.queue = parse("--queue", take("--queue")?)?,
            "--cache" => args.cache = parse("--cache", take("--cache")?)?,
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                return Err(
                    "usage: qca-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--smoke]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServiceConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        cache_capacity: args.cache,
        ..ServiceConfig::default()
    };
    let service = Service::with_telemetry(config, Telemetry::enabled());
    if args.smoke {
        return smoke_test(&service);
    }
    let server = match TcpServer::bind(&args.addr, service.handle()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qca-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "qca-serve: listening on {} ({} workers, queue {}, cache {})",
        server.local_addr(),
        args.workers,
        args.queue,
        args.cache
    );
    // Serve until killed; the accept loop owns the listener.
    loop {
        std::thread::park();
    }
}

/// Self-test for CI: start the TCP front-end on an OS-assigned port,
/// submit three jobs over the socket (two identical, so the second must
/// hit the plan cache), and check every response parses as JSON.
fn smoke_test(service: &Service) -> ExitCode {
    let bell = "qubits 2\\nh q[0]\\ncnot q[0], q[1]\\nmeasure_all\\n";
    let ghz = "qubits 3\\nh q[0]\\ncnot q[0], q[1]\\ncnot q[1], q[2]\\nmeasure_all\\n";
    let requests = [
        format!("{{\"verb\":\"submit\",\"circuit\":\"{bell}\",\"shots\":500,\"seed\":1}}"),
        format!("{{\"verb\":\"submit\",\"circuit\":\"{ghz}\",\"shots\":500,\"seed\":2}}"),
        // Duplicate of the first circuit: must be served from the cache.
        format!("{{\"verb\":\"submit\",\"circuit\":\"{bell}\",\"shots\":500,\"seed\":3}}"),
    ];
    let server = match TcpServer::bind("127.0.0.1:0", service.handle()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: cannot bind loopback: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = || -> Result<(), String> {
        let stream = TcpStream::connect(server.local_addr()).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut writer = stream;
        let mut ask = |line: &str| -> Result<qca_telemetry::json::JsonValue, String> {
            writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .map_err(|e| e.to_string())?;
            let mut response = String::new();
            reader.read_line(&mut response).map_err(|e| e.to_string())?;
            qca_telemetry::json::parse(&response)
                .map_err(|e| format!("invalid JSON response {response:?}: {e}"))
        };
        // Submit → result, one job at a time: by the time the duplicate
        // circuit is submitted, its plan is guaranteed to be cached.
        for request in &requests {
            let response = ask(request)?;
            let job = response
                .get("job")
                .and_then(qca_telemetry::json::JsonValue::as_f64)
                .ok_or_else(|| format!("submit did not return a job id: {response:?}"))?
                as u64;
            let response = ask(&format!(
                "{{\"verb\":\"result\",\"job\":{job},\"timeout_ms\":60000}}"
            ))?;
            let shots = response
                .get("shots")
                .and_then(qca_telemetry::json::JsonValue::as_f64)
                .ok_or_else(|| format!("no shots in result: {response:?}"))?;
            if shots as u64 != 500 {
                return Err(format!("job {job}: expected 500 shots, got {shots}"));
            }
        }
        let stats = ask("{\"verb\":\"stats\"}")?;
        let hits = stats
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(qca_telemetry::json::JsonValue::as_f64)
            .ok_or_else(|| format!("no cache stats: {stats:?}"))?;
        if hits < 1.0 {
            return Err(format!(
                "duplicate submission did not hit the plan cache: {stats:?}"
            ));
        }
        println!("smoke: 3 jobs served over TCP, {hits} cache hit(s)");
        Ok(())
    };
    let result = run();
    server.stop();
    match result {
        Ok(()) => {
            println!("smoke: ok");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("smoke: FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}
