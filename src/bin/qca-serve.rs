//! The accelerator serving daemon: a job queue, compiled-plan cache and
//! worker pool behind a newline-delimited JSON TCP front-end.
//!
//! ```text
//! qca-serve                              # serve on 127.0.0.1:7878
//! qca-serve --addr 127.0.0.1:9000 --workers 4 --queue 512 --cache 128
//! qca-serve --max-frame 65536 --max-conns 32
//! qca-serve --trace-sample 1            # emit lifecycle spans for every job
//! qca-serve --tenant batch:1 --tenant interactive:4:32
//!                                        # weighted fair dequeue lanes
//!                                        # (NAME:WEIGHT[:QUOTA], repeatable)
//! qca-serve --snapshot /var/lib/qca/plans.qpsn
//!                                        # warm the plan cache from disk and
//!                                        # persist it periodically + on stop
//! qca-serve --smoke                      # self-test: in-process client,
//!                                        # 3 jobs + abuse probes
//! ```
//!
//! One JSON request per line, one JSON response per line; see
//! `qca_service::wire` for the verbs. The front-end is hardened: frames
//! over `--max-frame` bytes draw a `frame_too_large` error, stalled
//! clients are disconnected, and connections beyond `--max-conns` are
//! shed with an `overloaded` response. `--smoke` exists so CI can
//! exercise the whole serving path (TCP included, on an OS-assigned
//! port) without external tooling — including an oversized frame, a
//! malformed request and an abrupt client disconnect.

use qca_service::{Service, ServiceConfig, TcpConfig, TcpServer, TenantConfig};
use qca_telemetry::Telemetry;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// How often the daemon re-persists the plan cache when `--snapshot` is
/// configured (stop-time saving alone would lose the cache on SIGKILL).
const SNAPSHOT_INTERVAL: Duration = Duration::from_secs(30);

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    cache: usize,
    max_frame: usize,
    max_conns: usize,
    trace_sample: u64,
    tenants: Vec<TenantConfig>,
    snapshot: Option<PathBuf>,
    smoke: bool,
}

/// Parses one `--tenant` value: `NAME:WEIGHT[:QUOTA]`.
fn parse_tenant(value: &str) -> Result<TenantConfig, String> {
    let mut parts = value.split(':');
    let name = parts
        .next()
        .filter(|n| !n.is_empty())
        .ok_or_else(|| format!("bad --tenant {value:?}: empty name"))?;
    let weight = parts
        .next()
        .ok_or_else(|| format!("bad --tenant {value:?}: expected NAME:WEIGHT[:QUOTA]"))?
        .parse::<u32>()
        .map_err(|e| format!("bad --tenant {value:?}: weight: {e}"))?;
    let tenant = TenantConfig::new(name, weight);
    match parts.next() {
        None => Ok(tenant),
        Some(quota) => {
            let quota = quota
                .parse::<usize>()
                .map_err(|e| format!("bad --tenant {value:?}: quota: {e}"))?;
            Ok(tenant.with_quota(quota))
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let defaults = TcpConfig::default();
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        workers: 2,
        queue: 256,
        cache: 64,
        max_frame: defaults.max_request_bytes,
        max_conns: defaults.max_connections,
        trace_sample: ServiceConfig::default().trace_sample_n,
        tenants: Vec::new(),
        snapshot: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let parse = |name: &str, v: String| -> Result<usize, String> {
            v.parse::<usize>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = take("--addr")?,
            "--workers" => args.workers = parse("--workers", take("--workers")?)?,
            "--queue" => args.queue = parse("--queue", take("--queue")?)?,
            "--cache" => args.cache = parse("--cache", take("--cache")?)?,
            "--max-frame" => args.max_frame = parse("--max-frame", take("--max-frame")?)?,
            "--max-conns" => args.max_conns = parse("--max-conns", take("--max-conns")?)?,
            "--trace-sample" => {
                args.trace_sample = take("--trace-sample")?
                    .parse::<u64>()
                    .map_err(|e| format!("bad value for --trace-sample: {e}"))?;
            }
            "--tenant" => args.tenants.push(parse_tenant(&take("--tenant")?)?),
            "--snapshot" => args.snapshot = Some(PathBuf::from(take("--snapshot")?)),
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                return Err(
                    "usage: qca-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--max-frame BYTES] [--max-conns N] [--trace-sample N] [--tenant NAME:WEIGHT[:QUOTA]]... [--snapshot PATH] [--smoke]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServiceConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        cache_capacity: args.cache,
        trace_sample_n: args.trace_sample,
        tenants: args.tenants.clone(),
        snapshot_path: args.snapshot.clone(),
        ..ServiceConfig::default()
    };
    let tcp_config = TcpConfig {
        max_request_bytes: args.max_frame.max(1),
        max_connections: args.max_conns.max(1),
        ..TcpConfig::default()
    };
    let service = Service::with_telemetry(config, Telemetry::enabled());
    if let Some(path) = &args.snapshot {
        match service.handle().warm_status() {
            Some(Ok(report)) => println!(
                "qca-serve: warm start from {}: {} of {} entries loaded ({} skipped, {} rekeyed)",
                path.display(),
                report.loaded,
                report.entries,
                report.skipped,
                report.rekeyed
            ),
            Some(Err(e)) => eprintln!(
                "qca-serve: snapshot {} unusable ({e}); starting cold",
                path.display()
            ),
            None => println!(
                "qca-serve: no snapshot at {}; starting cold",
                path.display()
            ),
        }
    }
    if args.smoke {
        return smoke_test(&service, tcp_config);
    }
    let server = match TcpServer::bind_with(&args.addr, service.handle(), tcp_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qca-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "qca-serve: listening on {} ({} workers, queue {}, cache {}, max frame {} B, max conns {}, tenants {})",
        server.local_addr(),
        args.workers,
        args.queue,
        args.cache,
        tcp_config.max_request_bytes,
        tcp_config.max_connections,
        service.handle().stats().tenants.len()
    );
    // Serve until killed; the accept loop owns the listener. With a
    // snapshot configured, re-persist the cache periodically so a hard
    // kill loses at most one interval of compilations.
    match &args.snapshot {
        Some(path) => loop {
            std::thread::sleep(SNAPSHOT_INTERVAL);
            if let Err(e) = service.handle().save_snapshot(path) {
                eprintln!("qca-serve: snapshot save failed: {e}");
            }
        },
        None => loop {
            std::thread::park();
        },
    }
}

/// Self-test for CI: start the TCP front-end on an OS-assigned port,
/// submit three jobs over the socket (two identical, so the second must
/// hit the plan cache), check every response parses as JSON, then abuse
/// the front-end — an oversized frame, malformed JSON and an abrupt
/// disconnect — and verify the daemon keeps serving afterwards.
fn smoke_test(service: &Service, tcp_config: TcpConfig) -> ExitCode {
    let bell = "qubits 2\\nh q[0]\\ncnot q[0], q[1]\\nmeasure_all\\n";
    let ghz = "qubits 3\\nh q[0]\\ncnot q[0], q[1]\\ncnot q[1], q[2]\\nmeasure_all\\n";
    let requests = [
        format!("{{\"verb\":\"submit\",\"circuit\":\"{bell}\",\"shots\":500,\"seed\":1}}"),
        format!("{{\"verb\":\"submit\",\"circuit\":\"{ghz}\",\"shots\":500,\"seed\":2}}"),
        // Duplicate of the first circuit: must be served from the cache.
        format!("{{\"verb\":\"submit\",\"circuit\":\"{bell}\",\"shots\":500,\"seed\":3}}"),
    ];
    let server = match TcpServer::bind_with("127.0.0.1:0", service.handle(), tcp_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: cannot bind loopback: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = || -> Result<(), String> {
        let stream = TcpStream::connect(server.local_addr()).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut writer = stream;
        let mut ask = |line: &str| -> Result<qca_telemetry::json::JsonValue, String> {
            writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .map_err(|e| e.to_string())?;
            let mut response = String::new();
            reader.read_line(&mut response).map_err(|e| e.to_string())?;
            qca_telemetry::json::parse(&response)
                .map_err(|e| format!("invalid JSON response {response:?}: {e}"))
        };
        // Submit → result, one job at a time: by the time the duplicate
        // circuit is submitted, its plan is guaranteed to be cached.
        for request in &requests {
            let response = ask(request)?;
            let job = response
                .get("job")
                .and_then(qca_telemetry::json::JsonValue::as_f64)
                .ok_or_else(|| format!("submit did not return a job id: {response:?}"))?
                as u64;
            let response = ask(&format!(
                "{{\"verb\":\"result\",\"job\":{job},\"timeout_ms\":60000}}"
            ))?;
            let shots = response
                .get("shots")
                .and_then(qca_telemetry::json::JsonValue::as_f64)
                .ok_or_else(|| format!("no shots in result: {response:?}"))?;
            if shots as u64 != 500 {
                return Err(format!("job {job}: expected 500 shots, got {shots}"));
            }
        }
        let stats = ask("{\"verb\":\"stats\"}")?;
        let hits = stats
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(qca_telemetry::json::JsonValue::as_f64)
            .ok_or_else(|| format!("no cache stats: {stats:?}"))?;
        if hits < 1.0 {
            return Err(format!(
                "duplicate submission did not hit the plan cache: {stats:?}"
            ));
        }
        let measured = stats
            .get("latency")
            .and_then(|l| l.get("jobs_measured"))
            .and_then(qca_telemetry::json::JsonValue::as_f64)
            .ok_or_else(|| format!("no latency summary in stats: {stats:?}"))?;
        if measured < 3.0 {
            return Err(format!("latency summary missed jobs: {stats:?}"));
        }
        // The per-tenant array: this service has only the implicit
        // default lane, and all three jobs must be accounted to it.
        let tenant_submitted = match stats.get("tenants") {
            Some(qca_telemetry::json::JsonValue::Array(tenants)) => tenants
                .first()
                .and_then(|t| t.get("submitted"))
                .and_then(qca_telemetry::json::JsonValue::as_f64),
            _ => None,
        }
        .ok_or_else(|| format!("no tenants array in stats: {stats:?}"))?;
        if tenant_submitted < 3.0 {
            return Err(format!(
                "default tenant missed submissions: {stats:?}"
            ));
        }
        println!("smoke: 3 jobs served over TCP, {hits} cache hit(s)");

        // The metrics verb: JSON snapshot with latency hists, then the
        // Prometheus exposition checked with the schema validator.
        let metrics = ask("{\"verb\":\"metrics\"}")?;
        metrics
            .get("metrics")
            .and_then(|m| m.get("hists"))
            .ok_or_else(|| format!("metrics response has no hists: {metrics:?}"))?;
        let prom = ask("{\"verb\":\"metrics\",\"format\":\"prometheus\"}")?;
        let text = prom
            .get("metrics")
            .and_then(qca_telemetry::json::JsonValue::as_str)
            .ok_or_else(|| format!("no prometheus text: {prom:?}"))?;
        let check = qca_telemetry::prometheus::validate(text)
            .map_err(|e| format!("prometheus exposition invalid: {e}"))?;
        if !check
            .histograms
            .iter()
            .any(|h| h.starts_with("service_latency_"))
        {
            return Err(format!(
                "no service_latency_* histograms in exposition ({} samples)",
                check.samples
            ));
        }
        println!(
            "smoke: metrics ok ({} prometheus samples, {} histograms)",
            check.samples,
            check.histograms.len()
        );

        // The trace verb: lifecycle stamps must be ordered.
        let trace = ask("{\"verb\":\"trace\",\"job\":1}")?;
        let stamp = |key: &str| -> Result<f64, String> {
            trace
                .get(key)
                .and_then(qca_telemetry::json::JsonValue::as_f64)
                .ok_or_else(|| format!("trace missing {key}: {trace:?}"))
        };
        let (admit, claim, settle) = (stamp("admit_us")?, stamp("claim_us")?, stamp("settle_us")?);
        if !(admit <= claim && claim <= settle) {
            return Err(format!("trace stamps out of order: {trace:?}"));
        }
        println!("smoke: trace ok (admit {admit} <= claim {claim} <= settle {settle})");
        Ok(())
    };
    let result = run().and_then(|()| abuse_probes(server.local_addr(), tcp_config));
    server.stop();
    match result {
        Ok(()) => {
            println!("smoke: ok");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("smoke: FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Throws hostile input at the front-end: an oversized frame must draw a
/// typed `frame_too_large` error, malformed JSON a `bad_request`, and an
/// abrupt mid-line disconnect must not stop the daemon from serving the
/// next connection.
fn abuse_probes(addr: std::net::SocketAddr, tcp_config: TcpConfig) -> Result<(), String> {
    let connect = || -> Result<(BufReader<TcpStream>, TcpStream), String> {
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok((reader, stream))
    };
    let ask = |reader: &mut BufReader<TcpStream>,
               writer: &mut TcpStream,
               line: &str|
     -> Result<String, String> {
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| e.to_string())?;
        let mut response = String::new();
        reader.read_line(&mut response).map_err(|e| e.to_string())?;
        Ok(response)
    };

    // Probe 1: a frame one kilobyte over the limit.
    let (mut reader, mut writer) = connect()?;
    let oversized = "x".repeat(tcp_config.max_request_bytes + 1024);
    let response = ask(&mut reader, &mut writer, &oversized)?;
    if !response.contains("frame_too_large") {
        return Err(format!(
            "oversized frame not rejected: {:?}",
            response.trim()
        ));
    }
    println!("smoke: oversized frame rejected with frame_too_large");

    // Probe 2: malformed JSON, then a valid request on the same socket.
    let (mut reader, mut writer) = connect()?;
    let response = ask(&mut reader, &mut writer, "this is not json")?;
    if !response.contains("bad_request") {
        return Err(format!("malformed frame accepted: {:?}", response.trim()));
    }
    let response = ask(&mut reader, &mut writer, "{\"verb\":\"stats\"}")?;
    if !response.contains("\"ok\":true") {
        return Err(format!(
            "connection unusable after bad frame: {:?}",
            response.trim()
        ));
    }
    println!("smoke: malformed JSON drew bad_request; connection still usable");

    // Probe 3: vanish mid-line, then confirm the daemon still serves.
    let (_reader, mut writer) = connect()?;
    let _ = writer.write_all(b"{\"verb\":\"stat");
    drop(writer);
    let (mut reader, mut writer) = connect()?;
    let response = ask(&mut reader, &mut writer, "{\"verb\":\"stats\"}")?;
    if !response.contains("\"ok\":true") {
        return Err(format!(
            "daemon unhealthy after abrupt disconnect: {:?}",
            response.trim()
        ));
    }
    println!("smoke: daemon survived an abrupt mid-line disconnect");
    Ok(())
}
