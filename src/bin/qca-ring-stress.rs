//! Seeded concurrency stress campaign for the lock-free admission path:
//! the MPMC ring, the deficit-round-robin fair dequeue and (every few
//! cases) a live two-tenant service under adversarial load.
//!
//! ```text
//! qca-ring-stress                          # 200 cases from seed 1
//! qca-ring-stress --seed 7 --cases 500
//! qca-ring-stress --replay 12345          # one case, verbose
//! qca-ring-stress --fail-file failing.txt # CI artifact: failing seeds
//! ```
//!
//! Each case derives everything (thread counts, ring capacity, item
//! counts, lane weights) from its seed, so a failing seed replays the
//! exact schedule *shape* (thread interleavings still vary, which is the
//! point — a seed that fails even occasionally is a real bug). Invariants
//! checked:
//!
//! - **Ring**: no loss, no duplication, per-producer FIFO as observed by
//!   every consumer, across 1/2/4/8-thread producer/consumer grids.
//! - **DRR**: a fully-backlogged queue dequeues exactly `weight` items
//!   per lane per lap, and drains to exactly what was pushed.
//! - **Service**: a flooding tenant cannot starve a weighted rival —
//!   every accepted job settles, and the vip tenant's jobs complete.

use qca_service::{DrrQueue, JobSpec, Ring, Service, ServiceConfig, ServiceError, TenantConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-case seed stride (same constant family as the chaos campaigns).
const CASE_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

struct Args {
    seed: u64,
    cases: u64,
    replay: Option<u64>,
    fail_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        cases: 200,
        replay: None,
        fail_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--cases" => {
                args.cases = take("--cases")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?;
            }
            "--replay" => {
                args.replay = Some(
                    take("--replay")?
                        .parse()
                        .map_err(|e| format!("bad --replay: {e}"))?,
                );
            }
            "--fail-file" => args.fail_file = Some(take("--fail-file")?),
            "--help" | "-h" => {
                return Err(
                    "usage: qca-ring-stress [--seed N] [--cases N] [--replay SEED] [--fail-file PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// Which stressor a case runs (derived from its seed).
#[derive(Debug, Clone, Copy)]
enum Kind {
    Ring,
    Drr,
    Service,
}

/// Runs one case; `None` means every invariant held.
fn run_case(seed: u64) -> (Kind, Option<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    // The service stressor is ~100x the cost of the in-memory ones, so
    // it takes one slot in eight; ring and DRR split the rest.
    let kind = match rng.gen_range(0..8) {
        0 => Kind::Service,
        n if n % 2 == 1 => Kind::Drr,
        _ => Kind::Ring,
    };
    let failure = match kind {
        Kind::Ring => ring_case(&mut rng),
        Kind::Drr => drr_case(&mut rng),
        Kind::Service => service_case(&mut rng),
    };
    (kind, failure)
}

/// N producers × M consumers over one ring: every pushed item must be
/// popped exactly once, and each consumer must observe every producer's
/// items in push order (the ring is FIFO, so any single consumer's pops
/// are a subsequence of the global order).
fn ring_case(rng: &mut StdRng) -> Option<String> {
    const GRID: [usize; 4] = [1, 2, 4, 8];
    let producers = GRID[rng.gen_range(0..GRID.len())];
    let consumers = GRID[rng.gen_range(0..GRID.len())];
    let capacity = 1usize << rng.gen_range(2..8);
    let per_producer = rng.gen_range(200..1000_usize);
    let ring: Arc<Ring<u64>> = Arc::new(Ring::with_capacity(capacity));
    let total = producers * per_producer;
    let done = Arc::new(AtomicBool::new(false));

    let producer_handles: Vec<_> = (0..producers)
        .map(|p| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for seq in 0..per_producer {
                    let mut item = ((p as u64) << 32) | seq as u64;
                    // Spin on a full ring; consumers are draining it.
                    loop {
                        match ring.push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        })
        .collect();

    let consumer_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut log = Vec::new();
                loop {
                    match ring.pop() {
                        Some(item) => log.push(item),
                        None if done.load(Ordering::SeqCst) => {
                            // One final sweep: `done` may have been set
                            // between our miss and a late push.
                            while let Some(item) = ring.pop() {
                                log.push(item);
                            }
                            return log;
                        }
                        None => std::thread::yield_now(),
                    }
                }
            })
        })
        .collect();

    for h in producer_handles {
        if h.join().is_err() {
            return Some("producer panicked".to_string());
        }
    }
    done.store(true, Ordering::SeqCst);
    let mut seen = vec![0u32; total];
    for h in consumer_handles {
        let Ok(log) = h.join() else {
            return Some("consumer panicked".to_string());
        };
        // Per-producer FIFO within this consumer's log.
        let mut last_seq = vec![None::<u64>; producers];
        for item in log {
            let (p, seq) = ((item >> 32) as usize, item & 0xFFFF_FFFF);
            if p >= producers || seq as usize >= per_producer {
                return Some(format!("alien item {item:#x} popped"));
            }
            if let Some(last) = last_seq[p] {
                if seq <= last {
                    return Some(format!(
                        "producer {p} order violated: seq {seq} after {last}"
                    ));
                }
            }
            last_seq[p] = Some(seq);
            seen[p * per_producer + seq as usize] += 1;
        }
    }
    match seen.iter().position(|&n| n != 1) {
        None => None,
        Some(slot) => Some(format!(
            "item {}/{} popped {} times (want exactly 1)",
            slot / per_producer,
            slot % per_producer,
            seen[slot]
        )),
    }
}

/// A fully-backlogged DRR queue must hand each lane exactly its weight
/// per lap, and drain to exactly what was pushed.
fn drr_case(rng: &mut StdRng) -> Option<String> {
    let lanes = rng.gen_range(2..=4);
    let weights: Vec<u32> = (0..lanes).map(|_| rng.gen_range(1..=5)).collect();
    let laps = rng.gen_range(2..6_u32);
    // Enough backlog that no lane empties during the measured laps.
    let per_lane: Vec<usize> = weights
        .iter()
        .map(|&w| (w * laps) as usize + rng.gen_range(1..10_usize))
        .collect();
    let mut q: DrrQueue<u64> = DrrQueue::new(&weights);
    let mut pushed = 0usize;
    for (lane, &n) in per_lane.iter().enumerate() {
        for i in 0..n {
            // Identical priorities: dequeue order is pure DRR.
            q.push(lane, (lane as u64) << 32 | i as u64);
            pushed += 1;
        }
    }
    let lap_quota: u32 = weights.iter().sum();
    let mut counts = vec![0u32; lanes];
    for _ in 0..(lap_quota * laps) {
        let Some(item) = q.pop() else {
            return Some("queue dried up while backlogged".to_string());
        };
        counts[(item >> 32) as usize] += 1;
    }
    for (lane, (&count, &weight)) in counts.iter().zip(weights.iter()).enumerate() {
        if count != weight * laps {
            return Some(format!(
                "lane {lane} (weight {weight}) got {count} of {laps} laps' worth (want {})",
                weight * laps
            ));
        }
    }
    let mut drained = lap_quota * laps;
    while q.pop().is_some() {
        drained += 1;
    }
    if drained as usize != pushed {
        return Some(format!("pushed {pushed}, drained {drained}"));
    }
    None
}

/// Adversarial two-tenant service: a flooder slams a weight-1 lane while
/// a vip tenant (weight 4) submits a handful of jobs. Every accepted job
/// must settle, and every vip job must *complete* — the flood cannot
/// starve the weighted lane.
fn service_case(rng: &mut StdRng) -> Option<String> {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        tenants: vec![TenantConfig::new("flood", 1), TenantConfig::new("vip", 4)],
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    let circuit = "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n";
    let mut flood_ids = Vec::new();
    for i in 0..rng.gen_range(20..40) {
        let mut spec = JobSpec::new(circuit).with_tenant("flood");
        spec.seed = i;
        spec.shots = rng.gen_range(50..200);
        match handle.submit(spec) {
            Ok(id) => flood_ids.push(id),
            Err(ServiceError::QueueFull { .. }) => {}
            Err(e) => return Some(format!("flood submit: {e}")),
        }
    }
    let mut vip_ids = Vec::new();
    for i in 0..5 {
        let mut spec = JobSpec::new(circuit).with_tenant("vip");
        spec.seed = 1000 + i;
        spec.shots = 100;
        match handle.submit(spec) {
            Ok(id) => vip_ids.push(id),
            Err(e) => return Some(format!("vip submit: {e}")),
        }
    }
    for id in vip_ids {
        if let Err(e) = handle.wait(id, Duration::from_secs(30)) {
            return Some(format!("vip job {} starved: {e}", id.0));
        }
    }
    for id in flood_ids {
        if let Err(e) = handle.wait(id, Duration::from_secs(30)) {
            return Some(format!("flood job {} stranded: {e}", id.0));
        }
    }
    let stats = handle.stats();
    let vip = stats.tenants.iter().find(|t| t.name == "vip");
    if vip.map_or(0, |t| t.completed) < 5 {
        return Some(format!("vip completions missing from stats: {stats:?}"));
    }
    service.shutdown();
    None
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(seed) = args.replay {
        let (kind, failure) = run_case(seed);
        return match failure {
            None => {
                println!("replay {seed}: {kind:?} ok");
                ExitCode::SUCCESS
            }
            Some(msg) => {
                eprintln!("replay {seed}: {kind:?} FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let mut failing: Vec<(u64, String)> = Vec::new();
    let mut by_kind = [0u64; 3];
    for i in 0..args.cases {
        let seed = args.seed.wrapping_add(i.wrapping_mul(CASE_SEED_STRIDE));
        let (kind, failure) = run_case(seed);
        by_kind[match kind {
            Kind::Ring => 0,
            Kind::Drr => 1,
            Kind::Service => 2,
        }] += 1;
        if let Some(msg) = failure {
            eprintln!("case {i} (seed {seed}, {kind:?}): {msg}");
            failing.push((seed, msg));
        }
    }
    println!(
        "qca-ring-stress: {} cases ({} ring, {} drr, {} service), {} failed",
        args.cases,
        by_kind[0],
        by_kind[1],
        by_kind[2],
        failing.len()
    );
    if let Some(path) = &args.fail_file {
        if !failing.is_empty() {
            let mut out = String::new();
            for (seed, msg) in &failing {
                out.push_str(&format!("{seed}\t{msg}\n"));
            }
            if let Err(e) = std::fs::File::create(path).and_then(|mut f| f.write_all(out.as_bytes()))
            {
                eprintln!("qca-ring-stress: cannot write {path}: {e}");
            } else {
                eprintln!(
                    "qca-ring-stress: wrote {} failing seed(s) to {path} (replay with --replay SEED)",
                    failing.len()
                );
            }
        }
    }
    if failing.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
