//! Seeded chaos campaigns from the command line.
//!
//! ```text
//! chaos --seed 7 --cases 200       # run a campaign; exit 0 iff no panics
//! chaos --replay 81985529216486895 # re-run one case by its seed, verbosely
//! chaos --cases 200 --metrics m.json  # also write the JSON metrics report
//! ```
//!
//! Campaigns are bit-reproducible: a failing case prints its seed, and
//! `--replay <seed>` reproduces it exactly (same generated program, same
//! mutation, same outcome). Each campaign runs under a telemetry context
//! and prints its summary — cases run, the mutation-kind histogram, and
//! typed-error failures per stack layer — from the recorded counters.

use qca_core::chaos::{run_campaign_traced, run_case, Outcome};
use qca_core::Telemetry;
use std::process::ExitCode;

struct Args {
    seed: u64,
    cases: u64,
    replay: Option<u64>,
    metrics: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        cases: 200,
        replay: None,
        metrics: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let parse = |name: &str, v: String| -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = parse("--seed", take("--seed")?)?,
            "--cases" => args.cases = parse("--cases", take("--cases")?)?,
            "--replay" => args.replay = Some(parse("--replay", take("--replay")?)?),
            "--metrics" => args.metrics = Some(take("--metrics")?),
            "--help" | "-h" => {
                return Err(
                    "usage: chaos [--seed N] [--cases M] [--replay CASE_SEED] [--metrics PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(seed) = args.replay {
        let case = run_case(seed);
        println!("case seed   : {}", case.seed);
        println!("mutation    : {:?}", case.mutation);
        println!("--- source ---\n{}--------------", case.source);
        return match &case.outcome {
            Outcome::Ok { shots } => {
                println!("outcome     : ok ({shots} shots recorded)");
                ExitCode::SUCCESS
            }
            Outcome::TypedError(e) => {
                println!("outcome     : typed error: {e}");
                ExitCode::SUCCESS
            }
            Outcome::Panic(msg) => {
                println!("outcome     : PANIC: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    let telemetry = Telemetry::enabled();
    let report = run_campaign_traced(args.seed, args.cases, &telemetry);
    println!(
        "chaos campaign: seed {} cases {} -> {} ok, {} typed errors, {} panics",
        report.seed,
        report.cases,
        report.ok,
        report.typed_errors,
        report.panics.len()
    );
    for case in &report.panics {
        println!(
            "  PANIC case {} (replay with --replay {}): {:?} -> {:?}",
            case.index, case.seed, case.mutation, case.outcome
        );
    }
    // The campaign's telemetry summary: mutation-kind histogram, outcomes,
    // and typed-error failures per stack layer.
    println!("\n{}", telemetry.summary_table());
    if let Some(path) = &args.metrics {
        if let Err(e) = std::fs::write(path, telemetry.export_json()) {
            eprintln!("cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
