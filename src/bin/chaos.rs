//! Seeded chaos campaigns from the command line.
//!
//! ```text
//! chaos --seed 7 --cases 200       # run a campaign; exit 0 iff no panics
//! chaos --replay 81985529216486895 # re-run one case by its seed, verbosely
//! ```
//!
//! Campaigns are bit-reproducible: a failing case prints its seed, and
//! `--replay <seed>` reproduces it exactly (same generated program, same
//! mutation, same outcome).

use qca_core::chaos::{run_campaign, run_case, Outcome};
use std::process::ExitCode;

struct Args {
    seed: u64,
    cases: u64,
    replay: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        cases: 200,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = take("--seed")?,
            "--cases" => args.cases = take("--cases")?,
            "--replay" => args.replay = Some(take("--replay")?),
            "--help" | "-h" => {
                return Err("usage: chaos [--seed N] [--cases M] [--replay CASE_SEED]".to_string())
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(seed) = args.replay {
        let case = run_case(seed);
        println!("case seed   : {}", case.seed);
        println!("mutation    : {:?}", case.mutation);
        println!("--- source ---\n{}--------------", case.source);
        match &case.outcome {
            Outcome::Ok { shots } => {
                println!("outcome     : ok ({shots} shots recorded)");
                ExitCode::SUCCESS
            }
            Outcome::TypedError(e) => {
                println!("outcome     : typed error: {e}");
                ExitCode::SUCCESS
            }
            Outcome::Panic(msg) => {
                println!("outcome     : PANIC: {msg}");
                ExitCode::FAILURE
            }
        }
    } else {
        let report = run_campaign(args.seed, args.cases);
        println!(
            "chaos campaign: seed {} cases {} -> {} ok, {} typed errors, {} panics",
            report.seed,
            report.cases,
            report.ok,
            report.typed_errors,
            report.panics.len()
        );
        for case in &report.panics {
            println!(
                "  PANIC case {} (replay with --replay {}): {:?} -> {:?}",
                case.index, case.seed, case.mutation, case.outcome
            );
        }
        if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
