//! End-to-end stack tracing: run a cQASM program through the full stack
//! and export what every layer did.
//!
//! ```text
//! qca-trace examples/qaoa10.qasm                    # trace.json + summary
//! qca-trace examples/bell.qasm --shots 5000 --trace bell-trace.json
//! qca-trace examples/qaoa10.qasm --validate         # fail on schema drift
//! qca-trace examples/bell.qasm --metrics metrics.json
//! ```
//!
//! The program is executed twice under one telemetry context — once on
//! the QX simulator backend (compile → simulate, the full shot count) and
//! once through eQASM and the cycle-accurate micro-architecture (compile
//! → translate → execute, a few shots) — so the emitted `trace.json`
//! carries spans from every layer: OpenQL passes (category `openql`),
//! eQASM translation and pipeline execution (`eqasm`), and QX shot
//! execution (`qxsim`). Load it in Perfetto or `about:tracing`.

use cqasm::Program;
use qca_core::telemetry::validate_chrome_trace;
use qca_core::{ExecutionBackend, FullStack, QubitKind, StackRun, Telemetry};
use std::process::ExitCode;

/// Shots for the micro-architecture pass: each one steps the whole
/// cycle-accurate pipeline, so a handful is enough for the trace.
const ARCH_SHOTS: u64 = 4;

struct Args {
    program: String,
    shots: u64,
    seed: u64,
    trace: String,
    metrics: Option<String>,
    validate: bool,
}

fn parse_args() -> Result<Args, String> {
    const USAGE: &str = "usage: qca-trace <program.qasm> [--shots N] [--seed N] \
                         [--trace PATH] [--metrics PATH] [--validate]";
    let mut program = None;
    let mut args = Args {
        program: String::new(),
        shots: 1000,
        seed: 0x57AC,
        trace: "trace.json".to_string(),
        metrics: None,
        validate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let parse = |name: &str, v: String| -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match flag.as_str() {
            "--shots" => args.shots = parse("--shots", take("--shots")?)?,
            "--seed" => args.seed = parse("--seed", take("--seed")?)?,
            "--trace" => args.trace = take("--trace")?,
            "--metrics" => args.metrics = Some(take("--metrics")?),
            "--validate" => args.validate = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            path => {
                if program.replace(path.to_string()).is_some() {
                    return Err(USAGE.to_string());
                }
            }
        }
    }
    args.program = program.ok_or_else(|| USAGE.to_string())?;
    Ok(args)
}

fn print_compile_report(run: &StackRun) {
    println!("compiler passes:");
    println!(
        "  {:<16} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "pass", "gates", "Δgate", "depth", "Δdep", "swaps"
    );
    for p in &run.compile.passes {
        println!(
            "  {:<16} {:>6} {:>+6} {:>6} {:>+6} {:>6}",
            p.name,
            p.after.gates,
            p.gate_delta(),
            p.after.depth,
            p.depth_delta(),
            p.swaps_inserted
        );
    }
    println!(
        "  schedule: {} cycles ({} ns); asap {} / alap {} cycles; swaps {}",
        run.compile.latency_cycles,
        run.compile.latency_ns,
        run.compile.cycles_asap,
        run.compile.cycles_alap,
        run.compile.swaps_inserted
    );
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.program)
        .map_err(|e| format!("cannot read {}: {e}", args.program))?;
    let program = Program::parse(&text).map_err(|e| format!("{}: {e}", args.program))?;
    let n = program.qubit_count();
    if n < 2 {
        return Err(format!("{}: need at least 2 qubits", args.program));
    }

    let telemetry = Telemetry::enabled();

    // Pass 1: QX simulator backend (the application-development stack),
    // full shot count. Produces openql + qxsim spans.
    let sim_run = FullStack::superconducting(1, n)
        .with_backend(ExecutionBackend::QxSimulator)
        .with_qubits(QubitKind::Perfect)
        .with_seed(args.seed)
        .with_telemetry(telemetry.clone())
        .execute_cqasm(&program, args.shots)
        .map_err(|e| format!("simulator backend: {e}"))?;

    // Pass 2: eQASM micro-architecture backend (the experimental-control
    // stack), a few shots. Produces eqasm translation + pipeline spans.
    let arch_run = FullStack::superconducting(1, n)
        .with_qubits(QubitKind::Perfect)
        .with_seed(args.seed)
        .with_telemetry(telemetry.clone())
        .execute_cqasm(&program, ARCH_SHOTS.min(args.shots))
        .map_err(|e| format!("micro-architecture backend: {e}"))?;

    let trace_text = telemetry.export_chrome_trace();
    std::fs::write(&args.trace, &trace_text)
        .map_err(|e| format!("cannot write {}: {e}", args.trace))?;

    println!(
        "{}: {} qubits, {} shots (sim) + {} shots (microarch)\n",
        args.program,
        n,
        args.shots,
        ARCH_SHOTS.min(args.shots)
    );
    print_compile_report(&sim_run);

    let dispatch = sim_run.kernel_dispatch();
    if !dispatch.is_empty() {
        println!("kernel dispatch (sim backend):");
        for (class, count) in &dispatch {
            println!("  {class:<22} {count}");
        }
    }
    if let Some(ns) = arch_run.shot_time_ns {
        println!("microarch shot time: {ns} ns");
    }
    println!("\n{}", telemetry.summary_table());
    println!("chrome trace written to {}", args.trace);

    if let Some(path) = &args.metrics {
        std::fs::write(path, telemetry.export_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics written to {path}");
    }

    if args.validate {
        let check = validate_chrome_trace(&trace_text)
            .map_err(|e| format!("trace schema validation failed: {e}"))?;
        for cat in ["openql", "eqasm", "qxsim", "stack"] {
            if !check.categories.contains(cat) {
                return Err(format!(
                    "trace schema validation failed: no `{cat}` spans (got {:?})",
                    check.categories
                ));
            }
        }
        println!(
            "trace validated: {} events, categories {:?}",
            check.events, check.categories
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
