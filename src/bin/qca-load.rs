//! Open-loop load generator for the serving stack: drives `qca-serve`
//! (or a self-hosted in-process service, still over real TCP) at a fixed
//! arrival rate for a wall-clock duration over a seeded circuit mix, and
//! writes throughput, drop/shed rate and latency percentiles to
//! `BENCH_load.json`.
//!
//! ```text
//! qca-load                                   # self-host, 50 jobs/s for 5s
//! qca-load --rate 200 --duration 2s --seed 7 --out BENCH_load.json
//! qca-load --addr 127.0.0.1:7878             # drive an external qca-serve
//! qca-load --tenants batch:1,interactive:4   # round-robin the submissions
//!                                            # across weighted tenant lanes
//! ```
//!
//! **Open-loop** means submissions happen at their scheduled arrival
//! times regardless of how fast the service completes them — the
//! generator does not wait for job N before submitting job N+1, so
//! saturation shows up as rising queue-wait percentiles and eventually
//! `queue_full` rejections instead of a silently throttled client. This
//! is the measurement baseline scheduler changes are judged against
//! (ROADMAP: sustained-load harness).
//!
//! After the run the generator fetches the server's Prometheus metrics
//! exposition and validates it with `qca_telemetry::prometheus::validate`,
//! so CI catches schema drift on a live daemon.

use qca_service::{Service, ServiceConfig, TcpConfig, TcpServer, TenantConfig};
use qca_telemetry::hist::LogHistogram;
use qca_telemetry::json::{self, JsonValue};
use qca_telemetry::Telemetry;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    /// External server to drive; `None` self-hosts one.
    addr: Option<String>,
    rate: f64,
    duration: Duration,
    seed: u64,
    shots: u64,
    out: String,
    timeout_ms: u64,
    workers: usize,
    queue: usize,
    collectors: usize,
    /// `NAME:WEIGHT` lanes; submissions round-robin across them.
    tenants: Vec<(String, u32)>,
}

fn parse_tenants(v: &str) -> Result<Vec<(String, u32)>, String> {
    v.split(',')
        .map(|part| {
            let (name, weight) = part
                .split_once(':')
                .ok_or_else(|| format!("bad --tenants entry {part:?}: expected NAME:WEIGHT"))?;
            if name.is_empty() {
                return Err(format!("bad --tenants entry {part:?}: empty name"));
            }
            let weight = weight
                .parse::<u32>()
                .map_err(|e| format!("bad --tenants entry {part:?}: {e}"))?;
            Ok((name.to_string(), weight))
        })
        .collect()
}

fn parse_duration(v: &str) -> Result<Duration, String> {
    let (num, unit) = match v.strip_suffix("ms") {
        Some(n) => (n, 1.0e-3),
        None => match v.strip_suffix('s') {
            Some(n) => (n, 1.0),
            None => (v, 1.0),
        },
    };
    num.parse::<f64>()
        .map_err(|e| format!("bad duration {v:?}: {e}"))
        .map(|n| Duration::from_secs_f64(n * unit))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        rate: 50.0,
        duration: Duration::from_secs(5),
        seed: 1,
        shots: 256,
        out: "BENCH_load.json".to_string(),
        timeout_ms: 30_000,
        workers: 2,
        queue: 256,
        collectors: 4,
        tenants: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(take("--addr")?),
            "--rate" => {
                args.rate = take("--rate")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --rate: {e}"))?;
                if args.rate.is_nan() || args.rate <= 0.0 {
                    return Err("--rate must be positive".to_string());
                }
            }
            "--duration" => args.duration = parse_duration(&take("--duration")?)?,
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--shots" => {
                args.shots = take("--shots")?
                    .parse()
                    .map_err(|e| format!("bad --shots: {e}"))?;
            }
            "--out" => args.out = take("--out")?,
            "--timeout-ms" => {
                args.timeout_ms = take("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --timeout-ms: {e}"))?;
            }
            "--workers" => {
                args.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--queue" => {
                args.queue = take("--queue")?
                    .parse()
                    .map_err(|e| format!("bad --queue: {e}"))?;
            }
            "--collectors" => {
                args.collectors = take("--collectors")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --collectors: {e}"))?
                    .max(1);
            }
            "--tenants" => args.tenants = parse_tenants(&take("--tenants")?)?,
            "--help" | "-h" => {
                return Err(concat!(
                    "usage: qca-load [--addr HOST:PORT] [--rate JOBS_PER_S] [--duration 5s]\n",
                    "                [--seed N] [--shots N] [--out FILE] [--timeout-ms N]\n",
                    "                [--workers N] [--queue N] [--collectors N]\n",
                    "                [--tenants NAME:WEIGHT[,NAME:WEIGHT]...]\n",
                    "without --addr, a service is self-hosted on a loopback port;\n",
                    "--tenants configures the self-hosted lanes and round-robins\n",
                    "submissions across them (per-tenant tallies land in the report)"
                )
                .to_string())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// SplitMix64: the seeded generator behind the circuit mix.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seeded circuit mix: a few distinct shapes × a few seeds each, so
/// the run exercises compile misses, plan-cache hits and coalescing in a
/// reproducible proportion.
fn circuit_mix(seed: u64, draws: usize) -> Vec<(String, u64)> {
    let bell = "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n".to_string();
    let ghz3 = "qubits 3\nh q[0]\ncnot q[0], q[1]\ncnot q[1], q[2]\nmeasure_all\n".to_string();
    let ghz5 = {
        let mut s = String::from("qubits 5\nh q[0]\n");
        for q in 0..4 {
            s.push_str(&format!("cnot q[{q}], q[{}]\n", q + 1));
        }
        s.push_str("measure_all\n");
        s
    };
    let rotations = {
        let mut s = String::from("qubits 4\n");
        for q in 0..4 {
            s.push_str(&format!("rx q[{q}], 0.7853981633974483\n"));
            s.push_str(&format!("rz q[{q}], 1.5707963267948966\n"));
        }
        s.push_str("cnot q[0], q[2]\ncnot q[1], q[3]\nmeasure_all\n");
        s
    };
    // Clifford shapes targeting the stabilizer dispatch: a GHZ chain
    // beyond the state-vector qubit ceiling (Pauli-frame engine only) and
    // a teleportation circuit whose measurement feedback pins the
    // per-shot tableau executor.
    let ghz48 = {
        let mut s = String::from("qubits 48\nh q[0]\n");
        for q in 0..47 {
            s.push_str(&format!("cnot q[{q}], q[{}]\n", q + 1));
        }
        for q in 0..8 {
            s.push_str(&format!("measure q[{q}]\n"));
        }
        s
    };
    let teleport = "qubits 3\nh q[1]\ncnot q[1], q[2]\ncnot q[0], q[1]\nh q[0]\n\
                    measure q[0]\nmeasure q[1]\nc-x b[1], q[2]\nc-z b[0], q[2]\nmeasure_all\n"
        .to_string();
    let shapes = [bell, ghz3, ghz5, rotations, ghz48, teleport];
    let mut rng = seed;
    (0..draws)
        .map(|_| {
            let r = splitmix64(&mut rng);
            let shape = &shapes[(r % shapes.len() as u64) as usize];
            // 4 seeds per shape: repeats coalesce/cache-hit, fresh ones
            // keep the compile path warm.
            let job_seed = (r >> 8) % 4 + 1;
            (shape.clone(), job_seed)
        })
        .collect()
}

/// One newline-delimited JSON client connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str, timeout_ms: u64) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(timeout_ms.max(1000) * 2)))
            .map_err(|e| e.to_string())?;
        // Small request lines: disable Nagle so round trips aren't
        // serialized behind delayed ACKs.
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn ask(&mut self, line: &str) -> Result<JsonValue, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| format!("read: {e}"))?;
        if response.is_empty() {
            return Err("server closed the connection".to_string());
        }
        json::parse(&response).map_err(|e| format!("invalid response {response:?}: {e}"))
    }
}

#[derive(Default)]
struct Tally {
    submitted: u64,
    accepted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    /// Client-observed submit→result latency.
    e2e: LogHistogram,
    /// Server-reported admission→claim wait.
    wait: LogHistogram,
    /// Server-reported execution time.
    exec: LogHistogram,
    /// Per-tenant (accepted, completed) when `--tenants` is set; indexed
    /// like `Args::tenants`.
    per_tenant: Vec<(u64, u64)>,
}

fn percentiles_json(h: &LogHistogram) -> String {
    format!(
        "{{\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
        h.count(),
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(0.999),
        h.max()
    )
}

fn run(args: &Args) -> Result<(), String> {
    // Self-host unless an external address was given. The self-hosted
    // service is still driven over real TCP so the measurement includes
    // the wire path.
    let hosted = if args.addr.is_none() {
        let config = ServiceConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            tenants: args
                .tenants
                .iter()
                .map(|(name, weight)| TenantConfig::new(name, *weight))
                .collect(),
            ..ServiceConfig::default()
        };
        let service = Service::with_telemetry(config, Telemetry::enabled());
        let server = TcpServer::bind_with("127.0.0.1:0", service.handle(), TcpConfig::default())
            .map_err(|e| format!("cannot bind loopback: {e}"))?;
        Some((service, server))
    } else {
        None
    };
    let addr = match (&args.addr, &hosted) {
        (Some(a), _) => a.clone(),
        (None, Some((_, server))) => server.local_addr().to_string(),
        (None, None) => unreachable!("self-host branch always sets hosted"),
    };
    println!(
        "qca-load: driving {addr} at {} jobs/s for {:?} (seed {})",
        args.rate, args.duration, args.seed
    );

    let total_jobs = (args.rate * args.duration.as_secs_f64()).ceil() as usize;
    let mix = circuit_mix(args.seed, total_jobs);
    let tally = Arc::new(Mutex::new(Tally {
        per_tenant: vec![(0, 0); args.tenants.len()],
        ..Tally::default()
    }));
    let (tx, rx) = mpsc::channel::<(u64, Instant, Option<usize>)>();
    let rx = Arc::new(Mutex::new(rx));

    // Collector threads: each owns a TCP connection and blocks on
    // `result` for whichever job comes off the channel next.
    let mut collectors = Vec::new();
    for _ in 0..args.collectors {
        let rx = Arc::clone(&rx);
        let tally = Arc::clone(&tally);
        let addr = addr.clone();
        let timeout_ms = args.timeout_ms;
        collectors.push(std::thread::spawn(move || -> Result<(), String> {
            let mut client = Client::connect(&addr, timeout_ms)?;
            loop {
                let job = {
                    let guard = rx.lock().map_err(|_| "collector channel poisoned")?;
                    guard.recv()
                };
                let Ok((id, submitted_at, tenant)) = job else {
                    return Ok(()); // channel closed: submitter is done
                };
                let response = client.ask(&format!(
                    "{{\"verb\":\"result\",\"job\":{id},\"timeout_ms\":{timeout_ms}}}"
                ))?;
                let e2e_us = u64::try_from(submitted_at.elapsed().as_micros()).unwrap_or(u64::MAX);
                let ok = response.get("ok") == Some(&JsonValue::Bool(true));
                let mut t = tally.lock().map_err(|_| "tally poisoned")?;
                if ok {
                    t.completed += 1;
                    if let Some(idx) = tenant {
                        t.per_tenant[idx].1 += 1;
                    }
                    t.e2e.record(e2e_us);
                    if let Some(w) = response.get("wait_us").and_then(JsonValue::as_f64) {
                        t.wait.record(w as u64);
                    }
                    if let Some(x) = response.get("exec_us").and_then(JsonValue::as_f64) {
                        t.exec.record(x as u64);
                    }
                } else {
                    t.failed += 1;
                }
            }
        }));
    }

    // Open-loop submitter: job i is due at start + i/rate, submitted at
    // its due time whether or not earlier jobs finished.
    let mut submitter = Client::connect(&addr, args.timeout_ms)?;
    let start = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / args.rate);
    for (i, (circuit, job_seed)) in mix.iter().enumerate() {
        let due = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let escaped = circuit.replace('\n', "\\n");
        let tenant_idx = if args.tenants.is_empty() {
            None
        } else {
            Some(i % args.tenants.len())
        };
        let tenant_field = tenant_idx
            .map(|idx| format!(",\"tenant\":\"{}\"", args.tenants[idx].0))
            .unwrap_or_default();
        let response = submitter.ask(&format!(
            "{{\"verb\":\"submit\",\"circuit\":\"{escaped}\",\"shots\":{},\"seed\":{job_seed}{tenant_field}}}",
            args.shots
        ))?;
        let submitted_at = Instant::now();
        let mut t = tally.lock().map_err(|_| "tally poisoned")?;
        t.submitted += 1;
        match response.get("job").and_then(JsonValue::as_f64) {
            Some(id) => {
                t.accepted += 1;
                if let Some(idx) = tenant_idx {
                    t.per_tenant[idx].0 += 1;
                }
                drop(t);
                let _ = tx.send((id as u64, submitted_at, tenant_idx));
            }
            None => {
                t.rejected += 1;
            }
        }
    }
    drop(tx); // collectors drain the channel and exit
    for c in collectors {
        match c.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Err(format!("collector: {e}")),
            Err(_) => return Err("collector panicked".to_string()),
        }
    }
    let elapsed = start.elapsed();

    // Post-run: server stats + a validated Prometheus exposition.
    let stats = submitter.ask("{\"verb\":\"stats\"}")?;
    let prom = submitter.ask("{\"verb\":\"metrics\",\"format\":\"prometheus\"}")?;
    let text = prom
        .get("metrics")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("no prometheus text in metrics response: {prom:?}"))?;
    let check = qca_telemetry::prometheus::validate(text)
        .map_err(|e| format!("prometheus exposition invalid: {e}"))?;
    println!(
        "qca-load: prometheus exposition valid ({} samples, {} histograms)",
        check.samples,
        check.histograms.len()
    );

    let t = tally.lock().map_err(|_| "tally poisoned")?;
    if t.completed == 0 {
        return Err("no job completed — nothing to report".to_string());
    }
    let achieved = t.completed as f64 / elapsed.as_secs_f64();
    let drop_rate = if t.submitted > 0 {
        (t.rejected + t.failed) as f64 / t.submitted as f64
    } else {
        0.0
    };
    let server_queue_p99 = stats
        .get("latency")
        .and_then(|l| l.get("queue_wait_p99_us"))
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    // Per-tenant accounting and the non-starvation check: under fair
    // dequeue, every lane that got work admitted must also get work
    // completed — a lane with accepted jobs and zero completions means
    // the scheduler starved it.
    let tenants_report = if args.tenants.is_empty() {
        "[]".to_string()
    } else {
        let mut out = String::from("[");
        for (idx, (name, weight)) in args.tenants.iter().enumerate() {
            let (accepted, completed) = t.per_tenant[idx];
            if accepted > 0 && completed == 0 {
                return Err(format!(
                    "tenant {name:?} starved: {accepted} accepted, 0 completed"
                ));
            }
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"weight\":{weight},\"accepted\":{accepted},\"completed\":{completed}}}"
            ));
        }
        out.push(']');
        out
    };
    let report = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"qca-load\",\n",
            "  \"seed\": {},\n",
            "  \"target_rate_per_s\": {},\n",
            "  \"duration_s\": {:.3},\n",
            "  \"shots_per_job\": {},\n",
            "  \"submitted\": {},\n",
            "  \"accepted\": {},\n",
            "  \"rejected\": {},\n",
            "  \"completed\": {},\n",
            "  \"failed\": {},\n",
            "  \"achieved_rate_per_s\": {:.2},\n",
            "  \"drop_rate\": {:.4},\n",
            "  \"latency_e2e\": {},\n",
            "  \"latency_queue_wait\": {},\n",
            "  \"latency_execute\": {},\n",
            "  \"server_queue_wait_p99_us\": {},\n",
            "  \"tenants\": {},\n",
            "  \"prometheus_samples\": {}\n",
            "}}\n"
        ),
        args.seed,
        args.rate,
        elapsed.as_secs_f64(),
        args.shots,
        t.submitted,
        t.accepted,
        t.rejected,
        t.completed,
        t.failed,
        achieved,
        drop_rate,
        percentiles_json(&t.e2e),
        percentiles_json(&t.wait),
        percentiles_json(&t.exec),
        server_queue_p99,
        tenants_report,
        check.samples,
    );
    json::parse(&report).map_err(|e| format!("internal: report is not valid JSON: {e}"))?;
    std::fs::write(&args.out, &report).map_err(|e| format!("write {}: {e}", args.out))?;
    println!(
        "qca-load: {} submitted, {} completed ({achieved:.1} jobs/s sustained), drop rate {drop_rate:.4}",
        t.submitted, t.completed
    );
    println!(
        "qca-load: e2e p50 {} us, p99 {} us -> {}",
        t.e2e.quantile(0.50),
        t.e2e.quantile(0.99),
        args.out
    );
    drop(t);

    if let Some((service, server)) = hosted {
        server.stop();
        service.shutdown();
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("qca-load: FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}
