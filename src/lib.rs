//! # qca — full-stack quantum accelerator (workspace facade)
//!
//! Reproduction of Bertels et al., *"Quantum Computer Architecture:
//! Towards Full-Stack Quantum Accelerators"* (DATE 2020). This facade
//! crate re-exports every layer of the stack and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start with [`qca_core::FullStack`] for the architecture, or see:
//!
//! - [`openql`] — quantum kernels and the compiler;
//! - [`cqasm`] — the common assembly language;
//! - [`eqasm`] — the executable ISA and micro-architecture;
//! - [`qxsim`] — the QX simulator (perfect/realistic/real qubits);
//! - [`qec`] — error-correction substrate;
//! - [`annealer`] — QUBO/Ising and annealing hardware models;
//! - [`qgs`] — the quantum genome-sequencing accelerator;
//! - [`optim`] — the quantum optimisation accelerator.

pub use annealer;
pub use cqasm;
pub use eqasm;
pub use openql;
pub use optim;
pub use qca_core;
pub use qec;
pub use qgs;
pub use qxsim;
