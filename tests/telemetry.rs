//! Stack-level telemetry integration tests: span nesting across layers,
//! counter determinism under threading, exporter round-trips, and the
//! sampling fast-path regression pins from the observability work.

use cqasm::Program;
use qca_core::telemetry::{json, validate_chrome_trace, Snapshot};
use qca_core::{ExecutionBackend, FullStack, QubitKind, Telemetry};
use qxsim::{EngineSelect, Simulator};

fn bell() -> Program {
    Program::parse("version 1.0\nqubits 2\n.bell\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n")
        .expect("bell parses")
}

fn ghz(n: usize) -> Program {
    let mut text = format!("version 1.0\nqubits {n}\n.ghz\nh q[0]\n");
    for q in 0..n - 1 {
        text.push_str(&format!("cnot q[{q}], q[{}]\n", q + 1));
    }
    text.push_str("measure_all\n");
    Program::parse(&text).expect("ghz parses")
}

/// Walks `span`'s parent chain and returns true if it passes through the
/// span at `ancestor`.
fn has_ancestor(snapshot: &Snapshot, mut index: usize, ancestor: usize) -> bool {
    while let Some(parent) = snapshot.spans[index].parent {
        if parent == ancestor {
            return true;
        }
        index = parent;
    }
    false
}

fn find_span(snapshot: &Snapshot, cat: &str, name: &str) -> usize {
    snapshot
        .spans
        .iter()
        .position(|s| s.cat == cat && s.name == name)
        .unwrap_or_else(|| panic!("no span {cat}/{name}"))
}

#[test]
fn spans_nest_across_all_stack_layers() {
    let telemetry = Telemetry::enabled();
    FullStack::superconducting(1, 2)
        .with_backend(ExecutionBackend::QxSimulator)
        .with_qubits(QubitKind::Perfect)
        .with_telemetry(telemetry.clone())
        .execute_cqasm(&bell(), 50)
        .expect("sim backend runs");
    FullStack::superconducting(1, 2)
        .with_qubits(QubitKind::Perfect)
        .with_telemetry(telemetry.clone())
        .execute_cqasm(&bell(), 2)
        .expect("microarch backend runs");

    let snap = telemetry.snapshot();
    let execute = find_span(&snap, "stack", "execute");
    let compile = find_span(&snap, "openql", "compile");
    let run_shots = find_span(&snap, "qxsim", "run_shots");
    let translate = find_span(&snap, "eqasm", "translate");

    assert_eq!(snap.spans[execute].depth, 0);
    assert!(has_ancestor(&snap, compile, execute));
    assert!(has_ancestor(&snap, run_shots, execute));
    // Every openql pass span nests under a compile span.
    for (i, span) in snap.spans.iter().enumerate() {
        if span.cat == "openql" && span.name != "compile" {
            let parent = span.parent.expect("pass spans have a parent");
            assert_eq!(snap.spans[parent].name, "compile");
            assert_eq!(span.depth, snap.spans[parent].depth + 1);
            assert!(i > parent);
        }
    }
    // The eqasm translation belongs to the second (micro-architecture)
    // stack execution.
    let root = {
        let mut at = translate;
        while let Some(p) = snap.spans[at].parent {
            at = p;
        }
        at
    };
    assert_eq!(snap.spans[root].cat, "stack");
    assert!(root > execute, "translate hangs off the second execute");
    assert!(snap.spans.iter().all(|s| s.closed));
}

#[test]
fn counters_are_bit_identical_across_thread_counts() {
    let program = ghz(6);
    let mut reports = Vec::new();
    for threads in [1usize, 2, 4] {
        let telemetry = Telemetry::enabled();
        // Disable the terminal-sampling shortcut so the threaded shot loop
        // (and its per-worker kernel-dispatch counters) actually runs.
        // Pin the state-vector engine: the GHZ chain is Clifford and
        // would otherwise auto-dispatch to the stabilizer fast path.
        let sim = Simulator::perfect()
            .with_seed(0xD15C0)
            .with_engine_select(EngineSelect::StateVector)
            .with_sampling_fast_path(false)
            .with_telemetry(telemetry.clone());
        let hist = sim
            .run_shots_parallel(&program, 600, threads)
            .expect("runs");
        reports.push((hist, telemetry.counters_json()));
    }
    let (hist0, counters0) = &reports[0];
    for (hist, counters) in &reports[1..] {
        assert_eq!(hist, hist0, "histograms must not depend on threads");
        assert_eq!(counters, counters0, "counters must not depend on threads");
    }
    // The deterministic export carries the kernel-dispatch histogram. The
    // GHZ chain's leading H + CNOTs fuse into a dense block under the
    // default plan options, so the fused class shows up here.
    assert!(counters0.contains("qxsim.kernel_dispatch"));
    assert!(counters0.contains("FusedBlock"));
}

#[test]
fn chrome_trace_round_trips_through_the_json_parser() {
    let telemetry = Telemetry::enabled();
    FullStack::superconducting(1, 2)
        .with_backend(ExecutionBackend::QxSimulator)
        .with_qubits(QubitKind::Perfect)
        .with_telemetry(telemetry.clone())
        .execute_cqasm(&bell(), 20)
        .expect("runs");

    let trace = telemetry.export_chrome_trace();
    let check = validate_chrome_trace(&trace).expect("trace is schema-valid");
    assert!(check.events >= 4);
    assert!(check.categories.contains("openql"));
    assert!(check.categories.contains("qxsim"));

    // Independent structural check via the JSON parser: every event is a
    // complete "X" duration event.
    let value = json::parse(&trace).expect("trace parses as JSON");
    let events = match value.get("traceEvents") {
        Some(json::JsonValue::Array(events)) => events,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert_eq!(events.len(), check.events);
    for event in events {
        assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(event.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(event.get("dur").and_then(|v| v.as_f64()).is_some());
        assert!(event
            .get("args")
            .and_then(|a| a.get("depth"))
            .and_then(|v| v.as_f64())
            .is_some());
    }
}

#[test]
fn metrics_report_round_trips_through_the_json_parser() {
    let telemetry = Telemetry::enabled();
    FullStack::superconducting(1, 2)
        .with_backend(ExecutionBackend::QxSimulator)
        .with_qubits(QubitKind::Perfect)
        .with_telemetry(telemetry.clone())
        .execute_cqasm(&bell(), 20)
        .expect("runs");

    let report = json::parse(&telemetry.export_json()).expect("metrics parse");
    assert_eq!(report.get("version").and_then(|v| v.as_f64()), Some(1.0));
    let counters = match report.get("counters") {
        Some(json::JsonValue::Object(map)) => map,
        other => panic!("counters missing: {other:?}"),
    };
    assert_eq!(
        counters
            .get("qxsim.shots.executed")
            .and_then(|v| v.as_f64()),
        Some(20.0)
    );
    let snap = telemetry.snapshot();
    assert_eq!(
        report.get("spans").map(|s| match s {
            json::JsonValue::Array(a) => a.len(),
            _ => 0,
        }),
        Some(snap.spans.len())
    );
}

/// Satellite regression: the `StdRng::first_f64` sampling shortcut and the
/// cumulative-table fast path must produce exactly the same shot
/// histograms as full per-shot re-simulation, in telemetry-enabled runs,
/// for a fixed seed.
#[test]
fn sampling_fast_path_matches_full_resimulation_bell() {
    let program = bell();
    let telemetry = Telemetry::enabled();
    // Bell is Clifford; pin the state-vector engine so the sampling
    // fast path (not the stabilizer sampler) is what gets exercised.
    let fast = Simulator::perfect()
        .with_seed(0xB311)
        .with_engine_select(EngineSelect::StateVector)
        .with_telemetry(telemetry.clone());
    let slow = fast.clone().with_sampling_fast_path(false);
    let fast_hist = fast.run_shots(&program, 2000).expect("fast path runs");
    let slow_hist = slow.run_shots(&program, 2000).expect("full path runs");
    assert_eq!(fast_hist, slow_hist);

    let snap = telemetry.snapshot();
    let paths = snap.labeled.get("qxsim.sampling_fast_path").expect("label");
    assert_eq!(paths.get("hit"), Some(&1));
    assert_eq!(paths.get("miss"), Some(&1));
}

#[test]
fn sampling_fast_path_matches_full_resimulation_ghz16() {
    let program = ghz(16);
    let telemetry = Telemetry::enabled();
    let fast = Simulator::perfect()
        .with_seed(0x61216)
        .with_engine_select(EngineSelect::StateVector)
        .with_telemetry(telemetry.clone());
    let slow = fast.clone().with_sampling_fast_path(false);
    let fast_hist = fast.run_shots(&program, 200).expect("fast path runs");
    let slow_hist = slow.run_shots(&program, 200).expect("full path runs");
    assert_eq!(fast_hist, slow_hist);
    // GHZ: only the all-zeros and all-ones strings may appear.
    for (bits, _) in fast_hist.iter() {
        assert!(bits == 0 || bits == (1 << 16) - 1);
    }
}

#[test]
fn stack_run_exposes_pass_metrics_and_kernel_dispatch() {
    let telemetry = Telemetry::enabled();
    let run = FullStack::superconducting(1, 4)
        .with_backend(ExecutionBackend::QxSimulator)
        .with_qubits(QubitKind::Perfect)
        .with_telemetry(telemetry)
        .execute_cqasm(&ghz(4), 100)
        .expect("runs");

    let names: Vec<&str> = run.compile.passes.iter().map(|p| p.name).collect();
    assert!(names.contains(&"decompose"));
    assert!(names.contains(&"route"));
    assert!(names.contains(&"schedule"));
    for pair in run.compile.passes.windows(2) {
        assert_eq!(pair[0].after, pair[1].before, "pass stats must chain");
    }
    assert!(run.compile.cycles_asap > 0);
    assert!(run.compile.cycles_alap > 0);

    let dispatch = run.kernel_dispatch();
    assert!(!dispatch.is_empty(), "kernel dispatch histogram is exposed");
    assert!(dispatch.values().all(|&v| v > 0));
}

/// Satellite (PR 7): the fault-tolerance counters are deterministic —
/// running the same seeded fault scenario twice produces the exact same
/// `service.retries.*` / `service.workers.*` counter values, and the
/// hardened front-end counters appear under their documented names.
#[test]
fn service_fault_counters_are_deterministic() {
    use qca_service::{JobFaults, JobSpec, RetryPolicy, Service, ServiceConfig};
    use std::time::Duration;

    let run_scenario = || -> (String, qxsim::ShotHistogram) {
        let telemetry = Telemetry::enabled();
        let service = Service::with_telemetry(
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            telemetry.clone(),
        );
        let handle = service.handle();
        // One job that panics once then succeeds, one that burns two
        // transient faults, one that exhausts its budget.
        let healed = handle
            .submit(
                JobSpec::new("qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n")
                    .with_seed(7)
                    .with_shots(400)
                    .with_faults(JobFaults {
                        panic_attempts: 1,
                        fail_attempts: 0,
                    })
                    .with_retry(RetryPolicy::with_attempts(3, 0)),
            )
            .expect("submit");
        let retried = handle
            .submit(
                JobSpec::new("qubits 2\nh q[0]\nmeasure_all\n")
                    .with_seed(8)
                    .with_shots(300)
                    .with_faults(JobFaults {
                        panic_attempts: 0,
                        fail_attempts: 2,
                    })
                    .with_retry(RetryPolicy::with_attempts(3, 0)),
            )
            .expect("submit");
        let doomed = handle
            .submit(
                JobSpec::new("qubits 1\nx q[0]\nmeasure_all\n")
                    .with_seed(9)
                    .with_shots(200)
                    .with_faults(JobFaults {
                        panic_attempts: 0,
                        fail_attempts: 99,
                    })
                    .with_retry(RetryPolicy::with_attempts(2, 0)),
            )
            .expect("submit");

        let healed_outcome = handle
            .wait(healed, Duration::from_secs(30))
            .expect("healed job succeeds");
        assert_eq!(healed_outcome.attempts, 2);
        let retried_outcome = handle
            .wait(retried, Duration::from_secs(30))
            .expect("retried job succeeds");
        assert_eq!(retried_outcome.attempts, 3);
        assert!(handle.wait(doomed, Duration::from_secs(30)).is_err());
        // Let supervision finish before shutting down: a shutdown that
        // races the dying worker suppresses its respawn (by design), and
        // this test pins the exact healed-pool counter values.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while handle.stats().respawns < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "pool never respawned: {:?}",
                handle.stats()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        service.shutdown();

        let counters = telemetry.counters_json();
        (counters, healed_outcome.histogram.clone())
    };

    let (counters_a, histogram_a) = run_scenario();
    let (counters_b, histogram_b) = run_scenario();

    let parsed = json::parse(&counters_a).expect("counters export is JSON");
    let count = |name: &str| -> f64 {
        parsed
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(qca_core::telemetry::json::JsonValue::as_f64)
            .unwrap_or_else(|| panic!("missing counter {name} in {counters_a}"))
    };
    // healed: 1 panic retry; retried: 2 fault retries; doomed: 1 retry
    // then exhaustion.
    assert_eq!(count("service.retries.scheduled"), 4.0);
    assert_eq!(count("service.retries.exhausted"), 1.0);
    assert_eq!(count("service.workers.panics"), 1.0);
    assert_eq!(count("service.workers.respawns"), 1.0);

    assert_eq!(
        counters_a, counters_b,
        "seeded fault scenarios must produce identical counters"
    );
    assert_eq!(
        histogram_a, histogram_b,
        "seeded fault scenarios must produce identical histograms"
    );
}

/// The hardened TCP front-end counts shed connections, oversized frames
/// and read timeouts under stable names.
#[test]
fn tcp_hardening_counters_use_documented_names() {
    use qca_service::{Service, ServiceConfig, TcpConfig, TcpServer};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    let telemetry = Telemetry::enabled();
    let service = Service::with_telemetry(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        telemetry.clone(),
    );
    let server = TcpServer::bind_with(
        "127.0.0.1:0",
        service.handle(),
        TcpConfig {
            max_request_bytes: 512,
            read_timeout: Some(Duration::from_millis(100)),
            ..TcpConfig::default()
        },
    )
    .expect("bind");

    // Oversized frame.
    let mut abuser = TcpStream::connect(server.local_addr()).expect("connect");
    abuser
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    abuser
        .write_all("y".repeat(2048).as_bytes())
        .and_then(|()| abuser.write_all(b"\n"))
        .expect("write");
    let mut response = String::new();
    BufReader::new(abuser.try_clone().expect("clone"))
        .read_line(&mut response)
        .expect("read");
    assert!(response.contains("frame_too_large"), "{response:?}");

    // Stalled client: wait for the server's read timeout to cut us off.
    let mut loris = TcpStream::connect(server.local_addr()).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    loris.write_all(b"{\"verb\":").expect("write");
    let mut buf = String::new();
    let n = BufReader::new(loris.try_clone().expect("clone"))
        .read_line(&mut buf)
        .expect("read");
    assert_eq!(n, 0, "stalled connection must be closed");

    server.stop();
    service.shutdown();

    let counters = telemetry.counters_json();
    let parsed = json::parse(&counters).expect("counters export is JSON");
    let count = |name: &str| {
        parsed
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(qca_core::telemetry::json::JsonValue::as_f64)
    };
    assert_eq!(count("service.tcp.oversized"), Some(1.0), "{counters}");
    assert_eq!(count("service.tcp.timeouts"), Some(1.0), "{counters}");
}
