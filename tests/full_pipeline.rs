//! Integration tests spanning the whole gate-model stack:
//! OpenQL → compiler → cQASM → {QX, eQASM → micro-architecture → QX}.

use eqasm::{translate, MicroArchitecture, QxDevice};
use openql::{Compiler, Kernel, Platform, QuantumProgram};
use qca_core::{ExecutionBackend, FullStack, QubitKind};
use qxsim::Simulator;

fn ghz(n: usize) -> QuantumProgram {
    let mut k = Kernel::new("ghz", n);
    k.h(0);
    for q in 0..n - 1 {
        k.cnot(q, q + 1);
    }
    k.measure_all();
    let mut p = QuantumProgram::new("ghz", n);
    p.add_kernel(k);
    p
}

/// Decodes a physical histogram key back to logical bits via the final
/// mapping.
fn decode(bits: u64, mapping: &openql::Mapping, n: usize) -> u64 {
    let mut logical = 0u64;
    for l in 0..n {
        if (bits >> mapping.physical(l)) & 1 == 1 {
            logical |= 1 << l;
        }
    }
    logical
}

#[test]
fn simulator_and_microarchitecture_agree_on_ghz_support() {
    let program = ghz(4);
    // Path A: QX directly.
    let sim_run = FullStack::superconducting(2, 2)
        .with_qubits(QubitKind::Perfect)
        .with_backend(ExecutionBackend::QxSimulator)
        .execute(&program, 300)
        .unwrap();
    // Path B: eQASM micro-architecture.
    let arch_run = FullStack::superconducting(2, 2)
        .with_qubits(QubitKind::Perfect)
        .execute(&program, 300)
        .unwrap();
    for run in [&sim_run, &arch_run] {
        let mapping = run.final_mapping.as_ref().expect("routed");
        for (bits, count) in run.histogram.iter() {
            let logical = decode(bits, mapping, 4);
            assert!(
                logical == 0b0000 || logical == 0b1111,
                "non-GHZ outcome {logical:04b} x{count}"
            );
        }
    }
}

#[test]
fn compiled_program_equals_source_program_statistics() {
    // Compile for the perfect platform and check the output distribution
    // matches the uncompiled program's.
    let program = ghz(3).to_cqasm();
    let compiled = Compiler::new(Platform::perfect(3))
        .compile_cqasm(&program)
        .unwrap();
    let sim = Simulator::perfect().with_seed(11);
    let h_raw = sim.run_shots(&program, 600).unwrap();
    let h_compiled = sim.run_shots(&compiled.program, 600).unwrap();
    for bits in [0b000u64, 0b111] {
        let a = h_raw.probability(bits);
        let b = h_compiled.probability(bits);
        assert!(
            (a - b).abs() < 0.08,
            "P({bits:03b}): raw {a} vs compiled {b}"
        );
    }
    assert_eq!(h_compiled.count(0b010), 0);
}

#[test]
fn manual_pipeline_matches_fullstack_wrapper() {
    // Drive every layer by hand and compare with the FullStack facade.
    let program = ghz(2);
    let platform = Platform::superconducting_grid(1, 2);
    let compiled = Compiler::new(platform).compile(&program).unwrap();
    let eq = translate(&compiled.schedule).unwrap();
    let arch = MicroArchitecture::superconducting();
    let mut ok = 0;
    for seed in 0..50u64 {
        let mut device = QxDevice::with_model(2, qxsim::QubitModel::Perfect, seed);
        let trace = arch.execute(&eq, &mut device).unwrap();
        let b0 = trace.bit(0);
        let b1 = trace.bit(1);
        assert_eq!(b0, b1, "Bell correlation broken");
        if b0 {
            ok += 1;
        }
    }
    assert!(ok > 5 && ok < 45, "both branches should occur, got {ok}/50");
}

#[test]
fn deep_circuit_through_constrained_topology() {
    // A Toffoli-containing circuit on a linear topology exercises
    // decomposition + routing + scheduling together.
    let mut k = Kernel::new("deep", 3);
    k.h(0).toffoli(0, 1, 2).cnot(0, 2).h(2).measure_all();
    let mut p = QuantumProgram::new("deep", 3);
    p.add_kernel(k);
    let run = FullStack::semiconducting(3)
        .with_qubits(QubitKind::Perfect)
        .execute(&p, 100)
        .unwrap();
    assert!(run.compile.output_stats.multi_qubit_gates == 0);
    assert!(run.histogram.shots() == 100);
    assert!(run.shot_time_ns.unwrap() > 0);
}

#[test]
fn cqasm_text_is_the_exchange_format() {
    // The compiled program can round-trip through its textual form and
    // still execute identically — cQASM as the "shared quantum assembly
    // language" of §2.4.
    let compiled = Compiler::new(Platform::superconducting_grid(1, 2))
        .compile(&ghz(2))
        .unwrap();
    let text = compiled.program.to_string();
    let reparsed = cqasm::Program::parse(&text).expect("emitted cQASM parses");
    assert_eq!(compiled.program, reparsed);
    let h = Simulator::perfect().run_shots(&reparsed, 100).unwrap();
    assert_eq!(h.shots(), 100);
}

#[test]
fn conditional_feedback_through_microarchitecture() {
    // Measure-and-feedback: H, measure, conditionally flip the second
    // qubit — the run-time branch path (FMR/CMP/BR) of the eQASM machine.
    let mut k = Kernel::new("feedback", 2);
    k.h(0)
        .measure(0)
        .cond_gate(0, cqasm::GateKind::X, &[1])
        .measure(1);
    let mut p = QuantumProgram::new("feedback", 2);
    p.add_kernel(k);
    let run = FullStack::superconducting(1, 2)
        .with_qubits(QubitKind::Perfect)
        .execute(&p, 200)
        .unwrap();
    for (bits, count) in run.histogram.iter() {
        assert_eq!(
            bits & 1,
            (bits >> 1) & 1,
            "feedback must copy the bit ({bits:02b} x{count})"
        );
    }
    assert!(run.histogram.distinct() == 2, "both branches must occur");
}
