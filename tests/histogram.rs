//! Property tests for [`qca_telemetry::LogHistogram`]: the log-bucketed
//! latency histogram behind `service.latency.*` and the load harness.
//! The deterministic-merge guarantee (splitting a stream across workers
//! and merging gives the identical histogram) is what makes percentile
//! reports reproducible across worker counts.

use proptest::prelude::*;
use qca_telemetry::LogHistogram;

/// Latency-like values spanning every bucket regime: the linear span,
/// the log span, and the saturating top bucket.
fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..1_000,           // linear + early log buckets
        4 => 1_000u64..10_000_000,  // mid log buckets (us-scale latencies)
        1 => 0u64..=u64::MAX,       // arbitrary, incl. saturating max
    ]
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(arb_value(), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording conserves counts and sums (saturating), and min/max
    /// bound every recorded value.
    #[test]
    fn count_and_sum_are_conserved(values in arb_values()) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let expected_sum = values.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(h.sum(), expected_sum);
        let bucket_total: u64 = h.bucket_counts().iter().sum();
        // Every value lands in exactly one bucket.
        prop_assert_eq!(bucket_total, values.len() as u64);
        if let (Some(&lo), Some(&hi)) = (values.iter().min(), values.iter().max()) {
            prop_assert_eq!(h.min(), lo);
            prop_assert_eq!(h.max(), hi);
        }
    }

    /// Quantiles are monotone in q and bounded by [min, max].
    #[test]
    fn quantiles_are_monotone_and_bounded(values in proptest::collection::vec(arb_value(), 1..300)) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let mut last = h.quantile(0.0);
        for &q in &qs {
            let value = h.quantile(q);
            prop_assert!(value >= last, "quantile must be monotone in q");
            prop_assert!(value >= h.min() && value <= h.max(),
                "q={q}: {value} outside [{}, {}]", h.min(), h.max());
            last = value;
        }
    }

    /// Splitting a value stream across any number of histograms and
    /// merging reproduces the single-histogram result exactly — the
    /// worker-sharding invariant.
    #[test]
    fn merge_equals_single_histogram(values in arb_values(), parts in 1usize..5) {
        let mut combined = LogHistogram::new();
        for &v in &values {
            combined.record(v);
        }
        let mut shards = vec![LogHistogram::new(); parts];
        for (i, &v) in values.iter().enumerate() {
            shards[i % parts].record(v);
        }
        let mut merged = LogHistogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(&merged, &combined);
        // Merge order must not matter (commutativity).
        let mut reversed = LogHistogram::new();
        for shard in shards.iter().rev() {
            reversed.merge(shard);
        }
        prop_assert_eq!(&reversed, &combined);
    }

    /// A single recorded value is reported back (as bucket upper bound
    /// clamped to [min, max] — i.e. exactly) at every quantile.
    #[test]
    fn single_value_dominates_every_quantile(v in 0u64..=u64::MAX) {
        let mut h = LogHistogram::new();
        h.record(v);
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(h.quantile(q), v);
        }
    }
}

#[test]
fn empty_histogram_is_inert() {
    let h = LogHistogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.quantile(0.5), 0);
    assert_eq!(h.quantile(1.0), 0);
    assert!(h.nonzero_buckets().next().is_none());
}

#[test]
fn bucket_boundaries_stay_in_their_bucket() {
    // Powers of two sit exactly on log-bucket boundaries; each must land
    // in a bucket whose [lo, hi] range contains it.
    let mut h = LogHistogram::new();
    let probes: Vec<u64> = (0..=63).map(|s| 1u64 << s).collect();
    for &p in &probes {
        h.record(p);
    }
    for (lo, hi, count) in h.nonzero_buckets() {
        assert!(count > 0);
        assert!(
            probes.iter().any(|&p| p >= lo && p <= hi),
            "bucket [{lo}, {hi}] claims a probe but contains none"
        );
    }
    assert_eq!(h.count(), probes.len() as u64);
}

#[test]
fn saturating_values_land_in_the_top_bucket() {
    let mut h = LogHistogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    assert_eq!(h.count(), 2);
    assert_eq!(h.max(), u64::MAX);
    // Sum saturates instead of wrapping.
    assert_eq!(h.sum(), u64::MAX);
    assert_eq!(h.quantile(0.999), u64::MAX);
}
