//! Robustness properties of the stack: writer/parser fixpoint, graceful
//! rejection of mutated programs, and regression tests for the edge-case
//! programs the executor must handle (empty, measure-only, oversized).

use cqasm::{Error, GateKind, Instruction, Program};
use openql::{Compiler, Platform};
use proptest::prelude::*;
use qxsim::{ExecuteError, Simulator, MAX_SIM_QUBITS, MAX_STAB_QUBITS};

const QUBITS: usize = 4;

fn arb_instr() -> impl Strategy<Value = Instruction> {
    let one = prop_oneof![
        Just(GateKind::H),
        Just(GateKind::X),
        Just(GateKind::Y),
        Just(GateKind::Z),
        Just(GateKind::S),
        Just(GateKind::T),
        (-8i32..8).prop_map(|k| GateKind::Rz(f64::from(k) * 0.25)),
        (-8i32..8).prop_map(|k| GateKind::Rx(f64::from(k) * 0.25)),
    ];
    prop_oneof![
        4 => (one, 0..QUBITS).prop_map(|(g, q)| Instruction::gate(g, &[q])),
        2 => (0..QUBITS, 0..QUBITS - 1).prop_map(|(a, off)| {
            let b = (a + 1 + off) % QUBITS;
            Instruction::gate(GateKind::Cnot, &[a, b])
        }),
        1 => (1u64..6).prop_map(Instruction::Wait),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (proptest::collection::vec(arb_instr(), 1..20), 0usize..2).prop_map(|(instrs, measure)| {
        let measure = measure == 1;
        let mut b = Program::builder(QUBITS).subcircuit("random");
        for i in instrs {
            b = b.instruction(i);
        }
        if measure {
            b = b.measure_all();
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Writing a program and parsing it back is the identity, and the
    /// written form is a fixpoint of write∘parse.
    #[test]
    fn parse_write_parse_fixpoint(p in arb_program()) {
        let text = p.to_string();
        let reparsed = Program::parse(&text)
            .unwrap_or_else(|e| panic!("writer emitted unparseable text: {e}\n{text}"));
        let text2 = reparsed.to_string();
        prop_assert!(text == text2, "write∘parse is not a fixpoint:\n{text}\nvs\n{text2}");
        let reparsed2 = Program::parse(&text2).expect("fixpoint text parses");
        prop_assert_eq!(reparsed, reparsed2);
    }

    /// A chaos-style mutation of valid program text either still parses
    /// (the mutation was benign) or yields a *typed* error; parse errors
    /// carry a line/column diagnostic. Never a panic.
    #[test]
    fn mutated_text_parses_or_reports_position(
        p in arb_program(),
        kind in 0u8..5,
        at in 0usize..1_000_000,
        junk in 0usize..17,
    ) {
        let text = p.to_string();
        let mutated = match kind {
            // Truncation at an arbitrary byte.
            0 => text[..at % (text.len() + 1)].to_string(),
            // One byte replaced with punctuation.
            1 => {
                let mut bytes = text.clone().into_bytes();
                let pos = at % bytes.len();
                bytes[pos] = b"!@#%^&*(){}[],.|;"[junk];
                String::from_utf8_lossy(&bytes).into_owned()
            }
            // Out-of-range operand appended.
            2 => format!("{text}x q[{}]\n", 50 + at % 5000),
            // Unknown gate appended.
            3 => format!("{text}frobnicate q[0]\n"),
            // A random line duplicated.
            _ => {
                let lines: Vec<&str> = text.lines().collect();
                let which = at % lines.len();
                let mut out = String::new();
                for (i, line) in lines.iter().enumerate() {
                    out.push_str(line);
                    out.push('\n');
                    if i == which {
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                out
            }
        };
        match Program::parse(&mutated) {
            Ok(p2) => {
                // Benign mutation: the survivor must itself round-trip.
                let again = Program::parse(&p2.to_string()).expect("round-trips");
                prop_assert_eq!(p2, again);
            }
            Err(e @ Error::Parse { .. }) => {
                let (line, column) = e.position().expect("parse errors carry a position");
                prop_assert!(line >= 1 && column >= 1, "1-based diagnostic, got {line}:{column}");
                prop_assert!(
                    line <= mutated.lines().count().max(1),
                    "diagnostic line {line} beyond program end"
                );
            }
            Err(Error::Validate { .. }) => {
                // Semantically invalid (e.g. operand out of range): typed,
                // no position required.
            }
        }
    }
}

#[test]
fn empty_program_executes_cleanly() {
    let p = Program::new(3);
    let result = Simulator::perfect().run_shots(&p, 25).expect("runs");
    assert_eq!(result.shots(), 25);
    assert_eq!(result.count(0), 25); // |000> every time
}

#[test]
fn measure_all_only_program_executes_cleanly() {
    let p = Program::parse("qubits 2\nmeasure_all\n").expect("parses");
    let result = Simulator::perfect().run_shots(&p, 40).expect("runs");
    assert_eq!(result.shots(), 40);
    assert_eq!(result.count(0), 40);
}

#[test]
fn oversized_program_is_rejected_not_aborted() {
    // A non-Clifford gate keeps the plan on the state-vector engine,
    // where the dense-allocation guard must still fire.
    let n = MAX_SIM_QUBITS + 40;
    let p = Program::parse(&format!("qubits {n}\nt q[0]\n")).expect("parses");
    match Simulator::perfect().run_shots(&p, 1) {
        Err(ExecuteError::TooManyQubits { needed, max }) => {
            assert_eq!(needed, n);
            assert_eq!(max, MAX_SIM_QUBITS);
        }
        other => panic!("expected TooManyQubits, got {other:?}"),
    }

    // The same register with only Clifford structure now dispatches to
    // the stabilizer engine and serves fine…
    let clifford = Program::new(n);
    let result = Simulator::perfect().run_shots(&clifford, 1).expect("runs");
    assert_eq!(result.shots(), 1);

    // …but the stabilizer ceiling is still enforced.
    let huge = Program::new(MAX_STAB_QUBITS + 1);
    match Simulator::perfect().run_shots(&huge, 1) {
        Err(ExecuteError::TooManyQubits { needed, max }) => {
            assert_eq!(needed, MAX_STAB_QUBITS + 1);
            assert_eq!(max, MAX_STAB_QUBITS);
        }
        other => panic!("expected TooManyQubits, got {other:?}"),
    }
}

/// The compiler with differential verification on accepts the example
/// circuits the repo's demos are built from, on every platform family.
#[test]
fn verification_accepts_example_circuits() {
    use openql::{Kernel, QuantumProgram};

    let mut programs: Vec<QuantumProgram> = Vec::new();

    let mut bell = Kernel::new("bell", 2);
    bell.h(0).cnot(0, 1).measure_all();
    let mut p = QuantumProgram::new("bell", 2);
    p.add_kernel(bell);
    programs.push(p);

    let mut ghz = Kernel::new("ghz", 4);
    ghz.h(0);
    for q in 1..4 {
        ghz.cnot(0, q);
    }
    ghz.measure_all();
    let mut p = QuantumProgram::new("ghz4", 4);
    p.add_kernel(ghz);
    programs.push(p);

    // QFT-flavoured circuit: mixed single-qubit rotations + entanglers.
    let mut qft = Kernel::new("qftish", 3);
    qft.h(0)
        .rz(0, 0.785)
        .cnot(0, 1)
        .h(1)
        .rz(1, 1.571)
        .cnot(1, 2)
        .h(2);
    let mut p = QuantumProgram::new("qftish", 3);
    p.add_kernel(qft);
    programs.push(p);

    for program in &programs {
        let n = program.qubit_count();
        assert!(n <= openql::MAX_VERIFY_QUBITS);
        for platform in [
            Platform::perfect(n),
            Platform::superconducting_grid(1, n),
            Platform::semiconducting_linear(n),
        ] {
            let out = Compiler::new(platform)
                .with_verification(true)
                .compile(program)
                .unwrap_or_else(|e| panic!("{} failed verified compile: {e}", program.name()));
            assert!(
                out.report.passes_verified > 0,
                "{}: no pass was verified",
                program.name()
            );
        }
    }
}
