//! Concurrency stress tests for the lock-free admission ring.
//!
//! The ring is the only lock-free structure in the serving stack, so it
//! gets the full treatment: an N×M producer/consumer matrix asserting
//! zero loss, zero duplication and per-producer FIFO order at 1/2/4/8
//! threads per side, plus a proptest comparing sequential push/pop
//! interleavings against a `VecDeque` model.

use proptest::prelude::*;
use qca_service::Ring;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Tags an item with its producer and per-producer sequence number so
/// consumers can check provenance and order after the fact.
fn tag(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 32) | seq
}

/// Drives `producers`×`consumers` threads through one shared ring and
/// checks the three invariants every MPMC queue must keep:
///
/// 1. no loss — every pushed item is popped exactly once;
/// 2. no duplication — no item is popped twice;
/// 3. per-producer FIFO — each consumer's log, restricted to one
///    producer, is strictly increasing. (Each consumer's pops are a
///    subsequence of the ring's global FIFO order, so any reordering
///    within a producer would show up in some consumer's local log.)
fn stress(producers: usize, consumers: usize, capacity: usize, per_producer: u64) {
    let ring: Arc<Ring<u64>> = Arc::new(Ring::with_capacity(capacity));
    let done = Arc::new(AtomicBool::new(false));

    let producer_handles: Vec<_> = (0..producers)
        .map(|p| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for seq in 0..per_producer {
                    let mut item = tag(p, seq);
                    loop {
                        match ring.push(item) {
                            Ok(()) => break,
                            // Push returns the rejected value on a full
                            // ring; retry with exactly that value so a
                            // lost hand-back would break the count.
                            Err(back) => {
                                item = back;
                                thread::yield_now();
                            }
                        }
                    }
                }
            })
        })
        .collect();

    let consumer_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut log = Vec::new();
                loop {
                    match ring.pop() {
                        Some(item) => log.push(item),
                        None if done.load(Ordering::SeqCst) => {
                            // Producers are finished: one final sweep
                            // picks up anything pushed before the flag.
                            while let Some(item) = ring.pop() {
                                log.push(item);
                            }
                            return log;
                        }
                        None => thread::yield_now(),
                    }
                }
            })
        })
        .collect();

    for h in producer_handles {
        h.join().unwrap();
    }
    done.store(true, Ordering::SeqCst);
    let logs: Vec<Vec<u64>> = consumer_handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    let mut seen = vec![vec![0u32; per_producer as usize]; producers];
    for log in &logs {
        let mut last_seq = vec![None::<u64>; producers];
        for &item in log {
            let p = (item >> 32) as usize;
            let seq = item & 0xFFFF_FFFF;
            assert!(p < producers, "alien item {item:#x} popped from the ring");
            if let Some(prev) = last_seq[p] {
                assert!(
                    seq > prev,
                    "per-producer FIFO violated: producer {p} seq {seq} after {prev}"
                );
            }
            last_seq[p] = Some(seq);
            seen[p][seq as usize] += 1;
        }
    }
    for (p, counts) in seen.iter().enumerate() {
        for (seq, &count) in counts.iter().enumerate() {
            assert_eq!(
                count, 1,
                "producer {p} seq {seq}: popped {count} times (want exactly once)"
            );
        }
    }
}

#[test]
fn one_to_one_keeps_every_item_in_order() {
    stress(1, 1, 8, 2_000);
}

#[test]
fn producer_consumer_matrix_loses_and_duplicates_nothing() {
    // The full 1/2/4/8 matrix. A small capacity forces constant
    // wraparound so the stamp arithmetic is exercised far past one lap.
    for &producers in &[1usize, 2, 4, 8] {
        for &consumers in &[1usize, 2, 4, 8] {
            stress(producers, consumers, 16, 500);
        }
    }
}

#[test]
fn capacity_one_ring_degenerates_to_a_rendezvous() {
    // The tightest ring still keeps all three invariants.
    stress(4, 4, 1, 300);
}

#[test]
fn push_reports_full_and_hands_the_value_back() {
    let ring: Ring<String> = Ring::with_capacity(2);
    assert!(ring.push("a".to_string()).is_ok());
    assert!(ring.push("b".to_string()).is_ok());
    let back = ring.push("c".to_string()).unwrap_err();
    assert_eq!(back, "c", "a rejected push must return the exact value");
    assert_eq!(ring.pop().as_deref(), Some("a"));
    assert!(ring.push(back).is_ok());
    assert_eq!(ring.pop().as_deref(), Some("b"));
    assert_eq!(ring.pop().as_deref(), Some("c"));
    assert_eq!(ring.pop(), None);
}

/// One step of the model test: push a value or pop one.
#[derive(Debug, Clone)]
enum Op {
    Push(u16),
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u16..=u16::MAX).prop_map(Op::Push),
            2 => Just(Op::Pop),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequentially, the ring is observationally equivalent to a bounded
    /// `VecDeque`: same accepted pushes, same popped values, same
    /// length, for every interleaving of operations.
    #[test]
    fn ring_matches_a_bounded_vecdeque_model(capacity in 1usize..32, ops in arb_ops()) {
        let ring: Ring<u16> = Ring::with_capacity(capacity);
        let bound = ring.capacity();
        let mut model: VecDeque<u16> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let got = ring.push(v);
                    if model.len() < bound {
                        model.push_back(v);
                        prop_assert!(got.is_ok(), "ring rejected a push the model accepts");
                    } else {
                        prop_assert!(got == Err(v), "ring accepted a push past capacity");
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(ring.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.is_empty(), model.is_empty());
        }
        // Drain: whatever order went in comes out.
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(ring.pop(), Some(want));
        }
        prop_assert_eq!(ring.pop(), None);
    }
}
