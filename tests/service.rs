//! Integration tests for the serving runtime: determinism across worker
//! counts, warm-cache bit-identity (the plan cache must skip compilation
//! entirely), the TCP front-end, and fault tolerance — worker
//! supervision, seeded retry, shutdown draining and front-end hardening.

use qca_service::{
    JobFaults, JobSpec, RetryPolicy, Service, ServiceConfig, ServiceError, TcpConfig, TcpServer,
    TenantConfig,
};
use qca_telemetry::json::{self, JsonValue};
use qca_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const BELL: &str = "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n";
const GHZ4: &str =
    "qubits 4\nh q[0]\ncnot q[0], q[1]\ncnot q[1], q[2]\ncnot q[2], q[3]\nmeasure_all\n";

fn mixed_jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for seed in 0..4 {
        jobs.push(JobSpec::new(BELL).with_seed(seed).with_shots(3000));
        jobs.push(JobSpec::new(GHZ4).with_seed(seed).with_shots(2000));
    }
    // Large enough to shard on the multi-worker services.
    jobs.push(JobSpec::new(BELL).with_seed(99).with_shots(30_000));
    jobs
}

fn run_all(service: &Service, jobs: &[JobSpec]) -> Vec<qxsim::ShotHistogram> {
    let handle = service.handle();
    let ids: Vec<_> = jobs
        .iter()
        .map(|spec| handle.submit(spec.clone()).unwrap())
        .collect();
    ids.iter()
        .map(|&id| {
            handle
                .wait(id, Duration::from_secs(120))
                .unwrap()
                .histogram
                .clone()
        })
        .collect()
}

#[test]
fn histograms_are_bit_identical_across_worker_counts() {
    let jobs = mixed_jobs();
    let mut per_pool = Vec::new();
    for workers in [1usize, 2, 4] {
        let service = Service::with_config(ServiceConfig {
            workers,
            shard_min_shots: 4096,
            ..ServiceConfig::default()
        });
        per_pool.push(run_all(&service, &jobs));
        service.shutdown();
    }
    for pool in &per_pool[1..] {
        assert_eq!(
            &per_pool[0], pool,
            "worker count must not change any histogram"
        );
    }
}

fn compile_span_count(telemetry: &Telemetry) -> usize {
    telemetry
        .snapshot()
        .spans
        .iter()
        .filter(|s| s.name == "compile" || s.cat == "openql")
        .count()
}

#[test]
fn warm_cache_skips_compilation_and_reproduces_the_cold_run() {
    let telemetry = Telemetry::enabled();
    let service = Service::with_telemetry(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        telemetry.clone(),
    );
    let handle = service.handle();
    let spec = JobSpec::new(GHZ4).with_seed(1234).with_shots(5000);

    let cold = handle
        .wait(
            handle.submit(spec.clone()).unwrap(),
            Duration::from_secs(60),
        )
        .unwrap();
    assert!(!cold.cache_hit);
    let spans_after_cold = compile_span_count(&telemetry);
    assert!(spans_after_cold > 0, "the cold run must compile");
    let hits_after_cold = handle.stats().cache.hits;

    let warm = handle
        .wait(handle.submit(spec).unwrap(), Duration::from_secs(60))
        .unwrap();
    assert!(
        warm.cache_hit,
        "second submission must be served from cache"
    );
    assert_eq!(
        handle.stats().cache.hits,
        hits_after_cold + 1,
        "the cache-hit counter must increment"
    );
    assert_eq!(
        compile_span_count(&telemetry),
        spans_after_cold,
        "a warm run must emit no compile span at all"
    );
    assert_eq!(
        telemetry.snapshot().counters.get("service.cache.hit"),
        Some(&1),
        "telemetry must record the cache hit"
    );
    assert_eq!(
        cold.histogram, warm.histogram,
        "same seed ⇒ cached and fresh-compiled runs are bit-identical"
    );
    service.shutdown();
}

#[test]
fn a_fresh_service_reproduces_a_warm_service_bit_for_bit() {
    let spec = JobSpec::new(BELL).with_seed(77).with_shots(4000);
    // Warm service: compile once, then serve the measured run from cache.
    let warm_service = Service::with_config(ServiceConfig::default());
    let handle = warm_service.handle();
    handle
        .wait(
            handle.submit(spec.clone()).unwrap(),
            Duration::from_secs(60),
        )
        .unwrap();
    let warm = handle
        .wait(
            handle.submit(spec.clone()).unwrap(),
            Duration::from_secs(60),
        )
        .unwrap();
    assert!(warm.cache_hit);
    warm_service.shutdown();
    // Cold service: fresh compile of the same job.
    let cold_service = Service::with_config(ServiceConfig::default());
    let cold_handle = cold_service.handle();
    let cold = cold_handle
        .wait(cold_handle.submit(spec).unwrap(), Duration::from_secs(60))
        .unwrap();
    assert!(!cold.cache_hit);
    assert_eq!(cold.histogram, warm.histogram);
    cold_service.shutdown();
}

struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl WireClient {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        WireClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn ask(&mut self, line: &str) -> JsonValue {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        json::parse(&response).unwrap()
    }
}

fn wire_histogram(result: &JsonValue) -> BTreeMap<String, u64> {
    match result.get("histogram") {
        Some(JsonValue::Object(map)) => map
            .iter()
            .map(|(k, v)| (k.clone(), v.as_f64().unwrap() as u64))
            .collect(),
        other => panic!("no histogram in {other:?}"),
    }
}

#[test]
fn tcp_front_end_round_trips_jobs_and_exposes_cache_stats() {
    let telemetry = Telemetry::enabled();
    let service = Service::with_telemetry(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        telemetry.clone(),
    );
    let server = TcpServer::bind("127.0.0.1:0", service.handle()).unwrap();
    let mut client = WireClient::connect(server.local_addr());

    let bell_wire = "qubits 2\\nh q[0]\\ncnot q[0], q[1]\\nmeasure_all\\n";
    let submit =
        format!("{{\"verb\":\"submit\",\"circuit\":\"{bell_wire}\",\"shots\":2000,\"seed\":5}}");

    // Cold run over the wire.
    let response = client.ask(&submit);
    assert_eq!(
        response.get("ok"),
        Some(&JsonValue::Bool(true)),
        "{response:?}"
    );
    let job = response.get("job").and_then(JsonValue::as_f64).unwrap() as u64;
    let cold = client.ask(&format!(
        "{{\"verb\":\"result\",\"job\":{job},\"timeout_ms\":60000}}"
    ));
    assert_eq!(cold.get("cache_hit"), Some(&JsonValue::Bool(false)));
    assert_eq!(cold.get("shots").and_then(JsonValue::as_f64), Some(2000.0));
    let spans_after_cold = compile_span_count(&telemetry);

    // Warm run: identical submission must cache-hit, emit no compile span
    // and return a bit-identical histogram.
    let response = client.ask(&submit);
    let warm_job = response.get("job").and_then(JsonValue::as_f64).unwrap() as u64;
    let warm = client.ask(&format!(
        "{{\"verb\":\"result\",\"job\":{warm_job},\"timeout_ms\":60000}}"
    ));
    assert_eq!(warm.get("cache_hit"), Some(&JsonValue::Bool(true)));
    assert_eq!(compile_span_count(&telemetry), spans_after_cold);
    assert_eq!(wire_histogram(&cold), wire_histogram(&warm));

    // Status of a finished job, stats, and typed errors over the wire.
    let status = client.ask(&format!("{{\"verb\":\"status\",\"job\":{job}}}"));
    assert_eq!(
        status.get("status").and_then(JsonValue::as_str),
        Some("done")
    );
    let stats = client.ask("{\"verb\":\"stats\"}");
    assert!(
        stats
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(JsonValue::as_f64)
            .unwrap()
            >= 1.0
    );
    let missing = client.ask("{\"verb\":\"status\",\"job\":424242}");
    assert_eq!(missing.get("ok"), Some(&JsonValue::Bool(false)));
    assert_eq!(
        missing.get("error").and_then(JsonValue::as_str),
        Some("unknown_job")
    );
    let garbage = client.ask("{\"verb\":\"submit\",\"circuit\":\"qubits 1\\nwarp q[0]\\n\"}");
    assert_eq!(garbage.get("ok"), Some(&JsonValue::Bool(false)));
    assert_eq!(
        garbage.get("error").and_then(JsonValue::as_str),
        Some("parse")
    );

    server.stop();
    service.shutdown();
}

/// Satellite: supervision liveness. A worker killed mid-job (injected
/// panic, no retry budget) must surface as a typed `WorkerPanic` — not a
/// `WaitTimeout` — the pool must respawn to its configured size, and an
/// identical resubmission must then succeed with a histogram
/// bit-identical to a clean service's run.
#[test]
fn a_worker_panic_is_a_typed_failure_and_the_pool_heals() {
    let service = Service::with_config(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    let spec = JobSpec::new(BELL).with_seed(4242).with_shots(1500);

    let doomed = handle
        .submit(spec.clone().with_faults(JobFaults {
            panic_attempts: u32::MAX,
            fail_attempts: 0,
        }))
        .unwrap();
    match handle.wait(doomed, Duration::from_secs(30)) {
        Err(ServiceError::WorkerPanic { message }) => {
            assert!(
                message.contains("injected worker panic"),
                "panic payload must survive into the typed error: {message}"
            );
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }

    // The pool must heal back to its configured size, with the panic and
    // the respawn accounted. (The replacement worker is spawned before
    // the dying one retires, so `workers_live` may never visibly dip —
    // poll on the counters too.)
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = handle.stats();
        if stats.workers_live == stats.workers && stats.panics >= 1 && stats.respawns >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pool never healed: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // The same job without faults must now run to a bit-identical result.
    let healed = handle
        .wait(
            handle.submit(spec.clone()).unwrap(),
            Duration::from_secs(30),
        )
        .unwrap();
    let clean_service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let clean_handle = clean_service.handle();
    let clean = clean_handle
        .wait(clean_handle.submit(spec).unwrap(), Duration::from_secs(30))
        .unwrap();
    assert_eq!(
        healed.histogram, clean.histogram,
        "a healed pool must not perturb results"
    );
    clean_service.shutdown();
    service.shutdown();
}

/// Transient faults burn attempts; the job then succeeds with the exact
/// histogram a fault-free run produces (retries replay the same per-shot
/// RNG streams) and reports its attempt count.
#[test]
fn retried_jobs_reproduce_the_fault_free_histogram_bit_for_bit() {
    let spec = JobSpec::new(GHZ4).with_seed(90210).with_shots(2500);
    let clean_service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let clean_handle = clean_service.handle();
    let clean = clean_handle
        .wait(
            clean_handle.submit(spec.clone()).unwrap(),
            Duration::from_secs(30),
        )
        .unwrap();
    assert_eq!(clean.attempts, 1);
    clean_service.shutdown();

    let service = Service::with_config(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    let faulty = spec
        .with_faults(JobFaults {
            panic_attempts: 0,
            fail_attempts: 2,
        })
        .with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 1,
            jitter_seed: 99,
        });
    let outcome = handle
        .wait(handle.submit(faulty).unwrap(), Duration::from_secs(30))
        .unwrap();
    assert_eq!(outcome.attempts, 3, "two faults + one success");
    assert_eq!(
        outcome.histogram, clean.histogram,
        "retries must be bit-invisible in the result"
    );
    let stats = handle.stats();
    assert_eq!(stats.retries_scheduled, 2);
    assert_eq!(stats.retries_exhausted, 0);
    service.shutdown();
}

/// More faults than attempts: the failure is typed, terminal and counted
/// as an exhausted retry — never a hang.
#[test]
fn exhausted_retries_fail_with_a_typed_error() {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    let spec = JobSpec::new(BELL)
        .with_shots(500)
        .with_faults(JobFaults {
            panic_attempts: 0,
            fail_attempts: u32::MAX,
        })
        .with_retry(RetryPolicy::with_attempts(3, 0));
    match handle.wait(handle.submit(spec).unwrap(), Duration::from_secs(30)) {
        Err(ServiceError::Execute(msg)) => {
            assert!(msg.contains("injected transient fault"), "{msg}");
        }
        other => panic!("expected an execute failure, got {other:?}"),
    }
    let stats = handle.stats();
    assert_eq!(stats.retries_scheduled, 2);
    assert_eq!(stats.retries_exhausted, 1);
    service.shutdown();
}

/// Compile errors are permanent: no retry budget may be spent on them.
#[test]
fn compile_failures_are_never_retried() {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    // Parses fine but exceeds the dense simulator's qubit capacity at
    // plan compile time (the `t` keeps it off the stabilizer engines,
    // which would happily serve 31 Clifford qubits).
    let spec = JobSpec::new("qubits 31\nt q[0]\nmeasure_all\n")
        .with_shots(10)
        .with_retry(RetryPolicy::with_attempts(4, 0));
    match handle.wait(handle.submit(spec).unwrap(), Duration::from_secs(30)) {
        Err(ServiceError::Compile(_)) => {}
        other => panic!("expected a compile failure, got {other:?}"),
    }
    assert_eq!(
        handle.stats().retries_scheduled,
        0,
        "deterministic failures must not burn retries"
    );
    service.shutdown();
}

/// `shutdown_now` must leave no waiter stranded: queued jobs fail with
/// the typed `ShuttingDown`, in-flight jobs settle normally.
#[test]
fn shutdown_now_fails_queued_jobs_with_a_typed_error() {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    // Pin the single worker with a slow job, then queue distinct jobs
    // behind it (distinct seeds, so they cannot coalesce).
    let mut ids = vec![handle
        .submit(JobSpec::new(GHZ4).with_seed(1).with_shots(4000))
        .unwrap()];
    for seed in 2..6 {
        ids.push(
            handle
                .submit(JobSpec::new(BELL).with_seed(seed).with_shots(2000))
                .unwrap(),
        );
    }
    service.shutdown_now();
    let mut shut_down = 0;
    for id in ids {
        match handle.wait(id, Duration::from_secs(10)) {
            Ok(_) => {}
            Err(ServiceError::ShuttingDown) => shut_down += 1,
            other => panic!("job must be terminal after shutdown_now, got {other:?}"),
        }
    }
    assert!(
        shut_down >= 1,
        "at least one queued job must observe ShuttingDown"
    );
}

/// An oversized request frame draws a typed error and a disconnect —
/// while a concurrent well-behaved connection keeps working.
#[test]
fn oversized_frames_are_rejected_without_affecting_other_clients() {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let config = TcpConfig {
        max_request_bytes: 1024,
        ..TcpConfig::default()
    };
    let server = TcpServer::bind_with("127.0.0.1:0", service.handle(), config).unwrap();
    let mut good = WireClient::connect(server.local_addr());

    let mut abuser = TcpStream::connect(server.local_addr()).unwrap();
    abuser
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    abuser.write_all("x".repeat(5000).as_bytes()).unwrap();
    abuser.write_all(b"\n").unwrap();
    let mut response = String::new();
    BufReader::new(abuser.try_clone().unwrap())
        .read_line(&mut response)
        .unwrap();
    let parsed = json::parse(&response).unwrap();
    assert_eq!(
        parsed.get("error").and_then(JsonValue::as_str),
        Some("frame_too_large")
    );

    // The well-behaved connection is unaffected, and the incident is
    // visible both in-process and over the wire (PR-7 counters were
    // previously telemetry-only).
    let stats = good.ask("{\"verb\":\"stats\"}");
    assert_eq!(stats.get("ok"), Some(&JsonValue::Bool(true)));
    assert_eq!(
        stats
            .get("tcp")
            .and_then(|t| t.get("oversized"))
            .and_then(JsonValue::as_f64),
        Some(1.0),
        "oversized frames must be queryable via stats: {stats:?}"
    );
    assert_eq!(service.handle().stats().tcp.oversized, 1);
    server.stop();
    service.shutdown();
}

/// A stalling (slow-loris) client is disconnected once the read timeout
/// elapses instead of pinning a connection thread forever.
#[test]
fn stalled_clients_are_disconnected_by_the_read_timeout() {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let config = TcpConfig {
        read_timeout: Some(Duration::from_millis(150)),
        ..TcpConfig::default()
    };
    let server = TcpServer::bind_with("127.0.0.1:0", service.handle(), config).unwrap();
    let mut loris = TcpStream::connect(server.local_addr()).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Half a request, then silence: the server must hang up on us.
    loris.write_all(b"{\"verb\":\"sta").unwrap();
    let mut buf = String::new();
    let n = BufReader::new(loris.try_clone().unwrap())
        .read_line(&mut buf)
        .unwrap();
    assert_eq!(n, 0, "server must close a stalled connection, got {buf:?}");
    server.stop();
    service.shutdown();
}

/// Connections beyond the cap are shed with an immediate `overloaded`
/// response instead of a serving thread.
#[test]
fn connections_beyond_the_cap_are_shed_with_overloaded() {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let config = TcpConfig {
        max_connections: 1,
        ..TcpConfig::default()
    };
    let server = TcpServer::bind_with("127.0.0.1:0", service.handle(), config).unwrap();
    // First client occupies the only slot (and proves it works).
    let mut first = WireClient::connect(server.local_addr());
    let stats = first.ask("{\"verb\":\"stats\"}");
    assert_eq!(stats.get("ok"), Some(&JsonValue::Bool(true)));
    // Second client must be shed.
    let shed = TcpStream::connect(server.local_addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = String::new();
    BufReader::new(shed.try_clone().unwrap())
        .read_line(&mut response)
        .unwrap();
    let parsed = json::parse(&response).unwrap();
    assert_eq!(
        parsed.get("error").and_then(JsonValue::as_str),
        Some("overloaded"),
        "{response:?}"
    );
    drop(first);
    server.stop();
    service.shutdown();
}

/// Observability: every settled job carries an ordered lifecycle record
/// (admit ≤ claim ≤ exec start ≤ settle) and the aggregate latency
/// summary on [`ServiceStats`] reflects the settled population.
#[test]
fn lifecycle_records_are_ordered_and_feed_latency_summaries() {
    let service = Service::with_config(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    let ids: Vec<_> = (0..4)
        .map(|seed| {
            handle
                .submit(JobSpec::new(BELL).with_seed(seed).with_shots(1500))
                .unwrap()
        })
        .collect();
    for &id in &ids {
        handle.wait(id, Duration::from_secs(60)).unwrap();
    }

    for &id in &ids {
        let lc = handle.lifecycle(id).unwrap();
        assert_eq!(lc.status, "done");
        let claim = lc.claim_us.expect("settled job has a claim stamp");
        let exec = lc.exec_start_us.expect("settled job has an exec stamp");
        let settle = lc.settle_us.expect("settled job has a settle stamp");
        assert!(
            lc.admit_us <= claim && claim <= exec && exec <= settle,
            "stage stamps must be ordered: admit {} claim {claim} exec {exec} settle {settle}",
            lc.admit_us
        );
    }
    // The four distinct seeds share one circuit: the first execution
    // compiles, later ones may cache-hit, so at least one record carries
    // a compile duration.
    assert!(
        ids.iter()
            .any(|&id| handle.lifecycle(id).unwrap().compile_us.is_some()),
        "at least one job must record its compile time"
    );

    let stats = handle.stats();
    assert_eq!(stats.latency.jobs_measured, ids.len() as u64);
    assert!(
        stats.latency.e2e_p50_us <= stats.latency.e2e_p99_us,
        "p50 must not exceed p99"
    );
    assert!(
        stats.latency.e2e_p50_us >= stats.latency.queue_wait_p50_us,
        "e2e includes the queue wait"
    );
    assert_eq!(
        handle.lifecycle(qca_service::JobId(424242)).unwrap_err(),
        ServiceError::UnknownJob(424242)
    );
    service.shutdown();
}

/// Observability: `trace_sample_n = 1` traces every job with per-stage
/// `service.job` spans; `trace_sample_n = 0` suppresses both the spans
/// and the sampled flag. Sampling keys off the content hash, so the
/// decision is reproducible run to run.
#[test]
fn trace_sampling_is_deterministic_and_emits_job_spans() {
    let job_spans = |telemetry: &Telemetry| -> Vec<String> {
        telemetry
            .snapshot()
            .spans
            .iter()
            .filter(|s| s.cat == "service.job")
            .map(|s| s.name.clone())
            .collect()
    };
    let run_with_sampling = |n: u64| -> (bool, Vec<String>) {
        let telemetry = Telemetry::enabled();
        let service = Service::with_telemetry(
            ServiceConfig {
                workers: 1,
                trace_sample_n: n,
                ..ServiceConfig::default()
            },
            telemetry.clone(),
        );
        let handle = service.handle();
        let id = handle
            .submit(JobSpec::new(GHZ4).with_seed(7).with_shots(1000))
            .unwrap();
        handle.wait(id, Duration::from_secs(60)).unwrap();
        let sampled = handle.lifecycle(id).unwrap().sampled;
        let spans = job_spans(&telemetry);
        service.shutdown();
        (sampled, spans)
    };

    let (sampled, spans) = run_with_sampling(1);
    assert!(sampled, "trace_sample_n=1 must sample every job");
    for stage in ["queue_wait", "execute", "e2e"] {
        assert!(
            spans.iter().any(|name| name.ends_with(stage)),
            "missing {stage} span in {spans:?}"
        );
    }

    let (sampled, spans) = run_with_sampling(0);
    assert!(!sampled, "trace_sample_n=0 must disable sampling");
    assert!(spans.is_empty(), "no job spans expected, got {spans:?}");
}

/// Observability over the wire: `metrics` returns an embedded JSON
/// report (and a Prometheus exposition that passes the validator), and
/// `trace` exposes the lifecycle record of a job.
#[test]
fn metrics_and_trace_verbs_round_trip_over_tcp() {
    let service = Service::with_telemetry(
        ServiceConfig {
            workers: 1,
            trace_sample_n: 1,
            ..ServiceConfig::default()
        },
        Telemetry::enabled(),
    );
    let server = TcpServer::bind("127.0.0.1:0", service.handle()).unwrap();
    let mut client = WireClient::connect(server.local_addr());

    let bell_wire = "qubits 2\\nh q[0]\\ncnot q[0], q[1]\\nmeasure_all\\n";
    let submit =
        format!("{{\"verb\":\"submit\",\"circuit\":\"{bell_wire}\",\"shots\":1000,\"seed\":3}}");
    let response = client.ask(&submit);
    let job = response.get("job").and_then(JsonValue::as_f64).unwrap() as u64;
    client.ask(&format!(
        "{{\"verb\":\"result\",\"job\":{job},\"timeout_ms\":60000}}"
    ));

    // JSON form embeds the full metrics report as an object.
    let metrics = client.ask("{\"verb\":\"metrics\"}");
    assert_eq!(metrics.get("ok"), Some(&JsonValue::Bool(true)));
    assert_eq!(
        metrics.get("format").and_then(JsonValue::as_str),
        Some("json")
    );
    let report = metrics.get("metrics").expect("embedded report");
    assert!(
        report.get("hists").is_some(),
        "metrics report must include the histogram section: {report:?}"
    );

    // Prometheus form passes the schema validator and exposes the
    // service latency histograms.
    let metrics = client.ask("{\"verb\":\"metrics\",\"format\":\"prometheus\"}");
    let text = metrics
        .get("metrics")
        .and_then(JsonValue::as_str)
        .expect("prometheus text");
    let check = qca_telemetry::prometheus::validate(text).expect("valid exposition");
    assert!(
        check
            .histograms
            .iter()
            .any(|name| name.starts_with("service_latency_")),
        "expected a service latency histogram in {:?}",
        check.histograms
    );

    // `trace` returns the job's lifecycle stamps.
    let trace = client.ask(&format!("{{\"verb\":\"trace\",\"job\":{job}}}"));
    assert_eq!(trace.get("ok"), Some(&JsonValue::Bool(true)));
    assert_eq!(trace.get("sampled"), Some(&JsonValue::Bool(true)));
    let admit = trace.get("admit_us").and_then(JsonValue::as_f64).unwrap();
    let settle = trace.get("settle_us").and_then(JsonValue::as_f64).unwrap();
    assert!(admit <= settle, "trace stamps must be ordered: {trace:?}");
    let missing = client.ask("{\"verb\":\"trace\",\"job\":424242}");
    assert_eq!(missing.get("ok"), Some(&JsonValue::Bool(false)));

    server.stop();
    service.shutdown();
}

/// A wide, deep circuit whose execution takes real wall-clock time:
/// `layers` alternating rounds of Hadamards and a CNOT chain over
/// `qubits` qubits. Shot counts do not buy time (sampling is performed
/// per outcome, not per shot), so tests that need a busy worker use
/// gate count instead.
fn heavy_circuit(qubits: usize, layers: usize) -> String {
    let mut s = format!("qubits {qubits}\n");
    for _ in 0..layers {
        for q in 0..qubits {
            s.push_str(&format!("h q[{q}]\n"));
        }
        for q in 0..qubits - 1 {
            s.push_str(&format!("cnot q[{q}], q[{}]\n", q + 1));
        }
    }
    s.push_str("measure_all\n");
    s
}

/// Satellite: multi-tenancy on the wire. A tenant-tagged submission
/// lands in its configured lane, the per-tenant counters (weight,
/// quota, queued, submitted, completed, shed) are published by the
/// `stats` verb, and a quota shed surfaces as the typed `tenant_quota`
/// error kind — all through the TCP front-end.
#[test]
fn tenant_stats_and_quota_sheds_round_trip_over_the_wire() {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        tenants: vec![
            TenantConfig::new("batch", 1).with_quota(1),
            TenantConfig::new("vip", 3),
        ],
        ..ServiceConfig::default()
    });
    let server = TcpServer::bind("127.0.0.1:0", service.handle()).unwrap();
    let mut client = WireClient::connect(server.local_addr());

    let bell_wire = "qubits 2\\nh q[0]\\ncnot q[0], q[1]\\nmeasure_all\\n";
    // A compute-heavy untagged job (shots are sampled in O(outcomes), so
    // only gate count buys wall-clock time) pins the single worker on
    // the default lane; the batch submissions below then stay queued
    // against their quota.
    let heavy_wire = heavy_circuit(16, 6).replace('\n', "\\n");
    let plug = client.ask(&format!(
        "{{\"verb\":\"submit\",\"circuit\":\"{heavy_wire}\",\"seed\":9}}"
    ));
    let plug_job = plug.get("job").and_then(JsonValue::as_f64).unwrap() as u64;

    // Pipeline a burst of batch submissions in one TCP write so they hit
    // admission back to back — a request/response loop would let the
    // worker drain the lane between round trips and never trip the
    // quota. The handler processes them in order; with the worker pinned
    // (or merely ~1ms per job), at least one lands on a full lane.
    let mut burst = String::new();
    for seed in 1..=20u64 {
        burst.push_str(&format!(
            "{{\"verb\":\"submit\",\"circuit\":\"{bell_wire}\",\"seed\":{seed},\"tenant\":\"batch\"}}\n"
        ));
    }
    client.writer.write_all(burst.as_bytes()).unwrap();
    let mut batch_jobs = Vec::new();
    let mut shed_seen = false;
    for _ in 0..20 {
        let mut line = String::new();
        client.reader.read_line(&mut line).unwrap();
        let response = json::parse(&line).unwrap();
        if response.get("ok") == Some(&JsonValue::Bool(true)) {
            batch_jobs.push(response.get("job").and_then(JsonValue::as_f64).unwrap() as u64);
        } else {
            assert_eq!(
                response.get("error").and_then(JsonValue::as_str),
                Some("tenant_quota"),
                "a quota shed must be the typed tenant_quota kind: {response:?}"
            );
            shed_seen = true;
        }
    }
    assert!(
        shed_seen,
        "20 pipelined submissions against a quota of 1 never tripped it"
    );

    let stats = client.ask("{\"verb\":\"stats\"}");
    let tenants = match stats.get("tenants") {
        Some(JsonValue::Array(items)) => items.clone(),
        other => panic!("stats must publish a tenants array, got {other:?}"),
    };
    let lane = |name: &str| {
        tenants
            .iter()
            .find(|t| t.get("name").and_then(JsonValue::as_str) == Some(name))
            .unwrap_or_else(|| panic!("lane {name} missing from {tenants:?}"))
            .clone()
    };
    let batch = lane("batch");
    assert_eq!(batch.get("weight").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(batch.get("quota").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(
        batch.get("submitted").and_then(JsonValue::as_f64),
        Some(batch_jobs.len() as f64),
        "every admitted batch job must be counted: {batch:?}"
    );
    assert!(
        batch.get("shed").and_then(JsonValue::as_f64).unwrap() >= 1.0,
        "the quota rejection must be counted: {batch:?}"
    );
    let vip = lane("vip");
    assert_eq!(vip.get("weight").and_then(JsonValue::as_f64), Some(3.0));
    assert_eq!(vip.get("quota"), Some(&JsonValue::Null));
    assert_eq!(vip.get("submitted").and_then(JsonValue::as_f64), Some(0.0));

    // Every admitted job completes; afterwards nothing is queued and the
    // batch lane records exactly its own completions.
    for job in std::iter::once(plug_job).chain(batch_jobs.iter().copied()) {
        let result = client.ask(&format!(
            "{{\"verb\":\"result\",\"job\":{job},\"timeout_ms\":120000}}"
        ));
        assert_eq!(result.get("ok"), Some(&JsonValue::Bool(true)), "{result:?}");
    }
    let stats = client.ask("{\"verb\":\"stats\"}");
    let tenants = match stats.get("tenants") {
        Some(JsonValue::Array(items)) => items.clone(),
        other => panic!("stats must publish a tenants array, got {other:?}"),
    };
    let batch = tenants
        .iter()
        .find(|t| t.get("name").and_then(JsonValue::as_str) == Some("batch"))
        .unwrap();
    assert_eq!(batch.get("queued").and_then(JsonValue::as_f64), Some(0.0));
    assert_eq!(
        batch.get("completed").and_then(JsonValue::as_f64),
        Some(batch_jobs.len() as f64)
    );

    server.stop();
    service.shutdown();
}
