//! Integration tests for the serving runtime: determinism across worker
//! counts, warm-cache bit-identity (the plan cache must skip compilation
//! entirely), and the TCP front-end.

use qca_service::{JobSpec, Service, ServiceConfig, TcpServer};
use qca_telemetry::json::{self, JsonValue};
use qca_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const BELL: &str = "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n";
const GHZ4: &str =
    "qubits 4\nh q[0]\ncnot q[0], q[1]\ncnot q[1], q[2]\ncnot q[2], q[3]\nmeasure_all\n";

fn mixed_jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for seed in 0..4 {
        jobs.push(JobSpec::new(BELL).with_seed(seed).with_shots(3000));
        jobs.push(JobSpec::new(GHZ4).with_seed(seed).with_shots(2000));
    }
    // Large enough to shard on the multi-worker services.
    jobs.push(JobSpec::new(BELL).with_seed(99).with_shots(30_000));
    jobs
}

fn run_all(service: &Service, jobs: &[JobSpec]) -> Vec<qxsim::ShotHistogram> {
    let handle = service.handle();
    let ids: Vec<_> = jobs
        .iter()
        .map(|spec| handle.submit(spec.clone()).unwrap())
        .collect();
    ids.iter()
        .map(|&id| {
            handle
                .wait(id, Duration::from_secs(120))
                .unwrap()
                .histogram
                .clone()
        })
        .collect()
}

#[test]
fn histograms_are_bit_identical_across_worker_counts() {
    let jobs = mixed_jobs();
    let mut per_pool = Vec::new();
    for workers in [1usize, 2, 4] {
        let service = Service::with_config(ServiceConfig {
            workers,
            shard_min_shots: 4096,
            ..ServiceConfig::default()
        });
        per_pool.push(run_all(&service, &jobs));
        service.shutdown();
    }
    for pool in &per_pool[1..] {
        assert_eq!(
            &per_pool[0], pool,
            "worker count must not change any histogram"
        );
    }
}

fn compile_span_count(telemetry: &Telemetry) -> usize {
    telemetry
        .snapshot()
        .spans
        .iter()
        .filter(|s| s.name == "compile" || s.cat == "openql")
        .count()
}

#[test]
fn warm_cache_skips_compilation_and_reproduces_the_cold_run() {
    let telemetry = Telemetry::enabled();
    let service = Service::with_telemetry(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        telemetry.clone(),
    );
    let handle = service.handle();
    let spec = JobSpec::new(GHZ4).with_seed(1234).with_shots(5000);

    let cold = handle
        .wait(
            handle.submit(spec.clone()).unwrap(),
            Duration::from_secs(60),
        )
        .unwrap();
    assert!(!cold.cache_hit);
    let spans_after_cold = compile_span_count(&telemetry);
    assert!(spans_after_cold > 0, "the cold run must compile");
    let hits_after_cold = handle.stats().cache.hits;

    let warm = handle
        .wait(handle.submit(spec).unwrap(), Duration::from_secs(60))
        .unwrap();
    assert!(
        warm.cache_hit,
        "second submission must be served from cache"
    );
    assert_eq!(
        handle.stats().cache.hits,
        hits_after_cold + 1,
        "the cache-hit counter must increment"
    );
    assert_eq!(
        compile_span_count(&telemetry),
        spans_after_cold,
        "a warm run must emit no compile span at all"
    );
    assert_eq!(
        telemetry.snapshot().counters.get("service.cache.hit"),
        Some(&1),
        "telemetry must record the cache hit"
    );
    assert_eq!(
        cold.histogram, warm.histogram,
        "same seed ⇒ cached and fresh-compiled runs are bit-identical"
    );
    service.shutdown();
}

#[test]
fn a_fresh_service_reproduces_a_warm_service_bit_for_bit() {
    let spec = JobSpec::new(BELL).with_seed(77).with_shots(4000);
    // Warm service: compile once, then serve the measured run from cache.
    let warm_service = Service::with_config(ServiceConfig::default());
    let handle = warm_service.handle();
    handle
        .wait(
            handle.submit(spec.clone()).unwrap(),
            Duration::from_secs(60),
        )
        .unwrap();
    let warm = handle
        .wait(
            handle.submit(spec.clone()).unwrap(),
            Duration::from_secs(60),
        )
        .unwrap();
    assert!(warm.cache_hit);
    warm_service.shutdown();
    // Cold service: fresh compile of the same job.
    let cold_service = Service::with_config(ServiceConfig::default());
    let cold_handle = cold_service.handle();
    let cold = cold_handle
        .wait(cold_handle.submit(spec).unwrap(), Duration::from_secs(60))
        .unwrap();
    assert!(!cold.cache_hit);
    assert_eq!(cold.histogram, warm.histogram);
    cold_service.shutdown();
}

struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl WireClient {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        WireClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn ask(&mut self, line: &str) -> JsonValue {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        json::parse(&response).unwrap()
    }
}

fn wire_histogram(result: &JsonValue) -> BTreeMap<String, u64> {
    match result.get("histogram") {
        Some(JsonValue::Object(map)) => map
            .iter()
            .map(|(k, v)| (k.clone(), v.as_f64().unwrap() as u64))
            .collect(),
        other => panic!("no histogram in {other:?}"),
    }
}

#[test]
fn tcp_front_end_round_trips_jobs_and_exposes_cache_stats() {
    let telemetry = Telemetry::enabled();
    let service = Service::with_telemetry(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        telemetry.clone(),
    );
    let server = TcpServer::bind("127.0.0.1:0", service.handle()).unwrap();
    let mut client = WireClient::connect(server.local_addr());

    let bell_wire = "qubits 2\\nh q[0]\\ncnot q[0], q[1]\\nmeasure_all\\n";
    let submit =
        format!("{{\"verb\":\"submit\",\"circuit\":\"{bell_wire}\",\"shots\":2000,\"seed\":5}}");

    // Cold run over the wire.
    let response = client.ask(&submit);
    assert_eq!(
        response.get("ok"),
        Some(&JsonValue::Bool(true)),
        "{response:?}"
    );
    let job = response.get("job").and_then(JsonValue::as_f64).unwrap() as u64;
    let cold = client.ask(&format!(
        "{{\"verb\":\"result\",\"job\":{job},\"timeout_ms\":60000}}"
    ));
    assert_eq!(cold.get("cache_hit"), Some(&JsonValue::Bool(false)));
    assert_eq!(cold.get("shots").and_then(JsonValue::as_f64), Some(2000.0));
    let spans_after_cold = compile_span_count(&telemetry);

    // Warm run: identical submission must cache-hit, emit no compile span
    // and return a bit-identical histogram.
    let response = client.ask(&submit);
    let warm_job = response.get("job").and_then(JsonValue::as_f64).unwrap() as u64;
    let warm = client.ask(&format!(
        "{{\"verb\":\"result\",\"job\":{warm_job},\"timeout_ms\":60000}}"
    ));
    assert_eq!(warm.get("cache_hit"), Some(&JsonValue::Bool(true)));
    assert_eq!(compile_span_count(&telemetry), spans_after_cold);
    assert_eq!(wire_histogram(&cold), wire_histogram(&warm));

    // Status of a finished job, stats, and typed errors over the wire.
    let status = client.ask(&format!("{{\"verb\":\"status\",\"job\":{job}}}"));
    assert_eq!(
        status.get("status").and_then(JsonValue::as_str),
        Some("done")
    );
    let stats = client.ask("{\"verb\":\"stats\"}");
    assert!(
        stats
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(JsonValue::as_f64)
            .unwrap()
            >= 1.0
    );
    let missing = client.ask("{\"verb\":\"status\",\"job\":424242}");
    assert_eq!(missing.get("ok"), Some(&JsonValue::Bool(false)));
    assert_eq!(
        missing.get("error").and_then(JsonValue::as_str),
        Some("unknown_job")
    );
    let garbage = client.ask("{\"verb\":\"submit\",\"circuit\":\"qubits 1\\nwarp q[0]\\n\"}");
    assert_eq!(garbage.get("ok"), Some(&JsonValue::Bool(false)));
    assert_eq!(
        garbage.get("error").and_then(JsonValue::as_str),
        Some("parse")
    );

    server.stop();
    service.shutdown();
}
