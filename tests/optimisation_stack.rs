//! Integration tests for the optimisation accelerator: TSP → QUBO →
//! (annealers | QAOA), embedding limits, and the heterogeneous host.

use annealer::{
    clique_embedding, embed_ising, Chimera, DigitalAnnealer, Sampler, SimulatedAnnealer,
};
use optim::{solve_tsp_with_sampler, TspInstance, TspQubo};
use qca_core::{HostCpu, KernelPayload, KernelResult, QuantumAnnealerAccelerator};

#[test]
fn all_solvers_agree_on_the_paper_instance() {
    let tsp = TspInstance::nl_four_cities();
    let (_, exact) = tsp.brute_force();
    assert!((exact - 1.42).abs() < 1e-9);

    let sa = solve_tsp_with_sampler(&tsp, &SimulatedAnnealer::new(), 50).unwrap();
    let da = solve_tsp_with_sampler(&tsp, &DigitalAnnealer::new(), 20).unwrap();
    for sol in [&sa, &da] {
        assert!(
            (sol.cost - exact).abs() < 1e-9,
            "{} found {} instead of {exact}",
            sol.method,
            sol.cost
        );
    }
}

#[test]
fn qubo_energy_ordering_matches_tour_cost_ordering() {
    let tsp = TspInstance::nl_four_cities();
    let enc = TspQubo::encode(&tsp, TspQubo::default_penalty(&tsp));
    // For any two feasible tours, QUBO energies order exactly like costs.
    let tours = [[0usize, 1, 2, 3], [0, 2, 1, 3], [0, 1, 3, 2], [2, 3, 0, 1]];
    for a in &tours {
        for b in &tours {
            let ea = enc.qubo.energy(&enc.encode_tour(a));
            let eb = enc.qubo.energy(&enc.encode_tour(b));
            let ca = tsp.tour_cost(a);
            let cb = tsp.tour_cost(b);
            assert_eq!(
                ea < eb - 1e-12,
                ca < cb - 1e-12,
                "ordering mismatch for {a:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn chimera_embedding_limits_match_paper_shape() {
    // D-Wave 2000Q (C16): K64 embeds, K65 does not. With N^2 variables,
    // the largest embeddable TSP is 8 cities — the paper says embedding
    // fails for 10 and quotes 9 as the practical max; our clique bound
    // sits right in that band.
    let c16 = Chimera::dwave_2000q();
    assert!(clique_embedding(64, &c16).is_some());
    assert!(clique_embedding(65, &c16).is_none());
    let max_cities = (1..)
        .take_while(|n| clique_embedding(n * n, &c16).is_some())
        .last()
        .unwrap();
    assert_eq!(max_cities, 8);
    // The fully-connected 8192-node digital annealer takes 90 cities:
    // 90^2 = 8100 <= 8192 but 91^2 > 8192.
    let da = DigitalAnnealer::new();
    assert!(da.fits(&annealer::Ising::new(90 * 90)));
    assert!(!da.fits(&annealer::Ising::new(91 * 91)));
}

#[test]
fn embedded_solve_degrades_gracefully_vs_native() {
    // Solve a small dense Ising natively and through a Chimera embedding;
    // the embedded route must still find the optimum but uses many more
    // qubits (the paper's embedding overhead).
    let mut logical = annealer::Ising::new(6);
    for i in 0..6 {
        logical.add_field(i, 0.3 * (i as f64 - 2.5));
        for j in i + 1..6 {
            logical.add_coupling(i, j, if (i * j) % 3 == 0 { -0.7 } else { 0.4 });
        }
    }
    let (_, exact) = logical.brute_force_minimum();

    let chimera = Chimera::new(2);
    let emb = embed_ising(&logical, &chimera, 3.0).expect("K6 fits C2");
    assert!(
        emb.physical.len() > logical.len() * 2,
        "embedding inflates qubits"
    );

    let sa = SimulatedAnnealer::new().with_seed(5);
    let native = sa.sample(&logical, 20).lowest_energy().unwrap();
    assert!((native - exact).abs() < 1e-9);

    let set = sa.sample(&emb.physical, 60);
    let mut best_decoded = f64::INFINITY;
    for s in set.iter() {
        let (spins, _broken) = emb.decode(&s.spins);
        best_decoded = best_decoded.min(logical.energy(&spins));
    }
    assert!(
        (best_decoded - exact).abs() < 1e-9,
        "embedded best {best_decoded} vs exact {exact}"
    );
}

#[test]
fn host_cpu_runs_the_annealing_track_end_to_end() {
    let tsp = TspInstance::nl_four_cities();
    let enc = TspQubo::encode(&tsp, TspQubo::default_penalty(&tsp));
    let (ising, _offset) = enc.qubo.to_ising();
    let mut host = HostCpu::new();
    host.attach(Box::new(QuantumAnnealerAccelerator::new(
        SimulatedAnnealer::new(),
        8192,
    )));
    let result = host
        .offload(&KernelPayload::Anneal { ising, reads: 50 })
        .unwrap();
    let KernelResult::Samples(set) = result else {
        panic!("annealer returns samples")
    };
    // Decode the best feasible sample into the optimal tour.
    let mut best = f64::INFINITY;
    for s in set.iter() {
        let bits = annealer::spins_to_bits(&s.spins);
        if let Some(tour) = enc.decode(&bits) {
            best = best.min(tsp.tour_cost(&tour));
        }
    }
    assert!((best - 1.42).abs() < 1e-9, "host-offloaded best {best}");
}
