//! Zero-overhead guarantee: a disabled telemetry registry must not
//! allocate — not for span/counter calls, and not on the simulator's gate
//! hot path. This lives in its own test binary with a counting global
//! allocator; everything runs in a single `#[test]` so no concurrent test
//! thread can perturb the counts.

use cqasm::Program;
use qca_telemetry::Telemetry;
use qxsim::Simulator;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; the counter update
// is a lock-free atomic and allocates nothing itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_telemetry_is_allocation_free() {
    // Part 1: the telemetry operations the hot paths invoke must not
    // allocate when the registry is disabled.
    let telemetry = Telemetry::disabled();
    let before = allocations();
    for i in 0..10_000u64 {
        let _span = telemetry.span("qxsim", "run_shots");
        telemetry.incr("qxsim.shots.executed", 1);
        telemetry.incr_labeled("qxsim.kernel_dispatch", "General1q", 1);
        telemetry.record_value("qxsim.parallel_sweep.qubits", i as f64);
        telemetry.record_hist("service.latency.e2e_us", i);
        telemetry.record_hist_labeled(
            "service.latency.queue_wait_us",
            &[("priority", "5"), ("outcome", "ok")],
            i,
        );
    }
    assert_eq!(
        allocations() - before,
        0,
        "disabled telemetry ops must not allocate"
    );

    // Part 2: the gate hot path. Two identical simulators — one default,
    // one with an explicitly attached disabled registry — must allocate
    // exactly the same amount for the same run, i.e. the disabled
    // registry contributes zero allocations per gate or per shot.
    let program = Program::parse(concat!(
        "version 1.0\nqubits 4\n.ghz\nh q[0]\ncnot q[0], q[1]\n",
        "cnot q[1], q[2]\ncnot q[2], q[3]\nmeasure_all\n"
    ))
    .expect("program parses");
    let baseline = Simulator::perfect()
        .with_seed(0xA110C)
        .with_sampling_fast_path(false);
    let instrumented = baseline.clone().with_telemetry(Telemetry::disabled());

    // Warm-up so lazy one-time allocations (thread-locals, env caches)
    // don't skew the measured runs.
    baseline.run_shots(&program, 2).expect("warm-up runs");
    instrumented.run_shots(&program, 2).expect("warm-up runs");

    let start = allocations();
    let h1 = baseline.run_shots(&program, 50).expect("baseline runs");
    let baseline_allocs = allocations() - start;

    let start = allocations();
    let h2 = instrumented
        .run_shots(&program, 50)
        .expect("instrumented runs");
    let instrumented_allocs = allocations() - start;

    assert_eq!(h1, h2);
    assert_eq!(
        instrumented_allocs, baseline_allocs,
        "a disabled registry must add no allocations to the gate hot path"
    );
}
