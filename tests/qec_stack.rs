//! Integration tests for the QEC substrate against the rest of the stack:
//! ESM circuits compiled and simulated, tableau vs state-vector
//! cross-validation, and logical-rate ordering.

use qec::esm::{esm_program, z_syndrome_bits};
use qec::monte::{code_logical_error_rate, surface_logical_error_rate, NoiseKind};
use qec::{PauliError, StabilizerCode, Tableau};
use qxsim::{Simulator, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn esm_circuit_survives_the_openql_compiler() {
    // Compile the Steane ESM round for a constrained platform and check
    // the syndrome of a clean state stays trivial end to end.
    let code = StabilizerCode::repetition(3);
    let (esm, layout) = esm_program(&code, 1);
    let platform = openql::Platform::superconducting_grid(2, 3);
    let compiled = openql::Compiler::new(platform)
        .compile_cqasm(&esm)
        .expect("ESM compiles");
    let run = Simulator::perfect().run_once(&compiled.program).unwrap();
    // Decode ancilla bits through the final mapping.
    let mapping = compiled.final_mapping.expect("routed");
    let mut logical_bits = 0u64;
    for l in 0..layout.total() {
        if (run.bits >> mapping.physical(l)) & 1 == 1 {
            logical_bits |= 1 << l;
        }
    }
    assert_eq!(
        z_syndrome_bits(&layout, logical_bits),
        vec![false, false],
        "clean state must have trivial syndrome after compilation"
    );
}

#[test]
fn tableau_and_statevector_agree_on_esm_outcomes() {
    // Run the repetition-3 ESM with an injected X error on both engines.
    let code = StabilizerCode::repetition(3);
    for err_q in 0..3usize {
        // Tableau route.
        let mut t = Tableau::zero_state(5);
        t.x_gate(err_q);
        // Z0Z1 check with ancilla 3, Z1Z2 with ancilla 4.
        t.cnot(0, 3);
        t.cnot(1, 3);
        t.cnot(1, 4);
        t.cnot(2, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let s_tab = [t.measure(3, &mut rng), t.measure(4, &mut rng)];

        // State-vector route via the ESM program.
        let (esm, layout) = esm_program(&code, 1);
        let mut program = cqasm::Program::new(layout.total());
        let mut inject = cqasm::Subcircuit::new("inject");
        inject.push(cqasm::Instruction::gate(cqasm::GateKind::X, &[err_q]));
        program.push_subcircuit(inject);
        for s in esm.subcircuits() {
            program.push_subcircuit(s.clone());
        }
        let run = Simulator::perfect().run_once(&program).unwrap();
        let s_sv = z_syndrome_bits(&layout, run.bits);
        assert_eq!(s_sv, s_tab.to_vec(), "engines disagree for X{err_q}");
    }
}

#[test]
fn logical_rates_follow_the_textbook_ordering() {
    let p = 0.01;
    let trials = 20_000;
    let rep3 = code_logical_error_rate(
        &StabilizerCode::repetition(3),
        p,
        NoiseKind::BitFlip,
        trials,
        7,
    );
    let rep5 = code_logical_error_rate(
        &StabilizerCode::repetition(5),
        p,
        NoiseKind::BitFlip,
        trials,
        7,
    );
    // Higher distance suppresses more (p^2 vs p^3 regime).
    assert!(rep5 < rep3, "rep5 {rep5} >= rep3 {rep3}");
    assert!(rep3 < p, "encoding must beat the bare qubit at p = {p}");
    // Surface code d=5 below threshold also beats d=3.
    let s3 = surface_logical_error_rate(3, p, 5_000, 7);
    let s5 = surface_logical_error_rate(5, p, 5_000, 7);
    assert!(s5 <= s3, "surface d5 {s5} > d3 {s3}");
}

#[test]
fn steane_corrects_what_the_simulator_breaks() {
    // Inject depolarizing errors on a Pauli frame, decode, and confirm
    // failure only beyond the code distance.
    let code = StabilizerCode::steane();
    let decoder = qec::LookupDecoder::for_code(&code);
    // All weight-1 errors are corrected (distance 3).
    for q in 0..7 {
        for (x, z) in [(true, false), (false, true), (true, true)] {
            let mut e = PauliError::identity(7);
            e.x[q] = x;
            e.z[q] = z;
            let mut residual = e.clone();
            residual.compose(&decoder.decode(&code.syndrome(&e)));
            assert!(!code.is_logical_error(&residual));
        }
    }
}

#[test]
fn tableau_matches_statevector_on_stabilizer_circuit_probabilities() {
    // A GHZ-like circuit checked on both engines, qubit by qubit.
    let n = 5;
    let mut t = Tableau::zero_state(n);
    let mut s = StateVector::zero_state(n);
    t.h(0);
    s.apply_gate(&cqasm::GateKind::H, &[0]);
    for q in 0..n - 1 {
        t.cnot(q, q + 1);
        s.apply_gate(&cqasm::GateKind::Cnot, &[q, q + 1]);
    }
    t.s(2);
    s.apply_gate(&cqasm::GateKind::S, &[2]);
    t.h(2);
    s.apply_gate(&cqasm::GateKind::H, &[2]);
    for q in 0..n {
        assert!(
            (t.probability_one(q) - s.probability_one(q)).abs() < 1e-9,
            "qubit {q}"
        );
    }
}
