//! Property tests: every specialised gate kernel in `qxsim` must produce
//! the same amplitudes as the generic dense-matrix path
//! (`qxsim::state::reference`), for every gate in the cQASM library, on
//! random states and random operand assignments — and the plan fuser must
//! preserve those amplitudes when it collapses runs, chains and clusters
//! into fused kernels.

use cqasm::math::C64;
use cqasm::{GateKind, Program};
use proptest::prelude::*;
use qxsim::state::{par, reference};
use qxsim::{Simulator, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense random (normalised) state on `n` qubits.
fn random_state(n: usize, seed: u64) -> StateVector {
    let mut rng = StdRng::seed_from_u64(seed);
    let amps: Vec<C64> = (0..1usize << n)
        .map(|_| C64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    StateVector::from_amplitudes(amps)
}

/// Any gate from the library, parameterised variants with random angles.
fn arb_gate() -> BoxedStrategy<GateKind> {
    prop_oneof![
        Just(GateKind::I),
        Just(GateKind::H),
        Just(GateKind::X),
        Just(GateKind::Y),
        Just(GateKind::Z),
        Just(GateKind::S),
        Just(GateKind::Sdag),
        Just(GateKind::T),
        Just(GateKind::Tdag),
        Just(GateKind::X90),
        Just(GateKind::Y90),
        Just(GateKind::Mx90),
        Just(GateKind::My90),
        (-3.2f64..3.2).prop_map(GateKind::Rx),
        (-3.2f64..3.2).prop_map(GateKind::Ry),
        (-3.2f64..3.2).prop_map(GateKind::Rz),
        Just(GateKind::Cnot),
        Just(GateKind::Cz),
        Just(GateKind::Swap),
        (-3.2f64..3.2).prop_map(GateKind::Cr),
        (1u32..8).prop_map(GateKind::CRk),
        Just(GateKind::Toffoli),
    ]
    .boxed()
}

/// Any single-qubit gate (the fusion pass 1 alphabet).
fn arb_1q_gate() -> BoxedStrategy<GateKind> {
    prop_oneof![
        Just(GateKind::I),
        Just(GateKind::H),
        Just(GateKind::X),
        Just(GateKind::Y),
        Just(GateKind::Z),
        Just(GateKind::S),
        Just(GateKind::Sdag),
        Just(GateKind::T),
        Just(GateKind::Tdag),
        (-3.2f64..3.2).prop_map(GateKind::Rx),
        (-3.2f64..3.2).prop_map(GateKind::Ry),
        (-3.2f64..3.2).prop_map(GateKind::Rz),
    ]
    .boxed()
}

/// Any diagonal-kernel gate (the fusion pass 2 alphabet: phases and
/// controlled phases, the QFT/QAOA tail shapes).
fn arb_diag_gate() -> BoxedStrategy<GateKind> {
    prop_oneof![
        Just(GateKind::Z),
        Just(GateKind::S),
        Just(GateKind::Sdag),
        Just(GateKind::T),
        Just(GateKind::Tdag),
        (-3.2f64..3.2).prop_map(GateKind::Rz),
        Just(GateKind::Cz),
        (-3.2f64..3.2).prop_map(GateKind::Cr),
        (1u32..8).prop_map(GateKind::CRk),
    ]
    .boxed()
}

/// Evolves a gates-only program on the independent reference kernels.
fn reference_evolution(p: &Program) -> StateVector {
    let mut s = StateVector::zero_state(p.qubit_count());
    for ins in p.flat_instructions() {
        if let cqasm::Instruction::Gate(g) = ins {
            let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
            reference::apply_gate(&mut s, &g.kind, &idx);
        }
    }
    s
}

/// Distinct operand indices on `n` qubits from three free draws; covers
/// every operand ordering (control above/below target, etc.).
fn operands(n: usize, r0: usize, r1: usize, r2: usize) -> [usize; 3] {
    let q0 = r0 % n;
    let q1 = (q0 + 1 + r1 % (n - 1)) % n;
    let mut q2 = (q1 + 1 + r2 % (n - 1)) % n;
    while q2 == q0 || q2 == q1 {
        q2 = (q2 + 1) % n;
    }
    [q0, q1, q2]
}

fn assert_amplitudes_match(
    fast: &StateVector,
    slow: &StateVector,
    what: &str,
) -> Result<(), String> {
    for (i, (a, b)) in fast.amplitudes().iter().zip(slow.amplitudes()).enumerate() {
        prop_assert!(
            (*a - *b).norm_sqr() < 1e-20,
            "{} amplitude {} differs: {:?} vs {:?}",
            what,
            i,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    /// The heart of the kernel-dispatch guarantee: specialised kernels
    /// (diagonal, anti-diagonal, CNOT/CZ/SWAP permutations, controlled
    /// phase, orbit-direct generic) are interchangeable with the original
    /// scan-and-skip dense path for every gate kind.
    #[test]
    fn specialised_kernels_match_generic_path(
        gate in arb_gate(),
        n in 3usize..7,
        r0 in 0usize..64,
        r1 in 0usize..64,
        r2 in 0usize..64,
        seed in 0u64..100_000
    ) {
        let qs = operands(n, r0, r1, r2);
        let ops = &qs[..gate.arity()];
        let mut fast = random_state(n, seed);
        let mut slow = fast.clone();
        fast.apply_gate(&gate, ops);
        reference::apply_gate(&mut slow, &gate, ops);
        assert_amplitudes_match(&fast, &slow, &format!("{gate} on {ops:?}"))?;
    }

    /// The threaded chunked kernels are bit-identical to the serial ones
    /// for any thread count (each amplitude's update is the same
    /// floating-point expression, only the executing thread changes).
    #[test]
    fn threaded_kernels_match_serial(
        n in 3usize..7,
        r0 in 0usize..64,
        r1 in 0usize..64,
        threads in 2usize..9,
        angle in -3.2f64..3.2,
        seed in 0u64..100_000
    ) {
        let qs = operands(n, r0, r1, 0);
        let m1 = match GateKind::Ry(angle).unitary() {
            cqasm::GateUnitary::One(m) => m,
            _ => unreachable!(),
        };
        let m2 = match GateKind::Cr(angle).unitary() {
            cqasm::GateUnitary::Two(m) => m,
            _ => unreachable!(),
        };
        let mut serial = random_state(n, seed);
        let mut threaded = serial.clone();
        serial.apply_1q(&m1, qs[0]);
        par::apply_1q_threaded(&mut threaded, &m1, qs[0], threads);
        prop_assert_eq!(serial.amplitudes(), threaded.amplitudes());

        serial.apply_2q(&m2, qs[0], qs[1]);
        par::apply_2q_threaded(&mut threaded, &m2, qs[0], qs[1], threads);
        prop_assert_eq!(serial.amplitudes(), threaded.amplitudes());
    }

    /// The compressed-counter multi-controlled kernel
    /// (`apply_controlled_1q`, the Toffoli path) matches the reference
    /// scan-and-skip implementation across whole random circuits — Toffoli
    /// applications interleaved with the rest of the gate library, on 3–5
    /// qubits, with every control/target assignment.
    #[test]
    fn controlled_1q_kernel_matches_reference_on_random_circuits(
        n in 3usize..6,
        moves in proptest::collection::vec((arb_gate(), 0usize..64, 0usize..64, 0usize..64), 1..12),
        seed in 0u64..100_000
    ) {
        let mut fast = random_state(n, seed);
        let mut slow = fast.clone();
        for (gate, r0, r1, r2) in &moves {
            let qs = operands(n, *r0, *r1, *r2);
            // Force a Toffoli between library gates so every circuit
            // exercises the multi-controlled kernel repeatedly.
            let x = match GateKind::X.unitary() {
                cqasm::GateUnitary::One(m) => m,
                _ => unreachable!(),
            };
            fast.apply_controlled_1q(&x, &qs[..2], qs[2]);
            reference::apply_controlled_1q(&mut slow, &x, &qs[..2], qs[2]);
            let ops = &qs[..gate.arity()];
            fast.apply_gate(gate, ops);
            reference::apply_gate(&mut slow, gate, ops);
        }
        assert_amplitudes_match(&fast, &slow, "controlled-1q circuit")?;
    }

    /// Fusion pass 1 (adjacent same-qubit 1q runs → one composed 2x2):
    /// the fused plan's final state matches the gate-by-gate reference
    /// oracle, and the unfused plan does too.
    #[test]
    fn fused_1q_runs_match_reference(
        n in 2usize..5,
        gates in proptest::collection::vec(arb_1q_gate(), 2..10),
        q in 0usize..5,
    ) {
        let q = q % n;
        let mut b = Program::builder(n);
        for g in &gates {
            b = b.gate(*g, &[q]);
        }
        let p = b.build();
        let fused_sim = Simulator::perfect();
        let stats = fused_sim.compile(&p).unwrap().fusion_stats();
        prop_assert!(stats.fused_1q_runs >= 1, "run of {} gates must fuse", gates.len());
        let slow = reference_evolution(&p);
        let fused = fused_sim.run_once(&p).unwrap().state;
        let unfused = Simulator::perfect().with_fusion(false).run_once(&p).unwrap().state;
        assert_amplitudes_match(&fused, &slow, "fused 1q run")?;
        assert_amplitudes_match(&unfused, &slow, "unfused 1q run")?;
    }

    /// Fusion pass 2 (consecutive diagonal gates → one strided table):
    /// a superposed prefix followed by a random diagonal chain evolves
    /// identically through the fused plan and the reference oracle.
    #[test]
    fn fused_diagonal_chains_match_reference(
        n in 2usize..6,
        chain in proptest::collection::vec((arb_diag_gate(), 0usize..64, 0usize..64), 2..12),
    ) {
        let mut b = Program::builder(n);
        for q in 0..n {
            b = b.gate(GateKind::H, &[q]);
        }
        for (g, r0, r1) in &chain {
            let q0 = r0 % n;
            let q1 = (q0 + 1 + r1 % (n - 1)) % n;
            let ops: Vec<usize> = if g.arity() == 1 { vec![q0] } else { vec![q0, q1] };
            b = b.gate(*g, &ops);
        }
        let p = b.build();
        let stats = Simulator::perfect().compile(&p).unwrap().fusion_stats();
        prop_assert!(stats.gates_after < stats.gates_before, "diagonal chain must shrink the plan");
        let slow = reference_evolution(&p);
        let fused = Simulator::perfect().run_once(&p).unwrap().state;
        assert_amplitudes_match(&fused, &slow, "fused diagonal chain")?;
    }

    /// Fusion pass 3 (small-support clusters → dense blocks) and all
    /// passes composed: arbitrary random circuits evolve identically
    /// through the fused plan, the unfused plan and the reference oracle.
    #[test]
    fn fused_plans_match_reference_on_random_circuits(
        n in 3usize..6,
        moves in proptest::collection::vec((arb_gate(), 0usize..64, 0usize..64, 0usize..64), 2..14),
    ) {
        let mut b = Program::builder(n);
        for (gate, r0, r1, r2) in &moves {
            let qs = operands(n, *r0, *r1, *r2);
            b = b.gate(*gate, &qs[..gate.arity()]);
        }
        let p = b.build();
        let slow = reference_evolution(&p);
        let fused = Simulator::perfect().run_once(&p).unwrap().state;
        let unfused = Simulator::perfect().with_fusion(false).run_once(&p).unwrap().state;
        assert_amplitudes_match(&fused, &slow, "fused random circuit")?;
        assert_amplitudes_match(&unfused, &slow, "unfused random circuit")?;
    }

    /// The strided marginal and the binary-search sampler agree with the
    /// original scan implementations on arbitrary states.
    #[test]
    fn probability_and_sampling_match_reference(
        n in 1usize..7,
        q in 0usize..7,
        seed in 0u64..100_000
    ) {
        let q = q % n;
        let s = random_state(n, seed);
        let fast = s.probability_one(q);
        let slow = reference::probability_one(&s, q);
        prop_assert!((fast - slow).abs() < 1e-12, "P(q{}=1): {} vs {}", q, fast, slow);

        let mut r1 = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        let mut r2 = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        for _ in 0..16 {
            prop_assert_eq!(s.sample_all(&mut r1), reference::sample_all(&s, &mut r2));
        }
    }
}
