//! Plan-cache persistence tests: a service snapshotted on shutdown and
//! restarted from the snapshot serves the same job bit-identically from
//! a warm cache — without a single compile span — while corrupt,
//! truncated or version-skewed snapshot files degrade to a typed
//! warning and a cold start, never a panic.

use proptest::prelude::*;
use qca_core::QubitKind;
use qca_service::snapshot::{
    decode_snapshot, encode_snapshot, SnapshotEntry, SNAPSHOT_VERSION,
};
use qca_service::{JobSpec, Service, ServiceConfig, SnapshotError};
use qca_telemetry::Telemetry;
use std::path::PathBuf;
use std::time::Duration;

const BELL: &str = "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n";
const GHZ4: &str =
    "qubits 4\nh q[0]\ncnot q[0], q[1]\ncnot q[1], q[2]\ncnot q[2], q[3]\nmeasure_all\n";

/// A unique snapshot path per test so parallel tests never collide;
/// removes any stale file from a previous aborted run.
fn snapshot_path(test: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "qca-test-snap-{}-{}.qpsn",
        std::process::id(),
        test
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn sample_entries() -> Vec<SnapshotEntry> {
    vec![
        SnapshotEntry {
            key: 0xDEAD_BEEF_0000_0001,
            qubits: QubitKind::Perfect,
            source: BELL.to_string(),
        },
        SnapshotEntry {
            key: 0xDEAD_BEEF_0000_0002,
            qubits: QubitKind::real_transmon(),
            source: GHZ4.to_string(),
        },
        SnapshotEntry {
            key: 3,
            qubits: QubitKind::Perfect,
            source: String::new(),
        },
    ]
}

fn compile_span_count(telemetry: &Telemetry) -> usize {
    telemetry
        .snapshot()
        .spans
        .iter()
        .filter(|s| s.name == "compile" || s.cat == "openql")
        .count()
}

#[test]
fn encode_decode_is_the_identity() {
    let entries = sample_entries();
    let bytes = encode_snapshot(&entries);
    let back = decode_snapshot(&bytes).expect("a fresh encoding must decode");
    assert_eq!(back.len(), entries.len());
    for (a, b) in entries.iter().zip(&back) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.source, b.source);
        assert_eq!(a.qubits, b.qubits);
    }
}

/// The headline round trip: run a job, shut down (which snapshots the
/// plan cache), restart from the snapshot, run the same job again. The
/// warm run must be a cache hit, emit zero compile spans, and produce
/// the cold run's histogram bit for bit.
#[test]
fn restart_from_snapshot_serves_warm_hits_without_compiling() {
    let path = snapshot_path("roundtrip");
    let config = ServiceConfig {
        workers: 1,
        snapshot_path: Some(path.clone()),
        ..ServiceConfig::default()
    };
    let spec = JobSpec::new(GHZ4).with_seed(4242).with_shots(5000);

    let cold_service = Service::with_config(config.clone());
    let handle = cold_service.handle();
    assert!(
        handle.warm_status().is_none(),
        "no snapshot exists yet: the first start must be cold"
    );
    let cold = handle
        .wait(
            handle.submit(spec.clone()).unwrap(),
            Duration::from_secs(120),
        )
        .unwrap();
    assert!(!cold.cache_hit);
    cold_service.shutdown();
    assert!(path.exists(), "shutdown must write the snapshot");

    let telemetry = Telemetry::enabled();
    let warm_service = Service::with_telemetry(config, telemetry.clone());
    let warm_handle = warm_service.handle();
    let report = warm_handle
        .warm_status()
        .expect("a snapshot was present, so warm status must be reported")
        .expect("a snapshot written by this build must load");
    assert!(
        report.loaded >= 1,
        "the job compiled before shutdown must be in the snapshot: {report:?}"
    );
    assert_eq!(report.skipped, 0, "nothing in this snapshot is skippable");

    let warm = warm_handle
        .wait(warm_handle.submit(spec).unwrap(), Duration::from_secs(120))
        .unwrap();
    assert!(
        warm.cache_hit,
        "the restarted service must serve the job from the warmed cache"
    );
    assert_eq!(
        compile_span_count(&telemetry),
        0,
        "a warm start must not emit a single compile span"
    );
    assert_eq!(
        cold.histogram, warm.histogram,
        "snapshot round trip must be bit-identical"
    );
    warm_service.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Every flavour of bad snapshot file — garbage, version skew, a flipped
/// body byte, truncation — yields a typed warm-status error and a
/// functioning cold service.
#[test]
fn bad_snapshots_degrade_to_a_typed_warning_and_a_cold_start() {
    let valid = encode_snapshot(&sample_entries());

    let mut skewed = valid.clone();
    skewed[4] = skewed[4].wrapping_add(1);

    let mut flipped = valid.clone();
    let mid = valid.len() / 2;
    flipped[mid] ^= 0x40;

    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("garbage", b"not a snapshot at all".to_vec()),
        ("skewed", skewed),
        ("flipped", flipped),
        ("truncated", valid[..valid.len() - 5].to_vec()),
        ("empty", Vec::new()),
    ];
    for (name, bytes) in cases {
        let path = snapshot_path(&format!("bad-{name}"));
        std::fs::write(&path, &bytes).unwrap();
        let service = Service::with_config(ServiceConfig {
            workers: 1,
            snapshot_path: Some(path.clone()),
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let status = handle
            .warm_status()
            .expect("a file was present, so warm status must be reported");
        let err = status.expect_err("a corrupt snapshot must not load");
        if name == "skewed" {
            assert!(
                matches!(
                    err,
                    SnapshotError::UnsupportedVersion {
                        supported: SNAPSHOT_VERSION,
                        ..
                    }
                ),
                "version skew must be named as such, got {err:?}"
            );
        }
        // The service itself is unharmed: it starts cold and serves.
        let result = handle
            .wait(
                handle.submit(JobSpec::new(BELL).with_seed(1)).unwrap(),
                Duration::from_secs(120),
            )
            .unwrap();
        assert!(!result.cache_hit, "{name}: a bad snapshot must start cold");
        service.shutdown();
        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any single-byte change to a valid snapshot is detected: magic,
    /// version and checksum between them cover every byte of the file,
    /// so a mutated file always decodes to a typed error — and an
    /// unchanged one to the original entries.
    #[test]
    fn any_real_single_byte_mutation_is_detected(at_frac in 0usize..10_000, flip in 0u8..=255) {
        let entries = sample_entries();
        let valid = encode_snapshot(&entries);
        let at = at_frac % valid.len();
        let mut bytes = valid.clone();
        bytes[at] ^= flip;
        let decoded = decode_snapshot(&bytes);
        if flip == 0 {
            prop_assert!(decoded.is_ok(), "unchanged bytes must decode");
        } else {
            prop_assert!(
                decoded.is_err(),
                "flipping byte {at} with {flip:#04x} went undetected"
            );
        }
    }

    /// Multi-byte corruption and truncation never panic the decoder: it
    /// returns entries or a typed error for every input.
    #[test]
    fn shredded_snapshots_never_panic_the_decoder(
        mutations in proptest::collection::vec((0usize..10_000, (0u8..=255)), 0..16),
        cut_frac in 0usize..=100,
    ) {
        let valid = encode_snapshot(&sample_entries());
        let mut bytes = valid.clone();
        for (at, val) in mutations {
            let at = at % bytes.len();
            bytes[at] = val;
        }
        bytes.truncate(valid.len() * cut_frac / 100);
        match decode_snapshot(&bytes) {
            Ok(entries) => {
                // Plausible only when the mutations reassembled a valid
                // file; the entries must still respect declared bounds.
                prop_assert!(entries.len() <= qca_service::snapshot::MAX_SNAPSHOT_ENTRIES as usize);
            }
            Err(e) => {
                // Typed, and displayable without panicking.
                let _ = e.to_string();
            }
        }
    }

    /// Raw random bytes — no valid scaffold at all — also never panic.
    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in proptest::collection::vec((0u8..=255), 0..400)) {
        match decode_snapshot(&bytes) {
            Ok(_) => {}
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}
