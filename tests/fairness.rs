//! Fairness tests for the multi-tenant admission path: the deficit
//! round-robin dequeue honours configured weights exactly, a flooding
//! tenant cannot starve a light one, per-tenant quotas shed with a
//! typed error, and the tenant counters on `ServiceStats` add up.

use proptest::prelude::*;
use qca_service::chaos::{self, Scenario};
use qca_service::{
    DrrQueue, JobSpec, Service, ServiceConfig, ServiceError, TenantConfig,
};
use std::cmp::Reverse;
use std::time::Duration;

const BELL: &str = "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n";

/// When every lane stays backlogged, DRR is exact: over any window of
/// `sum(weights)` consecutive pops, each lane is served precisely its
/// weight. Checked here over `laps` full rounds.
fn assert_exact_shares(weights: &[u32], laps: u32) {
    let mut queue: DrrQueue<Reverse<u64>> = DrrQueue::new(weights);
    // Backlog every lane past what `laps` rounds can drain, plus slack
    // so the queue never runs dry mid-window.
    for (lane, &w) in weights.iter().enumerate() {
        for i in 0..(w * laps + 5) {
            queue.push(lane, Reverse(((lane as u64) << 32) | u64::from(i)));
        }
    }
    let round: u32 = weights.iter().sum();
    let mut served = vec![0u32; weights.len()];
    for _ in 0..round * laps {
        let Reverse(item) = queue.pop().expect("backlogged queue ran dry");
        served[(item >> 32) as usize] += 1;
    }
    for (lane, &w) in weights.iter().enumerate() {
        assert_eq!(
            served[lane],
            w * laps,
            "lane {lane} (weight {w}) served {} of {} pops; weights {weights:?}",
            served[lane],
            round * laps
        );
    }
}

#[test]
fn drr_serves_each_backlogged_lane_its_exact_weight() {
    assert_exact_shares(&[1, 4], 10);
    assert_exact_shares(&[1, 1, 1], 7);
    assert_exact_shares(&[5, 2, 1], 4);
}

#[test]
fn drr_idle_lanes_forfeit_credit_instead_of_banking_it() {
    // Lane 0 (weight 9) is empty the whole time: it must not accumulate
    // nine rounds of credit and then monopolise the queue once filled.
    let mut queue: DrrQueue<Reverse<u64>> = DrrQueue::new(&[9, 1]);
    for i in 0..20u64 {
        queue.push(1, Reverse(i));
    }
    for i in 0..10u64 {
        assert_eq!(queue.pop(), Some(Reverse(i)));
    }
    // Lane 0 fills late; from here the 9:1 ratio applies forward only.
    for i in 0..9u64 {
        queue.push(0, Reverse(100 + i));
    }
    let mut lane0 = 0;
    for _ in 0..10 {
        let Reverse(item) = queue.pop().unwrap();
        if item >= 100 {
            lane0 += 1;
        }
    }
    assert_eq!(lane0, 9, "a late-filling lane gets its weight, not its arrears");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact-share property holds for arbitrary weight vectors and
    /// lap counts, not just the hand-picked ones.
    #[test]
    fn drr_exact_shares_hold_for_arbitrary_weights(
        weights in proptest::collection::vec(1u32..6, 1..5),
        laps in 1u32..5,
    ) {
        assert_exact_shares(&weights, laps);
    }

    /// Interleaving pushes between pops never loses or duplicates items
    /// and never serves an empty lane.
    #[test]
    fn drr_drains_exactly_what_was_pushed(
        pushes in proptest::collection::vec((0usize..3, 0u64..1000), 0..120),
    ) {
        let mut queue: DrrQueue<Reverse<(u64, usize)>> = DrrQueue::new(&[2, 1, 3]);
        let mut expected = Vec::new();
        for (i, &(lane, v)) in pushes.iter().enumerate() {
            queue.push(lane, Reverse((v, i)));
            expected.push((v, i));
        }
        let mut drained = Vec::new();
        while let Some(Reverse(item)) = queue.pop() {
            drained.push(item);
        }
        prop_assert!(queue.is_empty());
        prop_assert_eq!(queue.pop(), None);
        drained.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(drained, expected);
    }
}

/// Two-tenant adversarial mix: a flooding tenant saturates the queue
/// while a light "vip" tenant submits a handful of jobs. Every vip job
/// must complete — the flood can slow them, never starve them.
#[test]
fn a_flooding_tenant_cannot_starve_a_light_one() {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        queue_capacity: 256,
        tenants: vec![
            TenantConfig::new("flood", 1),
            TenantConfig::new("vip", 4),
        ],
        ..ServiceConfig::default()
    });
    let handle = service.handle();

    let mut flood_ids = Vec::new();
    for seed in 0..60u64 {
        match handle.submit(JobSpec::new(BELL).with_seed(seed).with_tenant("flood")) {
            Ok(id) => flood_ids.push(id),
            Err(ServiceError::QueueFull { .. }) => {}
            Err(e) => panic!("unexpected flood rejection: {e}"),
        }
    }
    let vip_ids: Vec<_> = (0..5u64)
        .map(|seed| {
            handle
                .submit(JobSpec::new(BELL).with_seed(1000 + seed).with_tenant("vip"))
                .expect("vip submissions must be admitted")
        })
        .collect();

    for id in vip_ids {
        handle
            .wait(id, Duration::from_secs(60))
            .expect("vip job starved behind the flood");
    }
    for id in flood_ids {
        handle
            .wait(id, Duration::from_secs(60))
            .expect("flood job lost");
    }

    let stats = handle.stats();
    let vip = stats
        .tenants
        .iter()
        .find(|t| t.name == "vip")
        .expect("vip lane missing from stats");
    assert_eq!(vip.weight, 4);
    assert_eq!(vip.submitted, 5);
    assert_eq!(vip.completed, 5);
    assert_eq!(vip.queued, 0);
    service.shutdown();
}

/// A tenant at its queued-job quota is shed with a typed error naming
/// the tenant and the quota, the shed shows up in that tenant's stats,
/// and other tenants are unaffected.
#[test]
fn quota_sheds_with_a_typed_error_and_counts_per_tenant() {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        tenants: vec![
            TenantConfig::new("batch", 1).with_quota(2),
            TenantConfig::new("interactive", 2),
        ],
        ..ServiceConfig::default()
    });
    let handle = service.handle();

    // A compute-heavy job pins the single worker so queued jobs stay
    // queued (shots are sampled per outcome, so only gate count buys
    // wall-clock time).
    let mut heavy = String::from("qubits 16\n");
    for _ in 0..6 {
        for q in 0..16 {
            heavy.push_str(&format!("h q[{q}]\n"));
        }
        for q in 0..15 {
            heavy.push_str(&format!("cnot q[{q}], q[{}]\n", q + 1));
        }
    }
    heavy.push_str("measure_all\n");
    let plug = handle.submit(JobSpec::new(heavy).with_seed(7)).unwrap();

    // Submit until the quota trips: the worker drains the lane
    // concurrently, but submissions outpace execution by orders of
    // magnitude, so the lane fills within a handful of iterations.
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for seed in 0..200u64 {
        match handle.submit(JobSpec::new(BELL).with_seed(seed).with_tenant("batch")) {
            Ok(id) => admitted.push(id),
            Err(ServiceError::TenantQuotaExceeded { tenant, quota }) => {
                assert_eq!(tenant, "batch");
                assert_eq!(quota, 2);
                shed += 1;
                break;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert!(
        shed >= 1,
        "200 submissions against a quota of 2 never tripped it"
    );
    // The other tenant is not affected by batch's quota.
    let other = handle
        .submit(JobSpec::new(BELL).with_seed(42).with_tenant("interactive"))
        .expect("an unrelated tenant must not inherit the shed");

    let stats = handle.stats();
    let batch = stats.tenants.iter().find(|t| t.name == "batch").unwrap();
    assert_eq!(batch.quota, Some(2));
    assert_eq!(batch.shed, shed, "every quota rejection must be counted");

    for id in admitted.into_iter().chain([plug, other]) {
        handle.wait(id, Duration::from_secs(120)).unwrap();
    }
    service.shutdown();
}

/// Starvation regression: replay the tenant-flood chaos scenario at
/// pinned seeds. Each case floods a two-tenant service from several
/// threads racing a shutdown, and fails if any admitted job is stranded
/// without a terminal state. The seeds are fixed so a regression here
/// is reproducible with `qca-chaos-serve --replay <seed>`.
#[test]
fn tenant_flood_chaos_replays_cleanly_at_pinned_seeds() {
    for seed in [3u64, 4, 14] {
        let report = chaos::run_case(seed);
        assert_eq!(
            report.scenario,
            Scenario::TenantFloodShutdown,
            "seed {seed} no longer selects the tenant-flood scenario; repin it"
        );
        assert!(
            report.failure.is_none(),
            "seed {seed} regressed: {:?}",
            report.failure
        );
    }
}
