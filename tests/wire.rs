//! Property tests for the `qca-serve` wire protocol: encoding any
//! representable request and parsing it back is the identity, and no
//! input line — however malformed — makes the parser panic (the TCP
//! front-end feeds it raw network bytes).

use proptest::prelude::*;
use qca_core::QubitKind;
use qca_service::wire::{encode_request, parse_request, MetricsFormat, Request};
use qca_service::{Engine, JobFaults, JobId, JobSpec, RetryPolicy};

/// Circuits with every character class the JSON escaper has to handle:
/// newlines, quotes, backslashes, control characters, non-ASCII.
fn arb_circuit() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("qubits 2\n".to_string()),
            Just("h q[0]\n".to_string()),
            Just("cnot q[0], q[1]\n".to_string()),
            Just("measure_all\n".to_string()),
            Just("# \"quoted\" comment\n".to_string()),
            Just("# back\\slash\n".to_string()),
            Just("# tab\there\n".to_string()),
            Just("# unicode: ψ⟩ ⊗ φ⟩\n".to_string()),
        ],
        1..8,
    )
    .prop_map(|lines| lines.concat())
}

fn arb_submit() -> impl Strategy<Value = Request> {
    (
        (
            arb_circuit(),
            // JSON numbers are f64: only integers up to 2^53 survive the
            // wire exactly, which is the documented representable range.
            0u64..(1 << 53),
            0u64..(1 << 53),
        ),
        (
            0u64..=255,
            prop_oneof![Just(None), (1u64..100_000).prop_map(Some)],
            prop_oneof![Just(Engine::StateVector), Just(Engine::DensityMatrix)],
            prop_oneof![Just(QubitKind::Perfect), Just(QubitKind::real_transmon())],
        ),
        (arb_retry(), arb_faults(), arb_tenant()),
    )
        .prop_map(
            |(
                (circuit, shots, seed),
                (priority, deadline_ms, engine, qubits),
                (retry, faults, tenant),
            )| {
                let mut spec = JobSpec::new(circuit);
                spec.shots = shots;
                spec.seed = seed;
                spec.priority = priority as u8;
                spec.deadline_ms = deadline_ms;
                spec.engine = engine;
                spec.qubits = qubits;
                spec.retry = retry;
                spec.faults = faults;
                spec.tenant = tenant;
                Request::Submit(spec)
            },
        )
}

/// Retry policies the wire can represent: the default (omitted from the
/// encoding) or any policy with at least one attempt.
fn arb_retry() -> impl Strategy<Value = RetryPolicy> {
    prop_oneof![
        Just(RetryPolicy::none()),
        (1u32..16, 0u64..10_000, 0u64..(1 << 53)).prop_map(|(max_attempts, backoff, jitter)| {
            RetryPolicy {
                max_attempts,
                backoff_base_ms: backoff,
                jitter_seed: jitter,
            }
        }),
    ]
}

/// Tenant names exercise the same escaping paths as circuits: quotes,
/// backslashes, control characters, non-ASCII. `None` checks that the
/// field is genuinely optional on the wire.
fn arb_tenant() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        2 => Just(None),
        1 => Just(Some("batch".to_string())),
        1 => Just(Some("team \"alpha\"".to_string())),
        1 => Just(Some("back\\slash\ttab".to_string())),
        1 => Just(Some("ψ-tenant".to_string())),
        1 => proptest::collection::vec(
            prop_oneof![
                Just('a'), Just('Z'), Just('0'), Just('-'), Just('"'), Just('\\'),
                Just('\n'), Just('\t'), Just('\u{1}'), Just('ψ'), Just('⟩'),
            ],
            1..12,
        )
        .prop_map(|cs| Some(cs.into_iter().collect())),
    ]
}

fn arb_faults() -> impl Strategy<Value = JobFaults> {
    prop_oneof![
        Just(JobFaults::none()),
        (0u32..8, 0u32..8).prop_map(|(panic_attempts, fail_attempts)| JobFaults {
            panic_attempts,
            fail_attempts,
        }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        4 => arb_submit(),
        1 => (0u64..(1 << 53)).prop_map(|id| Request::Status(JobId(id))),
        1 => (0u64..(1 << 53), 1u64..600_000).prop_map(|(id, timeout_ms)| Request::Result {
            id: JobId(id),
            timeout_ms,
        }),
        1 => (0u64..(1 << 53)).prop_map(|id| Request::Cancel(JobId(id))),
        1 => Just(Request::Stats),
        1 => prop_oneof![Just(MetricsFormat::Json), Just(MetricsFormat::Prometheus)]
            .prop_map(Request::Metrics),
        1 => (0u64..(1 << 53)).prop_map(|id| Request::Trace(JobId(id))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse_request ∘ encode_request` is the identity on every
    /// representable request, and the encoding is a single line.
    #[test]
    fn encode_parse_roundtrip(req in arb_request()) {
        let line = encode_request(&req);
        prop_assert!(!line.contains('\n'), "wire lines must be single lines: {line:?}");
        let back = parse_request(&line);
        prop_assert!(back == Ok(req), "round-trip failed for line {line}");
    }

    /// Arbitrary bytes (lossily decoded, as the TCP reader does) must
    /// yield a typed error or a request — never a panic.
    #[test]
    fn random_bytes_never_panic_the_parser(bytes in proptest::collection::vec(0u8..=255, 0..200)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_request(&line);
    }

    /// Truncating a valid encoding at any point must not panic either —
    /// partial lines happen when a peer disconnects mid-write.
    #[test]
    fn truncated_encodings_never_panic(req in arb_request(), frac in 0usize..100) {
        let line = encode_request(&req);
        let cut = line.len() * frac / 100;
        // Find a char boundary at or below the cut.
        let mut cut = cut.min(line.len());
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = parse_request(&line[..cut]);
    }
}

/// Malformed-but-almost-valid lines yield errors, not panics and not
/// bogus requests.
#[test]
fn near_miss_lines_yield_typed_errors() {
    for line in [
        "",
        "{}",
        "[]",
        "null",
        "42",
        "\"submit\"",
        "{\"verb\":42}",
        "{\"verb\":\"submit\"}",
        "{\"verb\":\"submit\",\"circuit\":7}",
        "{\"verb\":\"result\"}",
        "{\"verb\":\"result\",\"job\":\"seven\"}",
        "{\"verb\":\"submit\",\"circuit\":\"x\",\"engine\":\"warp\"}",
        "{\"verb\":\"submit\",\"circuit\":\"x\",\"qubits\":\"cat-state\"}",
        "{\"verb\":\"stats\"",
        "{\"verb\":\"stats\"}trailing",
        "{\"verb\":\"trace\"}",
        "{\"verb\":\"metrics\",\"format\":\"xml\"}",
    ] {
        assert!(
            parse_request(line).is_err(),
            "expected a typed error for {line:?}"
        );
    }
}
