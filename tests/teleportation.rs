//! Quantum teleportation through the full stack: the canonical protocol
//! exercising entanglement, mid-circuit measurement and classically
//! conditioned corrections (the FMR/CMP/BR feedback path of the eQASM
//! machine) in one program.

use cqasm::GateKind;
use openql::{Kernel, QuantumProgram};
use qca_core::{ExecutionBackend, FullStack, QubitKind};

/// Builds teleportation of the state `Ry(theta)|0>` from qubit 0 to
/// qubit 2, ending with a measurement of qubit 2 only.
fn teleport_program(theta: f64) -> QuantumProgram {
    let mut k = Kernel::new("teleport", 3);
    // Message state on q0.
    k.ry(0, theta);
    // Bell pair between q1 (Alice) and q2 (Bob).
    k.h(1).cnot(1, 2);
    // Bell measurement of q0, q1.
    k.cnot(0, 1).h(0);
    k.measure(0).measure(1);
    // Bob's corrections conditioned on the two classical bits.
    k.cond_gate(1, GateKind::X, &[2]);
    k.cond_gate(0, GateKind::Z, &[2]);
    // Verify: rotate back and measure; ideal outcome is always 0.
    k.ry(2, -theta);
    k.measure(2);
    let mut p = QuantumProgram::new("teleport", 3);
    p.add_kernel(k);
    p
}

fn success_rate(run: &qca_core::StackRun, bob_bit: usize) -> f64 {
    let mut ok = 0;
    for (bits, count) in run.histogram.iter() {
        if (bits >> bob_bit) & 1 == 0 {
            ok += count;
        }
    }
    ok as f64 / run.histogram.shots() as f64
}

#[test]
fn teleportation_on_the_simulator_backend() {
    for theta in [0.0f64, 0.7, 1.9, std::f64::consts::PI] {
        let run = FullStack::perfect(3)
            .execute(&teleport_program(theta), 300)
            .unwrap();
        assert_eq!(
            success_rate(&run, 2),
            1.0,
            "teleportation failed for theta = {theta}"
        );
    }
}

#[test]
fn all_four_measurement_branches_occur() {
    let run = FullStack::perfect(3)
        .execute(&teleport_program(1.2), 600)
        .unwrap();
    let mut branches = std::collections::BTreeSet::new();
    for (bits, _) in run.histogram.iter() {
        branches.insert(bits & 0b11);
    }
    assert_eq!(branches.len(), 4, "Bell measurement must hit all branches");
}

#[test]
fn teleportation_through_the_microarchitecture() {
    // The conditional corrections compile to FMR/CMP/BR on the eQASM
    // machine; a perfect-qubit run must still succeed every time.
    let stack = FullStack::superconducting(1, 3)
        .with_qubits(QubitKind::Perfect)
        .with_backend(ExecutionBackend::MicroArchitecture);
    let run = stack.execute(&teleport_program(0.9), 200).unwrap();
    // Teleportation is placement-sensitive: find Bob's physical bit via
    // the final mapping.
    let mapping = run.final_mapping.as_ref().expect("routed");
    let bob = mapping.physical(2);
    assert_eq!(
        success_rate(&run, bob),
        1.0,
        "microarchitecture run must teleport perfectly"
    );
    // The eQASM stream really contains the feedback instructions.
    let text = run.eqasm.as_ref().expect("eqasm").to_string();
    assert!(text.contains("fmr"), "feedback requires FMR");
    assert!(text.contains("br eq"), "feedback requires a branch");
}

#[test]
fn noise_degrades_teleportation_gracefully() {
    let perfect = FullStack::perfect(3)
        .execute(&teleport_program(1.0), 400)
        .unwrap();
    let noisy = FullStack::perfect(3)
        .with_qubits(QubitKind::Realistic {
            p1: 0.02,
            p2: 0.05,
            readout: 0.02,
        })
        .execute(&teleport_program(1.0), 400)
        .unwrap();
    let p_ok = success_rate(&perfect, 2);
    let n_ok = success_rate(&noisy, 2);
    assert_eq!(p_ok, 1.0);
    assert!(n_ok < 1.0, "noise must show up");
    assert!(n_ok > 0.6, "but the protocol should mostly survive: {n_ok}");
}
