//! Stack-wide differential conformance: every engine in the stack must
//! agree on every generated program — bit for bit on the state-vector
//! paths (reference oracle, interpreter, compiled plan, sharded ranges,
//! and the serving runtime), statistically on the density-matrix engine.
//!
//! The corpus includes the non-unitary shapes — mid-circuit measurement
//! and binary-controlled (`c-`) gates — whose compilation is covered by
//! the per-branch differential pass verifier; each case is also compiled
//! with verification enabled, so this suite exercises that verifier on
//! hundreds of real pipelines. A failing case prints its seed; replay it
//! with `qca-conform --replay <seed>`.

use cqasm::Program;
use openql::{Compiler, CompilerOptions, Platform};
use qca_core::conform::{generate_case, reference_histogram, run_campaign, CaseShape};
use qca_service::{JobSpec, Service, ServiceConfig};
use qxsim::{ShotHistogram, Simulator};
use std::time::Duration;

/// The headline campaign: 200 seeded cases through every engine.
#[test]
fn campaign_of_200_seeded_cases_is_conformant() {
    let report = run_campaign(0xC0FFEE, 200);
    assert_eq!(report.cases, 200);
    assert_eq!(
        report.passed,
        200,
        "diverging case seeds (replay with `qca-conform --replay <seed>`): {:?}",
        report
            .failures
            .iter()
            .map(|f| (f.seed, f.shape, f.detail.clone()))
            .collect::<Vec<_>>()
    );
}

/// The corpus must keep covering the hard shapes: conditional gates and
/// mid-circuit measurement, not just unitary-then-measure programs.
#[test]
fn campaign_corpus_covers_conditional_and_mid_measure_shapes() {
    let mut conditional = 0u32;
    let mut mid_measure = 0u32;
    for i in 0..200u64 {
        let seed = 0xC0FFEEu64.wrapping_add(i.wrapping_mul(qca_core::chaos::CASE_SEED_STRIDE));
        match generate_case(seed).shape {
            CaseShape::Conditional => conditional += 1,
            CaseShape::MidMeasure => mid_measure += 1,
            _ => {}
        }
    }
    assert!(
        conditional >= 20,
        "expected ≥ 20 conditional cases in 200, got {conditional}"
    );
    assert!(
        mid_measure >= 10,
        "expected ≥ 10 mid-measure cases in 200, got {mid_measure}"
    );
}

/// The serving runtime is a fifth engine: submitting a conformance case
/// as a job (through the plan cache, the worker pool, and shot sharding)
/// must reproduce the local compile-and-run bit for bit — and therefore
/// the reference oracle, since the campaign pins the local engines to it.
#[test]
fn service_path_is_bit_identical_to_local_runs() {
    // Low shard threshold so even the small conformance shot counts are
    // split across workers and merged.
    let service = Service::with_config(ServiceConfig {
        workers: 2,
        shard_min_shots: 16,
        ..ServiceConfig::default()
    });
    let handle = service.handle();

    let mut checked = 0u32;
    for i in 0..24u64 {
        let seed = 0x05E1_71CEu64.wrapping_add(i.wrapping_mul(qca_core::chaos::CASE_SEED_STRIDE));
        let case = generate_case(seed);
        let program = Program::parse(&case.source).expect("generated source parses");

        let id = handle
            .submit(
                JobSpec::new(case.source.clone())
                    .with_seed(seed)
                    .with_shots(case.shots),
            )
            .expect("submit");
        let outcome = handle.wait(id, Duration::from_secs(120)).expect("job runs");

        // Mirror the service's own pipeline locally: same platform
        // choice (perfect, sized to the program), same default options,
        // same seed.
        let out = Compiler::with_options(
            Platform::perfect(program.qubit_count()),
            CompilerOptions::default(),
        )
        .compile_cqasm(&program)
        .expect("local compile");
        let local = Simulator::perfect()
            .with_seed(seed)
            .run_shots(&out.program, case.shots)
            .expect("local run");
        assert_eq!(
            outcome.histogram, local,
            "service diverged from local run on case seed {seed} ({:?}):\n{}",
            case.shape, case.source
        );

        // And both must equal the independent oracle on the compiled
        // program.
        let oracle = reference_histogram(&out.program, case.shots, seed);
        assert_eq!(
            outcome.histogram, oracle,
            "service diverged from reference oracle on case seed {seed}"
        );
        checked += 1;
    }
    service.shutdown();
    assert_eq!(checked, 24);
}

/// Exact Born-rule probabilities of `program`'s pre-measurement state.
fn exact_distribution(program: &Program) -> Vec<f64> {
    let n = program.qubit_count();
    let mut state = qxsim::StateVector::zero_state(n);
    for ins in program.flat_instructions() {
        if let cqasm::Instruction::Gate(g) = ins {
            let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
            qxsim::state::reference::apply_gate(&mut state, &g.kind, &idx);
        }
    }
    state.amplitudes().iter().map(|a| a.norm_sqr()).collect()
}

fn total_variation(hist: &ShotHistogram, expected: &[f64], shots: u64) -> f64 {
    0.5 * expected
        .iter()
        .enumerate()
        .map(|(b, p)| (hist.count(b as u64) as f64 / shots as f64 - p).abs())
        .sum::<f64>()
}

/// Differential satellite: the density-matrix engine on noiseless Bell
/// and GHZ states must agree statistically with the state-vector Born
/// probabilities. Seeds are fixed, so this is deterministic.
#[test]
fn density_engine_matches_state_vector_statistics_on_bell_and_ghz() {
    const SHOTS: u64 = 4096;
    let cases = [
        ("bell", "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n"),
        (
            "ghz3",
            "qubits 3\nh q[0]\ncnot q[0], q[1]\ncnot q[1], q[2]\nmeasure_all\n",
        ),
        (
            "ghz5",
            "qubits 5\nh q[0]\ncnot q[0], q[1]\ncnot q[1], q[2]\ncnot q[2], q[3]\ncnot q[3], q[4]\nmeasure_all\n",
        ),
    ];
    for (name, src) in cases {
        let program = Program::parse(src).expect("parse");
        let expected = exact_distribution(&program);
        let sim = Simulator::perfect().with_seed(0xD0_5E_ED);
        let plan = sim.compile(&program).expect("compile");
        let hist = sim.run_density_planned(&plan, SHOTS).expect("density run");
        let tv = total_variation(&hist, &expected, SHOTS);
        assert!(
            tv < 0.05,
            "{name}: density statistics diverge from Born probabilities: TV = {tv:.4}"
        );
        // GHZ-type states only ever produce the two extreme outcomes;
        // the density engine must respect that support exactly.
        let dim = expected.len() as u64;
        assert_eq!(
            hist.count(0) + hist.count(dim - 1),
            SHOTS,
            "{name}: density engine produced outcomes outside the GHZ support"
        );
    }
}

/// Replaying a single case by seed (the `--replay` path) must reproduce
/// the campaign's verdict and the exact generated program.
#[test]
fn replay_by_seed_reproduces_the_case() {
    let seed = 0xC0FFEEu64.wrapping_add(17u64.wrapping_mul(qca_core::chaos::CASE_SEED_STRIDE));
    let a = qca_core::conform::run_case(seed);
    let b = qca_core::conform::run_case(seed);
    assert_eq!(a.source, b.source);
    assert_eq!(a.passed(), b.passed());
    assert!(a.passed(), "campaign seed {seed} must pass: {:?}", a.detail);
}
