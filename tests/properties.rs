//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary generated inputs.

use annealer::{bits_to_spins, Qubo};
use cqasm::{GateKind, Instruction, Program};
use openql::{schedule, Compiler, Platform, ScheduleDirection};
use proptest::prelude::*;
use qxsim::StateVector;

const QUBITS: usize = 4;

fn arb_unitary_instr() -> impl Strategy<Value = Instruction> {
    let one = prop_oneof![
        Just(GateKind::H),
        Just(GateKind::X),
        Just(GateKind::Y),
        Just(GateKind::Z),
        Just(GateKind::S),
        Just(GateKind::Sdag),
        Just(GateKind::T),
        Just(GateKind::Tdag),
        (-8i32..8).prop_map(|k| GateKind::Rz(k as f64 * 0.3)),
        (-8i32..8).prop_map(|k| GateKind::Rx(k as f64 * 0.3)),
    ];
    prop_oneof![
        4 => (one, 0..QUBITS).prop_map(|(g, q)| Instruction::gate(g, &[q])),
        2 => (0..QUBITS, 0..QUBITS - 1).prop_map(|(a, off)| {
            let b = (a + 1 + off) % QUBITS;
            Instruction::gate(GateKind::Cnot, &[a, b])
        }),
        1 => (0..QUBITS, 0..QUBITS - 1).prop_map(|(a, off)| {
            let b = (a + 1 + off) % QUBITS;
            Instruction::gate(GateKind::Cz, &[a, b])
        }),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_unitary_instr(), 1..25).prop_map(|instrs| {
        let mut b = Program::builder(QUBITS).subcircuit("random");
        for i in instrs {
            b = b.instruction(i);
        }
        b.build()
    })
}

fn run_unitaries(p: &Program) -> StateVector {
    let mut s = StateVector::zero_state(QUBITS);
    fn apply(ins: &Instruction, s: &mut StateVector) {
        match ins {
            Instruction::Gate(g) => {
                let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
                s.apply_gate(&g.kind, &idx);
            }
            Instruction::Bundle(v) => v.iter().for_each(|i| apply(i, s)),
            _ => {}
        }
    }
    for ins in p.flat_instructions() {
        apply(ins, &mut s);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compiling for the perfect platform never changes circuit semantics.
    #[test]
    fn compilation_preserves_semantics(p in arb_circuit()) {
        let out = Compiler::new(Platform::perfect(QUBITS))
            .compile_cqasm(&p)
            .expect("compiles");
        let a = run_unitaries(&p);
        let b = run_unitaries(&out.program);
        let f = a.fidelity(&b);
        prop_assert!((f - 1.0).abs() < 1e-8, "fidelity {f}");
    }

    /// Scheduling never double-books a qubit within one cycle and
    /// preserves per-qubit instruction order.
    #[test]
    fn schedule_is_conflict_free(p in arb_circuit()) {
        let plat = Platform::perfect(QUBITS);
        let s = schedule(&p, &plat, ScheduleDirection::Asap);
        let mut busy: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        for item in s.items() {
            let qs: Vec<usize> = item.instruction.qubits().iter().map(|q| q.index()).collect();
            let slot = busy.entry(item.start).or_default();
            for q in qs {
                prop_assert!(!slot.contains(&q), "qubit {q} double-booked");
                slot.push(q);
            }
        }
        // ALAP has the same latency.
        let alap = schedule(&p, &plat, ScheduleDirection::Alap);
        prop_assert_eq!(s.latency(), alap.latency());
    }

    /// The simulator conserves probability for any circuit.
    #[test]
    fn simulation_preserves_norm(p in arb_circuit()) {
        let s = run_unitaries(&p);
        prop_assert!((s.norm() - 1.0).abs() < 1e-8);
    }

    /// QUBO -> Ising conversion preserves energies on every assignment.
    #[test]
    fn qubo_ising_isomorphism(
        entries in proptest::collection::vec(
            (0usize..5, 0usize..5, -3i32..=3), 0..12)
    ) {
        let mut q = Qubo::new(5);
        for (i, j, w) in entries {
            q.add(i, j, w as f64 * 0.5);
        }
        let (ising, offset) = q.to_ising();
        for bits in 0..32u64 {
            let x: Vec<bool> = (0..5).map(|i| (bits >> i) & 1 == 1).collect();
            let s = bits_to_spins(&x);
            let eq = q.energy(&x);
            let ei = ising.energy(&s) + offset;
            prop_assert!((eq - ei).abs() < 1e-9, "x={x:?}: {eq} vs {ei}");
        }
    }

    /// Routing on a line keeps all two-qubit gates nearest-neighbour and
    /// preserves semantics modulo the final permutation.
    #[test]
    fn routing_invariants(p in arb_circuit()) {
        let topo = openql::Topology::linear(QUBITS);
        let res = openql::route(&p, &topo, openql::InitialPlacement::Identity)
            .expect("routable");
        for ins in res.program.flat_instructions() {
            if let Instruction::Gate(g) = ins {
                if g.qubits.len() == 2 {
                    prop_assert!(topo.are_adjacent(g.qubits[0].index(), g.qubits[1].index()));
                }
            }
        }
        // Permutation-adjusted equivalence.
        let original = run_unitaries(&p);
        let routed = run_unitaries(&res.program);
        let mut amps = vec![cqasm::math::C64::ZERO; 1 << QUBITS];
        for (y, a) in routed.amplitudes().iter().enumerate() {
            let mut x = 0usize;
            for l in 0..QUBITS {
                if (y >> res.final_mapping.physical(l)) & 1 == 1 {
                    x |= 1 << l;
                }
            }
            amps[x] = *a;
        }
        let unrouted = StateVector::from_amplitudes(amps);
        let f = original.fidelity(&unrouted);
        prop_assert!((f - 1.0).abs() < 1e-8, "fidelity {f}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The eQASM micro-architecture and the QX simulator implement the
    /// same semantics: for any measurement-free circuit compiled to the
    /// superconducting platform, the device state after micro-architecture
    /// execution matches direct simulation (modulo the routing
    /// permutation).
    #[test]
    fn microarchitecture_matches_simulator(p in arb_circuit()) {
        use eqasm::{MicroArchitecture, QuantumDevice, QxDevice, translate};
        let platform = Platform::superconducting_grid(2, 2);
        let out = Compiler::new(platform).compile_cqasm(&p).expect("compiles");
        // Path A: simulator on the compiled program.
        let sim_state = {
            let r = qxsim::Simulator::perfect().run_once(&out.program).expect("runs");
            r.state
        };
        // Path B: eQASM through the micro-architecture.
        let eq = translate(&out.schedule).expect("translates");
        let mut device = QxDevice::perfect(out.program.qubit_count());
        MicroArchitecture::superconducting()
            .execute(&eq, &mut device)
            .expect("executes");
        let f = sim_state.fidelity(device.state());
        prop_assert!((f - 1.0).abs() < 1e-8, "paths diverged: fidelity {f}");
        let _ = device.qubit_count();
    }
}
