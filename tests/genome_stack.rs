//! Integration tests for the genome-sequencing accelerator: artificial
//! DNA → reads → quantum aligner, validated against the classical
//! baseline across error regimes.

use qgs::aligner::QuantumAligner;
use qgs::classical::{best_hamming_search, exact_search};
use qgs::dna::{MarkovModel, Sequence};
use qgs::grover::{grover_search, optimal_iterations};
use qgs::reads::ReadGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn error_free_alignment_is_always_classically_confirmed() {
    let mut rng = StdRng::seed_from_u64(100);
    let reference = MarkovModel::uniform(1).generate(48, &mut rng);
    let aligner = QuantumAligner::new(reference.clone(), 5);
    let generator = ReadGenerator::new(5, 0.0);
    for _ in 0..25 {
        let read = generator.sample(&reference, &mut rng);
        let q = aligner.align(&read.bases, 0);
        let c = exact_search(&reference, &read.bases);
        assert!(
            c.positions.contains(&q.position),
            "quantum position {} not among exact hits {:?}",
            q.position,
            c.positions
        );
        assert!(q.success_probability > 0.85);
    }
}

#[test]
fn noisy_reads_align_with_tolerance_matching_classical_best() {
    let mut rng = StdRng::seed_from_u64(101);
    let reference = MarkovModel::uniform(1).generate(40, &mut rng);
    let aligner = QuantumAligner::new(reference.clone(), 6);
    let generator = ReadGenerator::new(6, 0.08);
    let mut aligned = 0;
    let mut total = 0;
    for _ in 0..20 {
        let read = generator.sample(&reference, &mut rng);
        let c = best_hamming_search(&reference, &read.bases);
        let q = aligner.align(&read.bases, c.distance);
        total += 1;
        if c.positions.contains(&q.position) {
            aligned += 1;
        }
    }
    // The oracle marks all positions at the best distance; the recalled
    // index must be one of them in the vast majority of trials.
    assert!(aligned >= total - 1, "aligned {aligned}/{total}");
}

#[test]
fn tolerance_gate_controls_recall() {
    // A read with exactly one error: strict alignment misses or mismatches,
    // tolerant alignment recovers the position.
    let reference = Sequence::parse("ACGTGGCAATTCCGATTGCA").unwrap();
    let aligner = QuantumAligner::new(reference.clone(), 6);
    let clean = reference.subsequence(8, 6); // "TTCCGA"
    let mut corrupted: Vec<qgs::Base> = clean.bases().to_vec();
    corrupted[0] = qgs::Base::G;
    let corrupted: Sequence = corrupted.into_iter().collect();
    let strict = aligner.align(&corrupted, 0);
    let lax = aligner.align(&corrupted, 1);
    assert_eq!(strict.matches, 0, "no exact entry should match");
    assert_eq!(lax.position, 8);
    assert!(lax.matches >= 1);
}

#[test]
fn grover_beats_classical_query_count_at_scale() {
    // Quantum queries ~ pi/4 sqrt(N); classical expected scan ~ N/2.
    for n_bits in [6usize, 10, 14] {
        let n = 1u64 << n_bits;
        let grover_queries = optimal_iterations(n_bits, 1) as f64;
        let classical_expected = n as f64 / 2.0;
        assert!(
            grover_queries < classical_expected / 2.0,
            "n=2^{n_bits}: {grover_queries} vs {classical_expected}"
        );
    }
    // And the search actually works at 12 qubits.
    let r = grover_search(12, |x| x == 1234, optimal_iterations(12, 1));
    assert!(r.success_probability > 0.95);
}

#[test]
fn markov_reference_statistics_survive_the_pipeline() {
    // The artificial-DNA prescription: generated references must keep the
    // template's entropy class even after slicing into k-mers.
    let mut rng = StdRng::seed_from_u64(102);
    let reference = MarkovModel::uniform(2).generate(64, &mut rng);
    assert!(
        reference.base_entropy() > 1.7,
        "near-maximal entropy source"
    );
    let aligner = QuantumAligner::new(reference.clone(), 4);
    assert_eq!(aligner.entry_count(), 61);
    // Database qubits: index (6 bits for 61 entries) + 8 data bits.
    assert_eq!(aligner.qubit_count(), 14);
}
