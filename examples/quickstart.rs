//! Quickstart: the same quantum program through the two faces of the
//! full stack (Fig 2 of the paper).
//!
//! 1. Application development: perfect qubits on the QX simulator.
//! 2. Experimental control: real-qubit noise behind the eQASM
//!    micro-architecture, with the nanosecond pulse trace.
//!
//! Run with: `cargo run --example quickstart`

use openql::{Kernel, QuantumProgram};
use qca_core::{FullStack, QubitKind, StackError};

fn main() -> Result<(), StackError> {
    // A 3-qubit GHZ preparation expressed as OpenQL quantum logic.
    let mut kernel = Kernel::new("ghz", 3);
    kernel.h(0).cnot(0, 1).cnot(1, 2).measure_all();
    let mut program = QuantumProgram::new("quickstart", 3);
    program.add_kernel(kernel);

    // --- Face 1: perfect qubits, QX simulator -------------------------
    let dev_stack = FullStack::perfect(3);
    let dev = dev_stack.execute(&program, 1000)?;
    println!("== perfect qubits on QX ==");
    println!(
        "compiled: {} gates, latency {} cycles",
        dev.compile.output_stats.gates, dev.compile.latency_cycles
    );
    println!(
        "P(000) = {:.3}, P(111) = {:.3}, other = {:.3}",
        dev.histogram.probability(0b000),
        dev.histogram.probability(0b111),
        1.0 - dev.histogram.probability(0b000) - dev.histogram.probability(0b111)
    );

    // --- Face 2: the experimental superconducting stack ---------------
    let lab_stack = FullStack::superconducting(2, 2).with_qubits(QubitKind::real_transmon());
    let lab = lab_stack.execute(&program, 1000)?;
    println!("\n== real transmon qubits behind the eQASM micro-architecture ==");
    println!(
        "compiled: {} gates ({} SWAPs inserted for the grid), shot time {} ns",
        lab.compile.output_stats.gates,
        lab.compile.swaps_inserted,
        lab.shot_time_ns.expect("microarch reports timing")
    );
    let pulses = lab.pulses.expect("pulse trace");
    println!(
        "first shot emitted {} analogue pulses; first five:",
        pulses.len()
    );
    for p in pulses.iter().take(5) {
        println!(
            "  t={:>5} ns  q{}  {:<6} codeword 0x{:02x}  ({} ns)",
            p.time_ns, p.qubit, p.opcode, p.codeword, p.duration_ns
        );
    }
    // Decode physical bitstrings through the final mapping.
    let mapping = lab.final_mapping.expect("routed");
    let mut good = 0u64;
    for (bits, count) in lab.histogram.iter() {
        let mut logical = 0u64;
        for l in 0..3 {
            if (bits >> mapping.physical(l)) & 1 == 1 {
                logical |= 1 << l;
            }
        }
        if logical == 0b000 || logical == 0b111 {
            good += count;
        }
    }
    println!(
        "GHZ fidelity proxy under real-qubit noise: {:.3}",
        good as f64 / lab.histogram.shots() as f64
    );
    Ok(())
}
