//! The paper's Fig 9: route planning between four Dutch cities reduced to
//! a TSP, encoded as a 16-qubit QUBO and solved on both quantum
//! computation models plus the classical baselines.
//!
//! Run with: `cargo run --release --example tsp_route_planning`

use annealer::{DigitalAnnealer, SimulatedAnnealer};
use optim::{solve_tsp_qaoa, solve_tsp_with_sampler, TspInstance, TspQubo};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let tsp = TspInstance::nl_four_cities();
    println!("cities: {:?}", tsp.names());
    println!("pairwise scaled Euclidean distances:");
    for i in 0..tsp.len() {
        let row: Vec<String> = (0..tsp.len())
            .map(|j| format!("{:5.3}", tsp.distance(i, j)))
            .collect();
        println!("  {}", row.join("  "));
    }

    // Classical exact solutions.
    let (tour, cost) = tsp.brute_force();
    let named: Vec<&str> = tour.iter().map(|&c| tsp.names()[c].as_str()).collect();
    println!("\nexhaustive enumeration: optimal tour {named:?} with cost {cost:.2}");
    let (_, bb_cost, nodes) = tsp.branch_and_bound();
    println!("branch and bound: cost {bb_cost:.2} after {nodes} search nodes");

    // The QUBO encoding (constraints i-iv of §3.3).
    let enc = TspQubo::encode(&tsp, TspQubo::default_penalty(&tsp));
    println!(
        "\nQUBO encoding: {} binary variables ({} cities squared) — the paper's 16 qubits",
        enc.variables(),
        tsp.len()
    );

    // Annealing model.
    println!("\n-- annealing track --");
    let sa = solve_tsp_with_sampler(&tsp, &SimulatedAnnealer::new(), 50).expect("feasible");
    println!(
        "simulated annealing:   cost {:.2} ({:.0}% of reads feasible)",
        sa.cost,
        100.0 * sa.feasible_fraction
    );
    let da = solve_tsp_with_sampler(&tsp, &DigitalAnnealer::new(), 20).expect("feasible");
    println!(
        "digital annealer:      cost {:.2} ({:.0}% of reads feasible, fully connected, no embedding)",
        da.cost,
        100.0 * da.feasible_fraction
    );

    // Gate model: QAOA via the hybrid loop of Fig 8.
    println!("\n-- gate-model track (QAOA over 16 qubits) --");
    let qaoa = solve_tsp_qaoa(&tsp, 2, 3000, 7).expect("feasible sample");
    println!(
        "qaoa (p=2):            cost {:.2} ({:.1}% of shots feasible)",
        qaoa.cost,
        100.0 * qaoa.feasible_fraction
    );

    // Monte-Carlo heuristic (the classical fallback for larger inputs).
    let mut rng = StdRng::seed_from_u64(99);
    let (_, mc) = tsp.monte_carlo(500, &mut rng);
    println!("\nmonte-carlo heuristic: cost {mc:.2}");

    println!(
        "\npaper's reported optimum: 1.42 — every solver above should agree for this instance."
    );
}
