# Bell pair: the smallest end-to-end program for qca-trace.
version 1.0
qubits 2

.bell
h q[0]
cnot q[0], q[1]
measure_all
