//! The realistic-qubit track (§2.1): surface-code error correction.
//! Prints logical error rates vs physical error rates for growing code
//! distance, plus the ancilla overhead behind Preskill's NISQ argument.
//!
//! Run with: `cargo run --release --example surface_code`

use qec::monte::surface_logical_error_rate;
use qec::{StabilizerCode, SurfaceCode};

fn main() {
    println!("planar surface code footprint (data + ancilla = total physical qubits):");
    println!("{:<4} {:>6} {:>8} {:>7}", "d", "data", "ancilla", "total");
    for d in [3usize, 5, 7, 9] {
        let s = SurfaceCode::new(d);
        println!(
            "{:<4} {:>6} {:>8} {:>7}",
            d,
            s.data_qubits(),
            s.ancilla_qubits(),
            s.total_qubits()
        );
    }
    println!(
        "\nsmall codes (the NISQ alternative): repetition-3 = {} qubits, Steane = {} qubits",
        StabilizerCode::repetition(3).data_qubits()
            + StabilizerCode::repetition(3).ancilla_qubits(),
        StabilizerCode::steane().data_qubits() + StabilizerCode::steane().ancilla_qubits()
    );

    println!("\nlogical X error rate under bit-flip noise (matching decoder):");
    print!("{:<8}", "p_phys");
    for d in [3usize, 5, 7] {
        print!("{:>10}", format!("d={d}"));
    }
    println!();
    let trials = 20_000;
    for p in [0.005f64, 0.01, 0.02, 0.05, 0.10, 0.15] {
        print!("{:<8.3}", p);
        for d in [3usize, 5, 7] {
            let rate = surface_logical_error_rate(d, p, trials, 42);
            print!("{:>10.5}", rate);
        }
        println!();
    }
    println!(
        "\nbelow threshold larger distance wins; above it the ordering flips —\n\
         the crossover is the decoder's threshold."
    );
}
