//! The cryptography candidate domain (§2.3): Shor's algorithm factoring
//! small RSA-style moduli via quantum order finding on the simulator.
//!
//! Run with: `cargo run --release --example shor_factoring`

use qca_core::shor::{find_order, mod_pow, shor_factor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    println!("-- quantum order finding --");
    for (a, n) in [(7u64, 15u64), (2, 15), (2, 21), (5, 21)] {
        let bits = 64 - (n - 1).leading_zeros();
        match find_order(a, n, 2 * bits, 5, &mut rng) {
            Some(r) => {
                println!(
                    "order of {a} mod {n} = {r}   (check: {a}^{r} mod {n} = {})",
                    mod_pow(a, r, n)
                );
            }
            None => println!("order of {a} mod {n}: not found in budget"),
        }
    }

    println!("\n-- factoring --");
    for n in [15u64, 21, 33, 35] {
        match shor_factor(n, 20, &mut rng) {
            Some(f) => {
                let (p, q) = f.factors;
                let how = if f.order == 0 {
                    "lucky gcd".to_owned()
                } else {
                    format!("order {} of a = {}", f.order, f.a)
                };
                println!("{n} = {p} x {q}   ({how})");
            }
            None => println!("{n}: all attempts failed (probabilistic)"),
        }
    }
    println!(
        "\nRegister sizes: factoring N needs ~3*bits(N) simulated qubits here\n\
         (work + counting); RSA-2048 would need thousands of *logical* qubits\n\
         — the paper's point that cryptography is a long-horizon driver."
    );
}
