//! Physical-system simulation (§2.3's chemistry candidate domain): VQE on
//! a minimal-basis H2-like Hamiltonian, driven by the hybrid
//! quantum-classical loop, plus state tomography of the optimised ansatz.
//!
//! Run with: `cargo run --release --example vqe_chemistry`

use optim::vqe::Vqe;
use qca_core::{tomography_qubit, FullStack};
use qxsim::{Pauli, PauliString, PauliSum, StateVector};

fn h2_hamiltonian() -> PauliSum {
    let mut h = PauliSum::new();
    h.add(-0.4804, PauliString::identity())
        .add(0.3435, PauliString::z(0))
        .add(-0.4347, PauliString::z(1))
        .add(0.5716, PauliString::new(vec![(0, Pauli::Z), (1, Pauli::Z)]))
        .add(0.0910, PauliString::new(vec![(0, Pauli::X), (1, Pauli::X)]))
        .add(0.0910, PauliString::new(vec![(0, Pauli::Y), (1, Pauli::Y)]));
    h
}

fn main() {
    let h = h2_hamiltonian();
    println!("H2-like Hamiltonian ({} Pauli terms):", h.terms().len());
    for (c, p) in h.terms() {
        println!("  {c:+.4} * {p}");
    }

    // Reference energies by direct expectation on the four basis states
    // plus the coupled sector minimum.
    let diag: Vec<f64> = (0..4u64)
        .map(|b| h.expectation(&StateVector::basis_state(2, b)))
        .collect();
    println!(
        "\ndiagonal energies: |00> {:.4}, |01> {:.4}, |10> {:.4}, |11> {:.4}",
        diag[0], diag[1], diag[2], diag[3]
    );

    for layers in [1usize, 2] {
        let vqe = Vqe::new(h.clone(), 2, layers);
        let run = vqe.minimize(200);
        println!(
            "\nVQE ({} layer{}): E = {:.6} after {} circuit evaluations",
            layers,
            if layers == 1 { "" } else { "s" },
            run.energy,
            run.evaluations
        );
        let show = run.history.len().min(6);
        println!(
            "  convergence head: {:?}",
            run.history[..show]
                .iter()
                .map(|e| format!("{e:.4}"))
                .collect::<Vec<_>>()
        );
    }

    // Tomography sanity check on a simple prepared qubit through the
    // full stack (the verification loop an application developer runs).
    let stack = FullStack::perfect(1);
    let bloch = tomography_qubit(
        &stack,
        &|k| {
            k.ry(0, std::f64::consts::FRAC_PI_3); // 60 degrees
        },
        4000,
    )
    .expect("tomography runs");
    println!(
        "\ntomography of Ry(60deg)|0>: Bloch = ({:.3}, {:.3}, {:.3}), |r| = {:.3}",
        bloch.x,
        bloch.y,
        bloch.z,
        bloch.length()
    );
    println!("expected: (sin 60, 0, cos 60) = (0.866, 0, 0.500)");
}
