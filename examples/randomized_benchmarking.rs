//! §3.1's end-to-end pipeline: randomised benchmarking written in OpenQL,
//! compiled to cQASM then eQASM, executed on the micro-architecture with
//! nanosecond timing — and retargeted from superconducting to
//! semiconducting qubits by configuration only.
//!
//! Run with: `cargo run --release --example randomized_benchmarking`

use qca_core::rb::{single_qubit_rb, survival_probability, CliffordTable};
use qca_core::{FullStack, QubitKind, StackError};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), StackError> {
    let table = CliffordTable::single_qubit();
    let mut rng = StdRng::seed_from_u64(7);
    let lengths = [1usize, 2, 4, 8, 16, 32];
    let shots = 300;
    let sequences_per_length = 5;

    println!("single-qubit randomised benchmarking through the full stack");
    println!(
        "{:<8} {:>22} {:>22}",
        "length", "survival (perfect)", "survival (real)"
    );

    let perfect = FullStack::superconducting(1, 1).with_qubits(QubitKind::Perfect);
    let real = FullStack::superconducting(1, 1).with_qubits(QubitKind::real_transmon());

    for &m in &lengths {
        let mut s_perfect = 0.0;
        let mut s_real = 0.0;
        for _ in 0..sequences_per_length {
            let program = single_qubit_rb(&table, m, &mut rng);
            s_perfect += survival_probability(&perfect.execute(&program, shots)?.histogram);
            s_real += survival_probability(&real.execute(&program, shots)?.histogram);
        }
        println!(
            "{:<8} {:>22.3} {:>22.3}",
            m,
            s_perfect / sequences_per_length as f64,
            s_real / sequences_per_length as f64
        );
    }

    // Retargeting demo: identical program, two technologies.
    let program = single_qubit_rb(&table, 8, &mut rng);
    let sc = FullStack::superconducting(1, 1)
        .with_qubits(QubitKind::Perfect)
        .execute(&program, 10)?;
    let spin = FullStack::semiconducting(1)
        .with_qubits(QubitKind::Perfect)
        .execute(&program, 10)?;
    println!("\nretargeting by configuration (same OpenQL program):");
    println!(
        "  superconducting: {} pulses, {} ns per shot",
        sc.pulses.as_ref().map_or(0, Vec::len),
        sc.shot_time_ns.unwrap_or(0)
    );
    println!(
        "  semiconducting:  {} pulses, {} ns per shot",
        spin.pulses.as_ref().map_or(0, Vec::len),
        spin.shot_time_ns.unwrap_or(0)
    );
    println!("\neQASM of the superconducting run (head):");
    if let Some(eq) = &sc.eqasm {
        for line in eq.to_string().lines().take(12) {
            println!("  {line}");
        }
    }
    Ok(())
}
