//! The quantum genome-sequencing accelerator of §3.2: read alignment on
//! artificial DNA via Grover search + quantum associative memory.
//!
//! Run with: `cargo run --release --example genome_alignment`

use qgs::aligner::QuantumAligner;
use qgs::classical::best_hamming_search;
use qgs::dna::MarkovModel;
use qgs::reads::ReadGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    // Artificial reference preserving base statistics (order-2 Markov).
    let template = MarkovModel::uniform(0).generate(400, &mut rng);
    let model = MarkovModel::estimate(&template, 2);
    let reference = model.generate(60, &mut rng);
    println!("reference ({} bases): {reference}", reference.len());
    println!(
        "base entropy: {:.3} bits (max 2.0)\n",
        reference.base_entropy()
    );

    let kmer = 6;
    let aligner = QuantumAligner::new(reference.clone(), kmer);
    println!(
        "quantum database: {} entries, {} qubits ({} index + {} data)",
        aligner.entry_count(),
        aligner.qubit_count(),
        aligner.index_bits(),
        2 * kmer
    );

    // Sample reads with a 5% per-base error rate.
    let generator = ReadGenerator::new(kmer, 0.05);
    let reads = generator.sample_batch(&reference, 20, &mut rng);

    let mut correct = 0;
    let mut total_iterations = 0usize;
    let mut classical_comparisons = 0u64;
    println!(
        "\n{:<10} {:>6} {:>6} {:>9} {:>8} {:>8}",
        "read", "true", "found", "P(match)", "iters", "errors"
    );
    for read in &reads {
        let classical = best_hamming_search(&reference, &read.bases);
        classical_comparisons += classical.comparisons;
        let out = aligner.align(&read.bases, read.errors.max(1));
        let ok = classical.positions.contains(&out.position) || out.position == read.true_position;
        if ok {
            correct += 1;
        }
        total_iterations += out.iterations;
        println!(
            "{:<10} {:>6} {:>6} {:>9.3} {:>8} {:>8}",
            read.bases.to_string(),
            read.true_position,
            out.position,
            out.success_probability,
            out.iterations,
            read.errors
        );
    }
    println!(
        "\naligned {}/{} reads to a best-match position",
        correct,
        reads.len()
    );
    println!(
        "quantum work: {} Grover iterations total; classical baseline: {} base comparisons",
        total_iterations, classical_comparisons
    );
    println!(
        "(per read: ~{} oracle queries vs ~{} comparisons — the quadratic gap of §2.3)",
        total_iterations / reads.len(),
        classical_comparisons / reads.len() as u64
    );

    // The paper's capacity estimate, reproduced.
    let cap = qgs::CapacityModel::human_genome();
    println!(
        "\nhuman-genome scale estimate: {} index + {} data + {} ancilla = {} logical qubits (paper: ~150)",
        cap.index_qubits(),
        cap.data_qubits(),
        cap.ancilla_qubits(),
        cap.total_logical_qubits()
    );
}
