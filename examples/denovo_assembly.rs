//! De novo genome assembly (§3.2's second algorithmic primitive:
//! graph-based combinatorial optimisation). Fragments an artificial
//! genome into overlapping reads, builds the overlap graph, and
//! reconstructs the genome three ways: greedy classical merging, QUBO +
//! simulated annealing, and QUBO + the path-integral quantum annealer.
//!
//! Run with: `cargo run --release --example denovo_assembly`

use annealer::{QuantumAnnealer, SimulatedAnnealer};
use qgs::assembly::{fragment, OverlapGraph};
use qgs::dna::MarkovModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4242);
    let reference = MarkovModel::uniform(1).generate(36, &mut rng);
    println!("reference ({} bases): {reference}", reference.len());

    let reads = fragment(&reference, 10, 5);
    println!("\nfragmented into {} overlapping reads:", reads.len());
    for (i, r) in reads.iter().enumerate() {
        println!("  read {i}: {r}");
    }

    let graph = OverlapGraph::build(&reads, 3);
    println!("\noverlap matrix (suffix->prefix):");
    for i in 0..graph.len() {
        let row: Vec<String> = (0..graph.len())
            .map(|j| format!("{:2}", graph.overlap(i, j)))
            .collect();
        println!("  {}", row.join(" "));
    }

    // Classical greedy baseline.
    let order = graph.greedy_order();
    let contig = graph.merge_path(&order);
    println!("\ngreedy merge order {order:?}");
    println!(
        "greedy contig:  {contig}  ({})",
        if contig == reference {
            "EXACT"
        } else {
            "mismatch"
        }
    );

    // Quantum-accelerated: Hamiltonian path QUBO on the annealers.
    let n = graph.len();
    println!("\nQUBO encoding: {} variables ({} reads squared)", n * n, n);
    let sa = SimulatedAnnealer::new().with_seed(1);
    if let Some((order, contig)) = graph.assemble_with(&sa, 60) {
        println!(
            "simulated annealing:     order {order:?} -> {contig} ({})",
            if contig == reference {
                "EXACT"
            } else {
                "mismatch"
            }
        );
    }
    let sqa = QuantumAnnealer::new().with_seed(2);
    if let Some((order, contig)) = graph.assemble_with(&sqa, 30) {
        println!(
            "quantum annealer (SQA):  order {order:?} -> {contig} ({})",
            if contig == reference {
                "EXACT"
            } else {
                "mismatch"
            }
        );
    }
}
