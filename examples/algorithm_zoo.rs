//! The algorithm library through the full stack: Bernstein–Vazirani,
//! Deutsch–Jozsa, QFT round-trip and quantum phase estimation — each
//! compiled and executed on perfect and noisy qubits.
//!
//! Run with: `cargo run --release --example algorithm_zoo`

use openql::library::{bernstein_vazirani, deutsch_jozsa, iqft, phase_estimation, qft, DjOracle};
use openql::{Kernel, QuantumProgram};
use qca_core::{FullStack, QubitKind, StackError};

fn wrap(kernel: Kernel, n: usize) -> QuantumProgram {
    let mut p = QuantumProgram::new("zoo", n);
    p.add_kernel(kernel);
    p
}

fn main() -> Result<(), StackError> {
    // --- Bernstein–Vazirani: one query reveals the secret --------------
    let secret = 0b1011u64;
    let program = wrap(bernstein_vazirani(4, secret), 5);
    let run = FullStack::perfect(5).execute(&program, 300)?;
    let recovered = run.histogram.most_likely().unwrap() & 0b1111;
    println!("Bernstein-Vazirani: secret {secret:04b}, recovered {recovered:04b} on every shot");
    let noisy = FullStack::perfect(5)
        .with_qubits(QubitKind::realistic_today())
        .execute(&program, 300)?;
    println!(
        "  under today's noise the secret still tops the histogram with P = {:.3}",
        noisy
            .histogram
            .probability(noisy.histogram.most_likely().unwrap())
    );

    // --- Deutsch–Jozsa: constant vs balanced in one query --------------
    for (oracle, label) in [
        (DjOracle::ConstantOne, "constant"),
        (DjOracle::BalancedParity, "balanced"),
    ] {
        let program = wrap(deutsch_jozsa(4, oracle), 5);
        let run = FullStack::perfect(5).execute(&program, 100)?;
        let all_zero = run.histogram.iter().all(|(bits, _)| bits & 0b1111 == 0);
        println!(
            "Deutsch-Jozsa ({label}): data register all-zero = {all_zero} -> classified {}",
            if all_zero { "constant" } else { "balanced" }
        );
    }

    // --- QFT round trip -------------------------------------------------
    let mut k = Kernel::new("qft_roundtrip", 4);
    k.x(0).x(2); // |0101>
    qft(&mut k, &[0, 1, 2, 3]);
    iqft(&mut k, &[0, 1, 2, 3]);
    k.measure_all();
    let run = FullStack::perfect(4).execute(&wrap(k, 4), 200)?;
    println!(
        "QFT then inverse-QFT returns |0101> with P = {:.3}",
        run.histogram.probability(0b0101)
    );

    // --- Phase estimation ------------------------------------------------
    let phase = 5.0 / 16.0;
    let program = wrap(phase_estimation(4, phase), 5);
    let run = FullStack::perfect(5).execute(&program, 400)?;
    let counting = run.histogram.most_likely().unwrap() & 0b1111;
    println!(
        "phase estimation: true phase {phase:.4} -> measured {counting}/16 = {:.4}",
        counting as f64 / 16.0
    );
    Ok(())
}
