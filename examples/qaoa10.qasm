# One QAOA layer on a 10-qubit ring (MaxCut cost Hamiltonian):
#   |+>^10, then ZZ(gamma) on every ring edge via cnot-rz-cnot,
#   then the RX(beta) mixer, then measurement.
# Used by CI as the qca-trace workload.
version 1.0
qubits 10

.prepare
h q[0]
h q[1]
h q[2]
h q[3]
h q[4]
h q[5]
h q[6]
h q[7]
h q[8]
h q[9]

.cost
cnot q[0], q[1]
rz q[1], 0.7854
cnot q[0], q[1]
cnot q[1], q[2]
rz q[2], 0.7854
cnot q[1], q[2]
cnot q[2], q[3]
rz q[3], 0.7854
cnot q[2], q[3]
cnot q[3], q[4]
rz q[4], 0.7854
cnot q[3], q[4]
cnot q[4], q[5]
rz q[5], 0.7854
cnot q[4], q[5]
cnot q[5], q[6]
rz q[6], 0.7854
cnot q[5], q[6]
cnot q[6], q[7]
rz q[7], 0.7854
cnot q[6], q[7]
cnot q[7], q[8]
rz q[8], 0.7854
cnot q[7], q[8]
cnot q[8], q[9]
rz q[9], 0.7854
cnot q[8], q[9]
cnot q[9], q[0]
rz q[0], 0.7854
cnot q[9], q[0]

.mixer
rx q[0], 0.3927
rx q[1], 0.3927
rx q[2], 0.3927
rx q[3], 0.3927
rx q[4], 0.3927
rx q[5], 0.3927
rx q[6], 0.3927
rx q[7], 0.3927
rx q[8], 0.3927
rx q[9], 0.3927

.readout
measure_all
