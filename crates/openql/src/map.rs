//! Placement and routing of qubits (§2.6 of the paper).
//!
//! Circuit descriptions assume any pair of qubits can interact; real
//! devices only offer nearest-neighbour two-qubit gates. The mapper
//! assigns logical qubits to physical positions (placement) and inserts
//! `MOVE`/`SWAP` operations at run points where operands are not adjacent
//! (routing), exactly the compiler responsibility the paper describes.

use crate::error::CompileError;
use crate::topology::Topology;
use cqasm::{GateApp, GateKind, Instruction, Program, Qubit};
use std::collections::HashMap;

/// A bijection between logical and physical qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    l2p: Vec<usize>,
    p2l: Vec<usize>,
}

impl Mapping {
    /// The identity mapping over `n` qubits.
    pub fn identity(n: usize) -> Self {
        Mapping {
            l2p: (0..n).collect(),
            p2l: (0..n).collect(),
        }
    }

    /// Builds a mapping from an explicit logical→physical table.
    ///
    /// # Panics
    ///
    /// Panics if the table is not a permutation.
    pub fn from_l2p(l2p: Vec<usize>) -> Self {
        let n = l2p.len();
        let mut p2l = vec![usize::MAX; n];
        for (l, &p) in l2p.iter().enumerate() {
            assert!(p < n && p2l[p] == usize::MAX, "not a permutation");
            p2l[p] = l;
        }
        Mapping { l2p, p2l }
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.l2p.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.l2p.is_empty()
    }

    /// Physical position of logical qubit `l`.
    pub fn physical(&self, l: usize) -> usize {
        self.l2p[l]
    }

    /// Logical qubit residing at physical position `p`.
    pub fn logical(&self, p: usize) -> usize {
        self.p2l[p]
    }

    /// Records a SWAP of the contents of two physical positions.
    pub fn swap_physical(&mut self, pa: usize, pb: usize) {
        let la = self.p2l[pa];
        let lb = self.p2l[pb];
        self.p2l.swap(pa, pb);
        self.l2p[la] = pb;
        self.l2p[lb] = pa;
    }

    /// The logical→physical table.
    pub fn l2p(&self) -> &[usize] {
        &self.l2p
    }
}

/// How the router chooses the initial placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialPlacement {
    /// Logical qubit `i` starts at physical position `i`.
    #[default]
    Identity,
    /// Greedy placement that puts strongly-interacting logical pairs on
    /// adjacent physical qubits.
    GreedyInteraction,
}

/// Output of the router.
#[derive(Debug, Clone)]
pub struct RoutingResult {
    /// The routed program, with all operands in *physical* space and all
    /// two-qubit gates nearest-neighbour. Subcircuit iterations are
    /// expanded (routing changes the mapping, so bodies cannot repeat
    /// verbatim).
    pub program: Program,
    /// Placement before the first instruction.
    pub initial: Mapping,
    /// Placement after the last instruction (needed to decode
    /// measurement registers and final states).
    pub final_mapping: Mapping,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Routes `program` onto `topology`.
///
/// # Errors
///
/// - [`CompileError::TooManyQubits`] if the program needs more qubits than
///   the topology provides.
/// - [`CompileError::Unroutable`] if the topology is disconnected between
///   two operands.
/// - [`CompileError::Unsupported`] if a gate with three or more operands
///   reaches the router on a constrained topology (decompose first).
pub fn route(
    program: &Program,
    topology: &Topology,
    placement: InitialPlacement,
) -> Result<RoutingResult, CompileError> {
    let n_logical = program.qubit_count();
    let n_physical = topology.qubit_count();
    if n_logical > n_physical {
        return Err(CompileError::TooManyQubits {
            needed: n_logical,
            available: n_physical,
        });
    }

    let initial = match placement {
        InitialPlacement::Identity => Mapping::identity(n_physical),
        InitialPlacement::GreedyInteraction => greedy_placement(program, topology),
    };
    let mut mapping = initial.clone();
    let mut out = Program::new(n_physical);
    out.set_version(program.version());
    let mut sub = cqasm::Subcircuit::new("routed");
    let mut swaps = 0usize;

    for ins in program.flat_instructions() {
        route_instruction(ins, topology, &mut mapping, &mut sub, &mut swaps)?;
    }
    out.push_subcircuit(sub);
    Ok(RoutingResult {
        program: out,
        initial,
        final_mapping: mapping,
        swaps_inserted: swaps,
    })
}

fn route_instruction(
    ins: &Instruction,
    topology: &Topology,
    mapping: &mut Mapping,
    sub: &mut cqasm::Subcircuit,
    swaps: &mut usize,
) -> Result<(), CompileError> {
    match ins {
        Instruction::Gate(g) => {
            let app = route_gate(g, topology, mapping, sub, swaps)?;
            sub.push(Instruction::Gate(app));
            Ok(())
        }
        Instruction::Cond(bit, g) => {
            // Classical bits are written at the *physical* position a
            // logical qubit occupied when measured; conditionals must read
            // the same slot. Remap through the current mapping (sound as
            // long as the measured qubit has not been swapped between its
            // measurement and this use — the router never moves a qubit
            // except to serve a two-qubit gate, so a measure→cond pair on
            // an untouched qubit keeps its slot).
            let phys_bit = cqasm::Bit(mapping.physical(bit.index()));
            let app = route_gate(g, topology, mapping, sub, swaps)?;
            sub.push(Instruction::Cond(phys_bit, app));
            Ok(())
        }
        Instruction::Measure(q) => {
            sub.push(Instruction::Measure(Qubit(mapping.physical(q.index()))));
            Ok(())
        }
        Instruction::PrepZ(q) => {
            sub.push(Instruction::PrepZ(Qubit(mapping.physical(q.index()))));
            Ok(())
        }
        Instruction::Bundle(instrs) => {
            // Routing may insert swaps between slots; flatten and let the
            // scheduler re-bundle.
            for inner in instrs {
                route_instruction(inner, topology, mapping, sub, swaps)?;
            }
            Ok(())
        }
        other => {
            sub.push(other.clone());
            Ok(())
        }
    }
}

fn route_gate(
    g: &GateApp,
    topology: &Topology,
    mapping: &mut Mapping,
    sub: &mut cqasm::Subcircuit,
    swaps: &mut usize,
) -> Result<GateApp, CompileError> {
    match g.qubits.len() {
        1 => Ok(GateApp::new(
            g.kind,
            vec![Qubit(mapping.physical(g.qubits[0].index()))],
        )),
        2 => {
            let la = g.qubits[0].index();
            let lb = g.qubits[1].index();
            let pa = mapping.physical(la);
            let pb = mapping.physical(lb);
            if !topology.are_adjacent(pa, pb) {
                let path = topology
                    .shortest_path(pa, pb)
                    .ok_or(CompileError::Unroutable { a: pa, b: pb })?;
                // Move the first operand along the path until it neighbours
                // the second: swap through path[0..len-2].
                for w in path.windows(2).take(path.len() - 2) {
                    sub.push(Instruction::gate(GateKind::Swap, &[w[0], w[1]]));
                    mapping.swap_physical(w[0], w[1]);
                    *swaps += 1;
                }
            }
            let pa = mapping.physical(la);
            let pb = mapping.physical(lb);
            debug_assert!(topology.are_adjacent(pa, pb));
            Ok(GateApp::new(g.kind, vec![Qubit(pa), Qubit(pb)]))
        }
        _ => {
            // Multi-qubit gates only pass through if every operand pair is
            // mutually adjacent (true on fully-connected topologies).
            let phys: Vec<usize> = g
                .qubits
                .iter()
                .map(|q| mapping.physical(q.index()))
                .collect();
            let all_adjacent = phys
                .iter()
                .enumerate()
                .all(|(i, &a)| phys[i + 1..].iter().all(|&b| topology.are_adjacent(a, b)));
            if all_adjacent {
                Ok(GateApp::new(g.kind, phys.into_iter().map(Qubit).collect()))
            } else {
                Err(CompileError::Unsupported {
                    gate: g.kind.mnemonic().to_owned(),
                    target: format!("routing on {}", topology.name()),
                })
            }
        }
    }
}

/// Greedy interaction-aware placement: strongly-interacting logical pairs
/// are seeded onto adjacent physical qubits.
fn greedy_placement(program: &Program, topology: &Topology) -> Mapping {
    let n_logical = program.qubit_count();
    let n_physical = topology.qubit_count();

    // Interaction weights between logical pairs.
    let mut weights: HashMap<(usize, usize), usize> = HashMap::new();
    for ins in program.flat_instructions() {
        let qs = ins.qubits();
        if qs.len() == 2 {
            let (a, b) = (
                qs[0].index().min(qs[1].index()),
                qs[0].index().max(qs[1].index()),
            );
            *weights.entry((a, b)).or_insert(0) += 1;
        }
    }
    let mut pairs: Vec<((usize, usize), usize)> = weights.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut l2p = vec![usize::MAX; n_logical];
    let mut used = vec![false; n_physical];

    // Seed: heaviest pair on the highest-degree edge.
    if let Some(((a, b), _)) = pairs.first() {
        let best_edge = topology
            .edges()
            .into_iter()
            .max_by_key(|&(u, v)| topology.neighbors(u).len() + topology.neighbors(v).len());
        if let Some((u, v)) = best_edge {
            l2p[*a] = u;
            l2p[*b] = v;
            used[u] = true;
            used[v] = true;
        }
    }

    // Place remaining logicals: for each interaction pair in weight order,
    // put unplaced partners as close as possible to placed ones.
    for ((a, b), _) in &pairs {
        for (&src, &dst) in [(a, b), (b, a)] {
            if l2p[src] != usize::MAX && l2p[dst] == usize::MAX {
                let anchor = l2p[src];
                let target = (0..n_physical)
                    .filter(|&p| !used[p])
                    .min_by_key(|&p| topology.distance(anchor, p).unwrap_or(usize::MAX));
                if let Some(p) = target {
                    l2p[dst] = p;
                    used[p] = true;
                }
            }
        }
    }

    // Any untouched logical qubits: first free physical slots. route()
    // guarantees n_logical <= n_physical, so a free slot always exists;
    // fall back to identity rather than aborting if that ever breaks.
    let mut free = (0..n_physical).filter(|&p| !used[p]);
    for slot in l2p.iter_mut() {
        if *slot == usize::MAX {
            match free.next() {
                Some(p) => *slot = p,
                None => return Mapping::identity(n_physical),
            }
        }
    }
    // Pad to a full permutation over physical qubits.
    let mut full = l2p;
    for p in free {
        full.push(p);
    }
    Mapping::from_l2p(full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxsim::StateVector;

    /// Applies only unitary gates of a program to a fresh state.
    fn run_gates(p: &Program, n: usize) -> StateVector {
        let mut s = StateVector::zero_state(n);
        for ins in p.flat_instructions() {
            if let Instruction::Gate(g) = ins {
                let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
                s.apply_gate(&g.kind, &idx);
            }
        }
        s
    }

    /// Permutes the basis of `state` so that physical basis bit
    /// `mapping.physical(l)` moves to logical bit `l`.
    fn unpermute(state: &StateVector, mapping: &Mapping) -> StateVector {
        let n = state.qubit_count();
        let mut amps = vec![cqasm::math::C64::ZERO; 1 << n];
        for (y, a) in state.amplitudes().iter().enumerate() {
            let mut x = 0usize;
            for l in 0..n {
                if (y >> mapping.physical(l)) & 1 == 1 {
                    x |= 1 << l;
                }
            }
            amps[x] = *a;
        }
        StateVector::from_amplitudes(amps)
    }

    fn assert_routing_preserves(p: &Program, topo: &Topology, placement: InitialPlacement) {
        let res = route(p, topo, placement).expect("routable");
        // Every two-qubit gate in the output is NN.
        for ins in res.program.flat_instructions() {
            if let Instruction::Gate(g) = ins {
                if g.qubits.len() == 2 {
                    assert!(
                        topo.are_adjacent(g.qubits[0].index(), g.qubits[1].index()),
                        "non-adjacent gate {ins} survived routing"
                    );
                }
            }
        }
        // Semantics preserved modulo the final permutation.
        let original = run_gates(p, topo.qubit_count());
        let routed = run_gates(&res.program, topo.qubit_count());
        let unrouted = unpermute(&routed, &res.final_mapping);
        let f = original.fidelity(&unrouted);
        assert!((f - 1.0).abs() < 1e-9, "routing changed semantics: {f}");
    }

    fn pad_program(p: Program, n: usize) -> Program {
        // Rebuild with a larger qubit count so logical space == physical.
        let mut out = Program::new(n);
        for s in p.subcircuits() {
            out.push_subcircuit(s.clone());
        }
        out
    }

    #[test]
    fn adjacent_gates_untouched() {
        let t = Topology::linear(3);
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .build();
        let res = route(&p, &t, InitialPlacement::Identity).unwrap();
        assert_eq!(res.swaps_inserted, 0);
    }

    #[test]
    fn distant_gate_gets_swaps_on_line() {
        let t = Topology::linear(4);
        let p = Program::builder(4).gate(GateKind::Cnot, &[0, 3]).build();
        let res = route(&p, &t, InitialPlacement::Identity).unwrap();
        assert_eq!(res.swaps_inserted, 2);
        assert_routing_preserves(&p, &t, InitialPlacement::Identity);
    }

    #[test]
    fn routing_preserves_semantics_on_grid() {
        let t = Topology::grid(2, 3);
        let p = pad_program(
            Program::builder(6)
                .gate(GateKind::H, &[0])
                .gate(GateKind::Cnot, &[0, 5])
                .gate(GateKind::Cnot, &[1, 4])
                .gate(GateKind::T, &[4])
                .gate(GateKind::Cnot, &[5, 2])
                .build(),
            6,
        );
        assert_routing_preserves(&p, &t, InitialPlacement::Identity);
        assert_routing_preserves(&p, &t, InitialPlacement::GreedyInteraction);
    }

    #[test]
    fn greedy_placement_reduces_swaps_for_clustered_interaction() {
        // Logical 0 and 5 interact heavily; identity placement on a line
        // pays a long path every time, greedy placement puts them together.
        let t = Topology::linear(6);
        let mut b = Program::builder(6).subcircuit("k");
        for _ in 0..5 {
            b = b.gate(GateKind::Cnot, &[0, 5]);
        }
        let p = b.build();
        let id = route(&p, &t, InitialPlacement::Identity).unwrap();
        let greedy = route(&p, &t, InitialPlacement::GreedyInteraction).unwrap();
        assert!(
            greedy.swaps_inserted < id.swaps_inserted,
            "greedy {} vs identity {}",
            greedy.swaps_inserted,
            id.swaps_inserted
        );
        assert_eq!(greedy.swaps_inserted, 0);
    }

    #[test]
    fn too_many_qubits_rejected() {
        let t = Topology::linear(2);
        let p = Program::builder(4).gate(GateKind::H, &[3]).build();
        assert!(matches!(
            route(&p, &t, InitialPlacement::Identity),
            Err(CompileError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn disconnected_topology_unroutable() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        let p = Program::builder(4).gate(GateKind::Cnot, &[0, 3]).build();
        assert!(matches!(
            route(&p, &t, InitialPlacement::Identity),
            Err(CompileError::Unroutable { .. })
        ));
    }

    #[test]
    fn toffoli_passes_on_fully_connected_only() {
        let p = Program::builder(3)
            .gate(GateKind::Toffoli, &[0, 1, 2])
            .build();
        assert!(route(
            &p,
            &Topology::fully_connected(3),
            InitialPlacement::Identity
        )
        .is_ok());
        assert!(matches!(
            route(&p, &Topology::linear(3), InitialPlacement::Identity),
            Err(CompileError::Unsupported { .. })
        ));
    }

    #[test]
    fn measurements_are_remapped() {
        let t = Topology::linear(3);
        let p = Program::builder(3)
            .gate(GateKind::Cnot, &[0, 2])
            .measure(0)
            .build();
        let res = route(&p, &t, InitialPlacement::Identity).unwrap();
        // Logical 0 moved to physical 1 by the single swap.
        assert_eq!(res.final_mapping.physical(0), 1);
        let measured: Vec<_> = res
            .program
            .flat_instructions()
            .filter_map(|i| match i {
                Instruction::Measure(q) => Some(q.index()),
                _ => None,
            })
            .collect();
        assert_eq!(measured, vec![1]);
    }

    #[test]
    fn conditional_bits_are_remapped_with_their_qubits() {
        // Logical q0 is measured, then q1 is conditionally flipped on b0.
        // Route with a non-identity placement: the bit operand must follow
        // the physical slot of logical 0, or feedback reads garbage.
        let t = Topology::linear(3);
        let mut p = Program::new(3);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[0]));
        s.push(Instruction::Measure(cqasm::Qubit(0)));
        s.push(Instruction::Cond(
            cqasm::Bit(0),
            GateApp::new(GateKind::X, vec![Qubit(1)]),
        ));
        p.push_subcircuit(s);
        // Force a permuted placement: logical 0 -> physical 2.
        let placement = Mapping::from_l2p(vec![2, 1, 0]);
        let mut mapping = placement.clone();
        let mut sub = cqasm::Subcircuit::new("routed");
        let mut swaps = 0;
        for ins in p.flat_instructions() {
            route_instruction(ins, &t, &mut mapping, &mut sub, &mut swaps).unwrap();
        }
        let cond = sub
            .instructions()
            .iter()
            .find_map(|i| match i {
                Instruction::Cond(b, g) => Some((b.index(), g.qubits[0].index())),
                _ => None,
            })
            .expect("conditional survives routing");
        assert_eq!(cond.0, 2, "bit must follow logical 0 to physical 2");
        assert_eq!(cond.1, 1, "target follows logical 1");
    }

    #[test]
    fn mapping_bookkeeping() {
        let mut m = Mapping::identity(3);
        m.swap_physical(0, 2);
        assert_eq!(m.physical(0), 2);
        assert_eq!(m.physical(2), 0);
        assert_eq!(m.logical(2), 0);
        assert_eq!(m.logical(0), 2);
        assert_eq!(m.physical(1), 1);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn mapping_rejects_non_permutation() {
        let _ = Mapping::from_l2p(vec![0, 0, 1]);
    }

    #[test]
    fn iterated_subcircuits_are_expanded() {
        let t = Topology::linear(3);
        let mut p = Program::new(3);
        let mut s = cqasm::Subcircuit::with_iterations("loop", 3);
        s.push(Instruction::gate(GateKind::Cnot, &[0, 2]));
        p.push_subcircuit(s);
        let res = route(&p, &t, InitialPlacement::Identity).unwrap();
        // Three CNOTs appear (plus swaps); iterations were expanded.
        let cnots = res
            .program
            .flat_instructions()
            .filter(|i| matches!(i, Instruction::Gate(g) if g.kind == GateKind::Cnot))
            .count();
        assert_eq!(cnots, 3);
        assert_eq!(res.program.subcircuits().len(), 1);
        assert_eq!(res.program.subcircuits()[0].iterations(), 1);
    }
}
