//! Compiler error type.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the OpenQL compiler passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A gate cannot be expressed in the target primitive gate set.
    Unsupported {
        /// The gate mnemonic.
        gate: String,
        /// The target gate-set name.
        target: String,
    },
    /// The program references more qubits than the platform provides.
    TooManyQubits {
        /// Qubits the program needs.
        needed: usize,
        /// Qubits the platform has.
        available: usize,
    },
    /// The router failed to connect two qubits (disconnected topology).
    Unroutable {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
    },
    /// The input program failed cQASM validation.
    InvalidProgram(String),
    /// A compiler pass reached a state that violates its own invariants
    /// (a compiler bug surfaced as a typed error instead of a panic).
    Internal(String),
    /// Differential verification found a pass that changed the circuit's
    /// semantics (see `openql::verify`).
    VerificationFailed {
        /// The pass that failed verification (e.g. `"decompose"`).
        pass: String,
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unsupported { gate, target } => {
                write!(
                    f,
                    "gate `{gate}` has no decomposition into gate set `{target}`"
                )
            }
            CompileError::TooManyQubits { needed, available } => write!(
                f,
                "program needs {needed} qubits but the platform provides {available}"
            ),
            CompileError::Unroutable { a, b } => {
                write!(f, "no routing path between physical qubits {a} and {b}")
            }
            CompileError::InvalidProgram(m) => write!(f, "invalid input program: {m}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
            CompileError::VerificationFailed { pass, detail } => {
                write!(
                    f,
                    "pass `{pass}` failed differential verification: {detail}"
                )
            }
        }
    }
}

impl StdError for CompileError {}

impl From<cqasm::Error> for CompileError {
    fn from(e: cqasm::Error) -> Self {
        CompileError::InvalidProgram(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = CompileError::Unsupported {
            gate: "toffoli".into(),
            target: "cz-basis".into(),
        };
        assert!(e.to_string().contains("toffoli"));
        let e = CompileError::TooManyQubits {
            needed: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
    }
}
