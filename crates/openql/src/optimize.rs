//! Peephole circuit optimisation.
//!
//! Cancels adjacent inverse pairs (`h h`, `cnot cnot`, ...), merges
//! same-axis rotation runs (`rz(a) rz(b) -> rz(a+b)`) and drops identity
//! operations. "Adjacent" means no intervening instruction touches any of
//! the operand qubits, so the pass is sound for straight-line code. Runs to
//! a fixed point.

use cqasm::{GateApp, GateKind, Instruction, Program};

/// Result summary of an optimisation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeReport {
    /// Gates removed by cancellation of inverse pairs.
    pub cancelled: usize,
    /// Rotation pairs merged into one gate.
    pub merged: usize,
    /// Identity / zero-angle gates dropped.
    pub dropped_identities: usize,
}

impl OptimizeReport {
    /// Total gates eliminated.
    pub fn total_removed(&self) -> usize {
        self.cancelled + self.merged + self.dropped_identities
    }
}

/// Optimises every subcircuit of `program`, returning the new program and a
/// report of what was removed.
pub fn optimize(program: &Program) -> (Program, OptimizeReport) {
    let mut out = Program::new(program.qubit_count());
    out.set_version(program.version());
    let mut report = OptimizeReport::default();
    for sub in program.subcircuits() {
        let mut new_sub = cqasm::Subcircuit::with_iterations(sub.name(), sub.iterations());
        let mut instrs = sub.instructions().to_vec();
        loop {
            let before = instrs.len();
            instrs = drop_identities(instrs, &mut report);
            instrs = peephole_pass(instrs, &mut report);
            if instrs.len() == before {
                break;
            }
        }
        new_sub.extend(instrs);
        out.push_subcircuit(new_sub);
    }
    (out, report)
}

fn is_identity_gate(kind: &GateKind) -> bool {
    match kind {
        GateKind::I => true,
        GateKind::Rx(a) | GateKind::Ry(a) | GateKind::Rz(a) | GateKind::Cr(a) => a.abs() < 1e-12,
        _ => false,
    }
}

fn drop_identities(instrs: Vec<Instruction>, report: &mut OptimizeReport) -> Vec<Instruction> {
    instrs
        .into_iter()
        .filter(|ins| {
            if let Instruction::Gate(g) = ins {
                if is_identity_gate(&g.kind) {
                    report.dropped_identities += 1;
                    return false;
                }
            }
            true
        })
        .collect()
}

/// Merge rule for two adjacent gates on identical operands.
enum Fusion {
    Cancel,
    Replace(GateKind),
    None,
}

fn fuse(a: &GateKind, b: &GateKind) -> Fusion {
    use GateKind::*;
    // Self-inverse pairs.
    let self_inverse = matches!(a, I | H | X | Y | Z | Cnot | Cz | Swap | Toffoli);
    if self_inverse && a == b {
        return Fusion::Cancel;
    }
    // Exact inverse pairs in the library.
    if a.dagger() == *b && matches!(a, S | Sdag | T | Tdag | X90 | Mx90 | Y90 | My90) {
        return Fusion::Cancel;
    }
    // Rotation merging.
    match (a, b) {
        (Rx(p), Rx(q)) => Fusion::Replace(Rx(p + q)),
        (Ry(p), Ry(q)) => Fusion::Replace(Ry(p + q)),
        (Rz(p), Rz(q)) => Fusion::Replace(Rz(p + q)),
        (Cr(p), Cr(q)) => Fusion::Replace(Cr(p + q)),
        (S, S) => Fusion::Replace(Z),
        (T, T) => Fusion::Replace(S),
        (Tdag, Tdag) => Fusion::Replace(Sdag),
        _ => Fusion::None,
    }
}

fn peephole_pass(instrs: Vec<Instruction>, report: &mut OptimizeReport) -> Vec<Instruction> {
    let mut out: Vec<Instruction> = Vec::with_capacity(instrs.len());
    'next: for ins in instrs {
        let Instruction::Gate(ref g) = ins else {
            out.push(ins);
            continue;
        };
        // Walk backwards over emitted instructions: we may fuse with the
        // most recent gate on exactly the same operands, provided nothing
        // in between touches any of those qubits.
        for i in (0..out.len()).rev() {
            let prev = &out[i];
            let overlap = prev.qubits().iter().any(|q| g.qubits.contains(q))
                || matches!(prev, Instruction::MeasureAll);
            if !overlap {
                continue;
            }
            if let Instruction::Gate(pg) = prev {
                if pg.qubits == g.qubits {
                    match fuse(&pg.kind, &g.kind) {
                        Fusion::Cancel => {
                            out.remove(i);
                            report.cancelled += 2;
                            continue 'next;
                        }
                        Fusion::Replace(kind) => {
                            if is_identity_gate(&kind) {
                                out.remove(i);
                                report.cancelled += 2;
                            } else {
                                let qubits = pg.qubits.clone();
                                out[i] = Instruction::Gate(GateApp::new(kind, qubits));
                                report.merged += 1;
                            }
                            continue 'next;
                        }
                        Fusion::None => {}
                    }
                }
            }
            // Blocking instruction found; stop searching.
            break;
        }
        out.push(ins);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqasm::Program;

    fn gates_of(p: &Program) -> usize {
        p.stats().gates
    }

    #[test]
    fn cancels_adjacent_hadamards() {
        let p = Program::builder(1)
            .gate(GateKind::H, &[0])
            .gate(GateKind::H, &[0])
            .build();
        let (o, r) = optimize(&p);
        assert_eq!(gates_of(&o), 0);
        assert_eq!(r.cancelled, 2);
    }

    #[test]
    fn cancels_cnot_pair() {
        let p = Program::builder(2)
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::Cnot, &[0, 1])
            .build();
        let (o, _) = optimize(&p);
        assert_eq!(gates_of(&o), 0);
    }

    #[test]
    fn does_not_cancel_cnot_with_swapped_operands() {
        let p = Program::builder(2)
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::Cnot, &[1, 0])
            .build();
        let (o, _) = optimize(&p);
        assert_eq!(gates_of(&o), 2);
    }

    #[test]
    fn merges_rotations() {
        let p = Program::builder(1)
            .gate(GateKind::Rz(0.3), &[0])
            .gate(GateKind::Rz(0.4), &[0])
            .build();
        let (o, r) = optimize(&p);
        assert_eq!(gates_of(&o), 1);
        assert_eq!(r.merged, 1);
        let first = o.flat_instructions().next().unwrap().clone();
        match first {
            Instruction::Gate(g) => {
                assert!((g.kind.angle().unwrap() - 0.7).abs() < 1e-12)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn opposite_rotations_cancel_fully() {
        let p = Program::builder(1)
            .gate(GateKind::Rx(0.9), &[0])
            .gate(GateKind::Rx(-0.9), &[0])
            .build();
        let (o, _) = optimize(&p);
        assert_eq!(gates_of(&o), 0);
    }

    #[test]
    fn intervening_gate_on_same_qubit_blocks_fusion() {
        let p = Program::builder(1)
            .gate(GateKind::H, &[0])
            .gate(GateKind::X, &[0])
            .gate(GateKind::H, &[0])
            .build();
        let (o, _) = optimize(&p);
        assert_eq!(gates_of(&o), 3);
    }

    #[test]
    fn gate_on_other_qubit_does_not_block() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::X, &[1])
            .gate(GateKind::H, &[0])
            .build();
        let (o, _) = optimize(&p);
        // The two Hadamards cancel; the X remains.
        assert_eq!(gates_of(&o), 1);
    }

    #[test]
    fn measurement_blocks_fusion() {
        let p = Program::builder(1)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::H, &[0])
            .build();
        let (o, _) = optimize(&p);
        assert_eq!(gates_of(&o), 2);
    }

    #[test]
    fn t_t_becomes_s_then_cancels_with_sdag() {
        let p = Program::builder(1)
            .gate(GateKind::T, &[0])
            .gate(GateKind::T, &[0])
            .gate(GateKind::Sdag, &[0])
            .build();
        let (o, _) = optimize(&p);
        assert_eq!(gates_of(&o), 0);
    }

    #[test]
    fn drops_identity_and_zero_rotations() {
        let p = Program::builder(1)
            .gate(GateKind::I, &[0])
            .gate(GateKind::Rz(0.0), &[0])
            .gate(GateKind::X, &[0])
            .build();
        let (o, r) = optimize(&p);
        assert_eq!(gates_of(&o), 1);
        assert_eq!(r.dropped_identities, 2);
    }

    #[test]
    fn cascading_cancellation() {
        // x h h x -> x x -> (empty)
        let p = Program::builder(1)
            .gate(GateKind::X, &[0])
            .gate(GateKind::H, &[0])
            .gate(GateKind::H, &[0])
            .gate(GateKind::X, &[0])
            .build();
        let (o, _) = optimize(&p);
        assert_eq!(gates_of(&o), 0);
    }

    #[test]
    fn preserves_semantics_on_random_circuits() {
        use qxsim::StateVector;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let kinds = [
            GateKind::H,
            GateKind::X,
            GateKind::T,
            GateKind::Tdag,
            GateKind::S,
            GateKind::Rz(0.4),
            GateKind::Rx(-0.4),
        ];
        for _ in 0..20 {
            let mut b = Program::builder(3).subcircuit("r");
            for _ in 0..30 {
                let k = kinds[rng.gen_range(0..kinds.len())];
                let q = rng.gen_range(0..3);
                b = b.gate(k, &[q]);
                if rng.gen_bool(0.3) {
                    let a = rng.gen_range(0..3usize);
                    let c = (a + 1 + rng.gen_range(0..2usize)) % 3;
                    b = b.gate(GateKind::Cnot, &[a, c]);
                }
            }
            let p = b.build();
            let (o, _) = optimize(&p);
            let mut sa = StateVector::zero_state(3);
            let mut sb = StateVector::zero_state(3);
            for ins in p.flat_instructions() {
                if let Instruction::Gate(g) = ins {
                    let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
                    sa.apply_gate(&g.kind, &idx);
                }
            }
            for ins in o.flat_instructions() {
                if let Instruction::Gate(g) = ins {
                    let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
                    sb.apply_gate(&g.kind, &idx);
                }
            }
            let f = sa.fidelity(&sb);
            assert!((f - 1.0).abs() < 1e-9, "optimizer broke circuit: {f}");
        }
    }
}
