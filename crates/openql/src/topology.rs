//! Qubit-plane topologies and shortest-path queries.
//!
//! Real quantum devices impose nearest-neighbour (NN) constraints (§2.6 of
//! the paper): two-qubit gates require adjacent qubits. The topology tells
//! the mapper which physical qubits interact and how far apart any two
//! qubits are.

use std::collections::VecDeque;

/// An undirected connectivity graph over physical qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    qubit_count: usize,
    /// Adjacency lists, sorted.
    adjacency: Vec<Vec<usize>>,
    name: String,
}

impl Topology {
    /// Builds a topology from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= qubit_count` or is a
    /// self-loop.
    pub fn from_edges(qubit_count: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); qubit_count];
        for &(a, b) in edges {
            assert!(a < qubit_count && b < qubit_count, "edge out of range");
            assert_ne!(a, b, "self-loop edge");
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        for l in &mut adjacency {
            l.sort_unstable();
        }
        Topology {
            qubit_count,
            adjacency,
            name: "custom".to_owned(),
        }
    }

    /// A 1-D chain `0 - 1 - ... - (n-1)`.
    pub fn linear(n: usize) -> Self {
        let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        let mut t = Topology::from_edges(n, &edges);
        t.name = format!("linear-{n}");
        t
    }

    /// A 2-D grid with nearest-neighbour connectivity — the layout the
    /// paper names as what "most current quantum technologies" pursue.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    edges.push((i, i + 1));
                }
                if r + 1 < rows {
                    edges.push((i, i + cols));
                }
            }
        }
        let mut t = Topology::from_edges(n, &edges);
        t.name = format!("grid-{rows}x{cols}");
        t
    }

    /// All-to-all connectivity (perfect qubits with no NN constraint).
    pub fn fully_connected(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        let mut t = Topology::from_edges(n, &edges);
        t.name = format!("full-{n}");
        t
    }

    /// Number of physical qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubit_count
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Neighbours of qubit `q`, sorted.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Whether `a` and `b` are directly connected.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// All edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for (a, nbrs) in self.adjacency.iter().enumerate() {
            for &b in nbrs {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// BFS hop distance between two qubits, or `None` if disconnected.
    ///
    /// Adjacent qubits short-circuit to 1 without a BFS: on dense
    /// (all-to-all) platforms the mapper probes distances for every
    /// candidate placement, and the O(V+E) BFS per probe made wide
    /// circuits quadratically slow to map.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        if self.are_adjacent(a, b) {
            return Some(1);
        }
        self.shortest_path(a, b).map(|p| p.len() - 1)
    }

    /// A shortest path from `a` to `b` inclusive, or `None` if disconnected.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a == b {
            return Some(vec![a]);
        }
        if self.are_adjacent(a, b) {
            return Some(vec![a, b]);
        }
        let mut prev = vec![usize::MAX; self.qubit_count];
        let mut queue = VecDeque::new();
        prev[a] = a;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if prev[v] == usize::MAX {
                    prev[v] = u;
                    if v == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Whether the graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.qubit_count == 0 {
            return true;
        }
        let mut seen = vec![false; self.qubit_count];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.qubit_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_adjacency() {
        let t = Topology::linear(4);
        assert!(t.are_adjacent(0, 1));
        assert!(t.are_adjacent(2, 3));
        assert!(!t.are_adjacent(0, 2));
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.distance(0, 3), Some(3));
    }

    #[test]
    fn grid_structure() {
        let t = Topology::grid(3, 3);
        assert_eq!(t.qubit_count(), 9);
        assert_eq!(t.edge_count(), 12);
        // Centre qubit (index 4) has 4 neighbours.
        assert_eq!(t.neighbors(4), &[1, 3, 5, 7]);
        // Corner has 2.
        assert_eq!(t.neighbors(0), &[1, 3]);
        assert_eq!(t.distance(0, 8), Some(4));
    }

    #[test]
    fn fully_connected_distance_is_one() {
        let t = Topology::fully_connected(5);
        assert_eq!(t.edge_count(), 10);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert_eq!(t.distance(a, b), Some(1));
                }
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_steps() {
        let t = Topology::grid(2, 3);
        let p = t.shortest_path(0, 5).expect("connected");
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 5);
        for w in p.windows(2) {
            assert!(t.are_adjacent(w[0], w[1]));
        }
        assert_eq!(p.len() - 1, 3);
    }

    #[test]
    fn disconnected_graph() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
        assert_eq!(t.distance(0, 3), None);
        assert!(Topology::linear(4).is_connected());
    }

    #[test]
    fn path_to_self() {
        let t = Topology::linear(3);
        assert_eq!(t.shortest_path(1, 1), Some(vec![1]));
        assert_eq!(t.distance(1, 1), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edge() {
        let _ = Topology::from_edges(2, &[(0, 5)]);
    }
}
