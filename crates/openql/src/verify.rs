//! Differential verification of compiler passes.
//!
//! Every OpenQL pass (decompose, optimize, map/route, schedule) claims to
//! preserve circuit semantics. For circuits of up to [`MAX_VERIFY_QUBITS`]
//! qubits this module *checks* that claim by brute force: the unitary of
//! the before- and after-programs is extracted column by column (applying
//! the gate prefix to every computational basis state) and the two
//! matrices compared up to a single global phase. Routing additionally
//! permutes qubits, so the routed comparison threads the input basis
//! through the initial placement and decodes the output through the final
//! mapping.
//!
//! The checks run when [`crate::Compiler::with_verification`] is enabled
//! and silently skip shapes they cannot decide (too many qubits,
//! mid-circuit measurement, conditional gates): verification never
//! rejects a program it cannot model, it only rejects proven divergence.

use crate::error::CompileError;
use crate::map::Mapping;
use cqasm::math::C64;
use cqasm::{Instruction, Program};
use qxsim::StateVector;

/// Largest circuit verified exhaustively: 2^8 columns of 2^8 amplitudes
/// is the point where verification stays cheap next to compilation.
pub const MAX_VERIFY_QUBITS: usize = 8;

/// Absolute tolerance on amplitude mismatch after phase alignment.
const TOL: f64 = 1e-6;

/// Whether a program has the shape the verifier can decide: at most
/// [`MAX_VERIFY_QUBITS`] qubits and a unitary body (gates, bundles,
/// waits, displays) followed by an optional trailing measurement suffix.
/// Mid-circuit measurement, `prep_z` and conditional gates are
/// non-unitary control flow the unitary extractor cannot model.
pub fn verifiable(program: &Program) -> bool {
    let n = program.qubit_count();
    if n == 0 || n > MAX_VERIFY_QUBITS {
        return false;
    }
    let mut measuring = false;
    for ins in program.flat_instructions() {
        if !shape_ok(ins, &mut measuring) {
            return false;
        }
    }
    true
}

fn shape_ok(ins: &Instruction, measuring: &mut bool) -> bool {
    match ins {
        Instruction::Measure(_) | Instruction::MeasureAll => {
            *measuring = true;
            true
        }
        Instruction::Gate(_) => !*measuring,
        Instruction::Bundle(instrs) => instrs.iter().all(|i| shape_ok(i, measuring)),
        Instruction::Wait(_) | Instruction::Display => true,
        Instruction::PrepZ(_) | Instruction::Cond(_, _) => false,
    }
}

/// Applies the unitary (gate) prefix of `program` to `state`.
fn apply_gates(program: &Program, state: &mut StateVector) {
    for ins in program.flat_instructions() {
        apply_ins(ins, state);
    }
}

fn apply_ins(ins: &Instruction, state: &mut StateVector) {
    match ins {
        Instruction::Gate(g) => {
            let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
            state.apply_gate(&g.kind, &idx);
        }
        Instruction::Bundle(instrs) => {
            for inner in instrs {
                apply_ins(inner, state);
            }
        }
        _ => {}
    }
}

/// The circuit unitary as columns: column `x` is the state the program
/// maps basis state `|x>` to.
fn unitary_columns(program: &Program, n: usize) -> Vec<Vec<C64>> {
    let dim = 1usize << n;
    (0..dim)
        .map(|x| {
            let mut s = StateVector::basis_state(n, x as u64);
            apply_gates(program, &mut s);
            s.amplitudes().to_vec()
        })
        .collect()
}

/// Compares two unitaries (as columns) up to one global phase, via the
/// Frobenius inner product `z = tr(A† B)`: for `B = e^{iθ} A` the product
/// has `|z| = dim`, and the aligned matrices must then match elementwise.
fn same_up_to_global_phase(a: &[Vec<C64>], b: &[Vec<C64>], dim: usize) -> Result<(), String> {
    let mut z = C64::ZERO;
    for (ca, cb) in a.iter().zip(b) {
        for (&ea, &eb) in ca.iter().zip(cb) {
            z += ea.conj() * eb;
        }
    }
    let mag = z.abs();
    if (mag - dim as f64).abs() > TOL * dim as f64 {
        return Err(format!(
            "Frobenius overlap |tr(A†B)| = {mag:.6}, expected {dim} (unitaries differ)"
        ));
    }
    let phase = z * (1.0 / mag);
    for (x, (ca, cb)) in a.iter().zip(b).enumerate() {
        for (row, (&ea, &eb)) in ca.iter().zip(cb).enumerate() {
            let d = (eb - phase * ea).abs();
            if d > TOL {
                return Err(format!(
                    "amplitude ({row}, {x}) differs by {d:.2e} after phase alignment"
                ));
            }
        }
    }
    Ok(())
}

/// Verifies that `after` implements the same unitary as `before` (up to
/// global phase). Returns `Ok(true)` when the check ran and passed,
/// `Ok(false)` when either program is outside the verifiable shape.
///
/// # Errors
///
/// [`CompileError::VerificationFailed`] naming `pass` when the circuits
/// provably diverge.
pub fn verify_pass(before: &Program, after: &Program, pass: &str) -> Result<bool, CompileError> {
    if before.qubit_count() != after.qubit_count() || !verifiable(before) || !verifiable(after) {
        return Ok(false);
    }
    let n = before.qubit_count();
    let ua = unitary_columns(before, n);
    let ub = unitary_columns(after, n);
    same_up_to_global_phase(&ua, &ub, 1 << n).map_err(|detail| {
        CompileError::VerificationFailed {
            pass: pass.to_owned(),
            detail,
        }
    })?;
    Ok(true)
}

/// Verifies a routed program against its pre-routing original, threading
/// the basis through the router's qubit permutations: input basis bits
/// enter at their `initial` physical positions and output amplitudes are
/// decoded through `final_mapping`. The before-program may address fewer
/// (logical) qubits than the routed (physical) program; extra physical
/// qubits must act as identity.
///
/// # Errors
///
/// [`CompileError::VerificationFailed`] naming `pass` on divergence.
pub fn verify_routed_pass(
    before: &Program,
    after: &Program,
    initial: &Mapping,
    final_mapping: &Mapping,
    pass: &str,
) -> Result<bool, CompileError> {
    let n_phys = after.qubit_count();
    if before.qubit_count() > n_phys
        || n_phys == 0
        || n_phys > MAX_VERIFY_QUBITS
        || initial.len() != n_phys
        || final_mapping.len() != n_phys
        || !verifiable(before)
        || !verifiable(after)
    {
        return Ok(false);
    }
    let dim = 1usize << n_phys;
    // Reference: the logical program acting on bit l = logical qubit l,
    // padded with identity on the extra physical qubits.
    let ua = unitary_columns(before, n_phys);
    // Routed: encode basis x through the initial placement, run, decode
    // through the final mapping.
    let ub: Vec<Vec<C64>> = (0..dim)
        .map(|x| {
            let mut y0 = 0u64;
            for l in 0..n_phys {
                if (x >> l) & 1 == 1 {
                    y0 |= 1 << initial.physical(l);
                }
            }
            let mut s = StateVector::basis_state(n_phys, y0);
            apply_gates(after, &mut s);
            let mut decoded = vec![C64::ZERO; dim];
            for (y, &a) in s.amplitudes().iter().enumerate() {
                let mut xl = 0usize;
                for l in 0..n_phys {
                    if (y >> final_mapping.physical(l)) & 1 == 1 {
                        xl |= 1 << l;
                    }
                }
                decoded[xl] = a;
            }
            decoded
        })
        .collect();
    same_up_to_global_phase(&ua, &ub, dim).map_err(|detail| CompileError::VerificationFailed {
        pass: pass.to_owned(),
        detail,
    })?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{route, InitialPlacement};
    use crate::topology::Topology;
    use cqasm::GateKind;

    #[test]
    fn identical_programs_verify() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build();
        assert_eq!(verify_pass(&p, &p, "noop"), Ok(true));
    }

    #[test]
    fn global_phase_is_ignored() {
        // S and T² differ from rz-based forms only by global phase; use
        // Z = S·S versus rz(π) which differ by e^{iπ/2}.
        let a = Program::builder(1).gate(GateKind::Z, &[0]).build();
        let b = Program::builder(1)
            .gate(GateKind::Rz(std::f64::consts::PI), &[0])
            .build();
        assert_eq!(verify_pass(&a, &b, "phase"), Ok(true));
    }

    #[test]
    fn divergent_programs_fail_with_pass_name() {
        let a = Program::builder(1).gate(GateKind::X, &[0]).build();
        let b = Program::builder(1).gate(GateKind::Y, &[0]).build();
        match verify_pass(&a, &b, "optimize") {
            Err(CompileError::VerificationFailed { pass, .. }) => assert_eq!(pass, "optimize"),
            other => panic!("expected VerificationFailed, got {other:?}"),
        }
    }

    #[test]
    fn x_and_y_differ_even_up_to_phase() {
        // X = e^{iθ}Y has no solution; the Frobenius check must say so.
        let a = Program::builder(1).gate(GateKind::X, &[0]).build();
        let b = Program::builder(1).gate(GateKind::Y, &[0]).build();
        assert!(verify_pass(&a, &b, "p").is_err());
    }

    #[test]
    fn unverifiable_shapes_are_skipped_not_failed() {
        let measured_mid = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::X, &[1])
            .build();
        let same = measured_mid.clone();
        assert_eq!(verify_pass(&measured_mid, &same, "p"), Ok(false));
        let big = Program::builder(9).gate(GateKind::H, &[0]).build();
        assert_eq!(verify_pass(&big, &big, "p"), Ok(false));
    }

    #[test]
    fn routed_program_verifies_through_permutations() {
        let t = Topology::linear(4);
        let p = Program::builder(4)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 3]) // needs routing on a line
            .gate(GateKind::Cnot, &[1, 2])
            .measure_all()
            .build();
        for placement in [
            InitialPlacement::Identity,
            InitialPlacement::GreedyInteraction,
        ] {
            let res = route(&p, &t, placement).unwrap();
            assert!(res.swaps_inserted > 0 || placement == InitialPlacement::GreedyInteraction);
            assert_eq!(
                verify_routed_pass(&p, &res.program, &res.initial, &res.final_mapping, "map"),
                Ok(true),
                "{placement:?}"
            );
        }
    }

    #[test]
    fn routed_verification_detects_wrong_mapping() {
        let t = Topology::linear(3);
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 2])
            .build();
        let res = route(&p, &t, InitialPlacement::Identity).unwrap();
        // Lying about the final mapping must be caught (the router really
        // swapped, so pretending it did not changes the decoded unitary).
        let wrong = Mapping::identity(3);
        if res.final_mapping != wrong {
            assert!(
                verify_routed_pass(&p, &res.program, &res.initial, &wrong, "map").is_err(),
                "wrong mapping accepted"
            );
        }
    }
}
