//! Differential verification of compiler passes.
//!
//! Every OpenQL pass (decompose, optimize, map/route, schedule) claims to
//! preserve circuit semantics. For circuits of up to [`MAX_VERIFY_QUBITS`]
//! qubits this module *checks* that claim by brute force: the unitary of
//! the before- and after-programs is extracted column by column (applying
//! the gate prefix to every computational basis state) and the two
//! matrices compared up to a single global phase. Routing additionally
//! permutes qubits, so the routed comparison threads the input basis
//! through the initial placement and decodes the output through the final
//! mapping.
//!
//! Programs containing mid-circuit measurement and conditional gates
//! (`Cond`) are *not* unitary, but they are still checkable: the classical
//! record partitions the evolution into branches. The program is sliced at
//! its measurement events, every assignment of measurement outcomes is
//! enumerated, and for each assignment the branch operator — gate
//! unitaries interleaved with (unnormalised) outcome projectors, with each
//! conditional gate applied exactly when its recorded bit is one — is
//! compared column by column. Branches are distinguished by their recorded
//! classical outcomes, so each branch may carry its own phase.
//!
//! The checks run when [`crate::Compiler::with_verification`] is enabled
//! and silently skip shapes they cannot decide (too many qubits, `prep_z`,
//! measurement skeletons that disagree): verification never rejects a
//! program it cannot model, it only rejects proven divergence.

use crate::error::CompileError;
use crate::map::Mapping;
use cqasm::math::C64;
use cqasm::{GateKind, GateUnitary, Instruction, Program};
use qxsim::StateVector;

/// Largest circuit verified exhaustively: 2^8 columns of 2^8 amplitudes
/// is the point where verification stays cheap next to compilation.
pub const MAX_VERIFY_QUBITS: usize = 8;

/// Largest number of recorded measurement outcomes the branch verifier
/// enumerates (2^bits branches).
pub const MAX_BRANCH_BITS: usize = 8;

/// Caps total branch-verification work: `branches * dim * dim` (columns
/// times amplitudes per branch) must stay below this, so a wide circuit
/// cannot combine with a long measurement record into a multi-second
/// check.
const MAX_BRANCH_WORK: usize = 1 << 20;

/// Absolute tolerance on amplitude mismatch after phase alignment.
const TOL: f64 = 1e-6;

/// Whether a program has the shape the verifier can decide: at most
/// [`MAX_VERIFY_QUBITS`] qubits and a unitary body (gates, bundles,
/// waits, displays) followed by an optional trailing measurement suffix.
/// Mid-circuit measurement, `prep_z` and conditional gates are
/// non-unitary control flow the unitary extractor cannot model.
pub fn verifiable(program: &Program) -> bool {
    let n = program.qubit_count();
    if n == 0 || n > MAX_VERIFY_QUBITS {
        return false;
    }
    let mut measuring = false;
    for ins in program.flat_instructions() {
        if !shape_ok(ins, &mut measuring) {
            return false;
        }
    }
    true
}

fn shape_ok(ins: &Instruction, measuring: &mut bool) -> bool {
    match ins {
        Instruction::Measure(_) | Instruction::MeasureAll => {
            *measuring = true;
            true
        }
        Instruction::Gate(_) => !*measuring,
        Instruction::Bundle(instrs) => instrs.iter().all(|i| shape_ok(i, measuring)),
        Instruction::Wait(_) | Instruction::Display => true,
        Instruction::PrepZ(_) | Instruction::Cond(_, _) => false,
    }
}

/// Applies the unitary (gate) prefix of `program` to `state`.
fn apply_gates(program: &Program, state: &mut StateVector) {
    for ins in program.flat_instructions() {
        apply_ins(ins, state);
    }
}

fn apply_ins(ins: &Instruction, state: &mut StateVector) {
    match ins {
        Instruction::Gate(g) => {
            let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
            state.apply_gate(&g.kind, &idx);
        }
        Instruction::Bundle(instrs) => {
            for inner in instrs {
                apply_ins(inner, state);
            }
        }
        _ => {}
    }
}

/// The circuit unitary as columns: column `x` is the state the program
/// maps basis state `|x>` to.
fn unitary_columns(program: &Program, n: usize) -> Vec<Vec<C64>> {
    let dim = 1usize << n;
    (0..dim)
        .map(|x| {
            let mut s = StateVector::basis_state(n, x as u64);
            apply_gates(program, &mut s);
            s.amplitudes().to_vec()
        })
        .collect()
}

/// Compares two unitaries (as columns) up to one global phase, via the
/// Frobenius inner product `z = tr(A† B)`: for `B = e^{iθ} A` the product
/// has `|z| = dim`, and the aligned matrices must then match elementwise.
fn same_up_to_global_phase(a: &[Vec<C64>], b: &[Vec<C64>], dim: usize) -> Result<(), String> {
    let mut z = C64::ZERO;
    for (ca, cb) in a.iter().zip(b) {
        for (&ea, &eb) in ca.iter().zip(cb) {
            z += ea.conj() * eb;
        }
    }
    let mag = z.abs();
    if (mag - dim as f64).abs() > TOL * dim as f64 {
        return Err(format!(
            "Frobenius overlap |tr(A†B)| = {mag:.6}, expected {dim} (unitaries differ)"
        ));
    }
    let phase = z * (1.0 / mag);
    for (x, (ca, cb)) in a.iter().zip(b).enumerate() {
        for (row, (&ea, &eb)) in ca.iter().zip(cb).enumerate() {
            let d = (eb - phase * ea).abs();
            if d > TOL {
                return Err(format!(
                    "amplitude ({row}, {x}) differs by {d:.2e} after phase alignment"
                ));
            }
        }
    }
    Ok(())
}

/// One event of a branch-verifiable program: a plain gate, a
/// bit-conditioned gate, or a measurement event (a maximal consecutive run
/// of `measure`/`measure_all`, with the measured qubits sorted and
/// deduplicated — re-measuring a qubit in the same run is idempotent).
enum Ev {
    Gate(GateKind, Vec<usize>),
    Cond(usize, GateKind, Vec<usize>),
    Meas(Vec<usize>),
}

/// Slices `program` into branch events, or `None` when it contains an
/// instruction the branch verifier cannot model (`prep_z`).
fn branch_events(program: &Program) -> Option<Vec<Ev>> {
    let mut evs = Vec::new();
    let n = program.qubit_count();
    for ins in program.flat_instructions() {
        if !collect_ev(ins, n, &mut evs) {
            return None;
        }
    }
    Some(evs)
}

fn collect_ev(ins: &Instruction, n: usize, evs: &mut Vec<Ev>) -> bool {
    match ins {
        Instruction::Gate(g) => {
            let idx = g.qubits.iter().map(|q| q.index()).collect();
            evs.push(Ev::Gate(g.kind, idx));
            true
        }
        Instruction::Cond(bit, g) => {
            let idx = g.qubits.iter().map(|q| q.index()).collect();
            evs.push(Ev::Cond(bit.index(), g.kind, idx));
            true
        }
        Instruction::Measure(q) => {
            push_meas(evs, &[q.index()]);
            true
        }
        Instruction::MeasureAll => {
            push_meas(evs, &(0..n).collect::<Vec<_>>());
            true
        }
        Instruction::Bundle(instrs) => instrs.iter().all(|i| collect_ev(i, n, evs)),
        Instruction::Wait(_) | Instruction::Display => true,
        Instruction::PrepZ(_) => false,
    }
}

fn push_meas(evs: &mut Vec<Ev>, qs: &[usize]) {
    if let Some(Ev::Meas(run)) = evs.last_mut() {
        run.extend_from_slice(qs);
        run.sort_unstable();
        run.dedup();
    } else {
        let mut run = qs.to_vec();
        run.sort_unstable();
        run.dedup();
        evs.push(Ev::Meas(run));
    }
}

/// The measurement skeleton: the ordered list of measurement events. Two
/// programs are branch-comparable only when their skeletons agree, which
/// gives every (event, qubit) pair the same outcome slot on both sides.
fn skeleton(evs: &[Ev]) -> Vec<&[usize]> {
    evs.iter()
        .filter_map(|ev| match ev {
            Ev::Meas(qs) => Some(qs.as_slice()),
            _ => None,
        })
        .collect()
}

/// Applies a gate's dense unitary to raw amplitudes. Deliberately
/// independent of the simulator's specialised kernels: the verifier is its
/// own oracle.
fn apply_unitary(amps: &mut [C64], kind: &GateKind, qs: &[usize]) {
    match kind.unitary() {
        GateUnitary::One(m) => {
            let mask = 1usize << qs[0];
            for i in 0..amps.len() {
                if i & mask == 0 {
                    let a0 = amps[i];
                    let a1 = amps[i | mask];
                    amps[i] = m.0[0][0] * a0 + m.0[0][1] * a1;
                    amps[i | mask] = m.0[1][0] * a0 + m.0[1][1] * a1;
                }
            }
        }
        GateUnitary::Two(m) => {
            // First operand is the most significant basis bit.
            let hi = 1usize << qs[0];
            let lo = 1usize << qs[1];
            for i in 0..amps.len() {
                if i & hi == 0 && i & lo == 0 {
                    let idx = [i, i | lo, i | hi, i | hi | lo];
                    let v = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
                    for (r, &j) in idx.iter().enumerate() {
                        amps[j] = m.0[r][0] * v[0]
                            + m.0[r][1] * v[1]
                            + m.0[r][2] * v[2]
                            + m.0[r][3] * v[3];
                    }
                }
            }
        }
        GateUnitary::ControlledControlled(m) => {
            let ctrl = (1usize << qs[0]) | (1usize << qs[1]);
            let tgt = 1usize << qs[2];
            for i in 0..amps.len() {
                if i & ctrl == ctrl && i & tgt == 0 {
                    let a0 = amps[i];
                    let a1 = amps[i | tgt];
                    amps[i] = m.0[0][0] * a0 + m.0[0][1] * a1;
                    amps[i | tgt] = m.0[1][0] * a0 + m.0[1][1] * a1;
                }
            }
        }
    }
}

/// Builds the columns of one branch operator: for each basis input, run
/// the events with the measurement outcomes fixed by `outcomes` (bit `s`
/// of `outcomes` is the outcome of slot `s`). Projectors zero the
/// non-matching amplitudes *without* renormalising, so a column's norm is
/// the amplitude of that classical record — dead branches come out as
/// zero columns on both sides and compare equal.
fn branch_columns(evs: &[Ev], n: usize, outcomes: u64) -> Vec<Vec<C64>> {
    let dim = 1usize << n;
    (0..dim)
        .map(|x| {
            let mut amps = vec![C64::ZERO; dim];
            amps[x] = C64::ONE;
            let mut bits = vec![false; n];
            let mut slot = 0u32;
            for ev in evs {
                match ev {
                    Ev::Gate(kind, qs) => apply_unitary(&mut amps, kind, qs),
                    Ev::Cond(bit, kind, qs) => {
                        if bits[*bit] {
                            apply_unitary(&mut amps, kind, qs);
                        }
                    }
                    Ev::Meas(qs) => {
                        for &q in qs {
                            let one = (outcomes >> slot) & 1 == 1;
                            slot += 1;
                            let mask = 1usize << q;
                            for (i, a) in amps.iter_mut().enumerate() {
                                if (i & mask != 0) != one {
                                    *a = C64::ZERO;
                                }
                            }
                            bits[q] = one;
                        }
                    }
                }
            }
            amps
        })
        .collect()
}

/// Compares two branch operators (as columns) up to one phase, tolerating
/// the unnormalised norms: `A` and `B` agree when `‖A‖ = ‖B‖`, the
/// Frobenius overlap saturates `|tr(A†B)| = ‖A‖·‖B‖`, and the
/// phase-aligned entries match. Two (near-)zero operators are a dead
/// branch and agree trivially.
fn same_branch_up_to_phase(a: &[Vec<C64>], b: &[Vec<C64>], dim: usize) -> Result<(), String> {
    let norm = |m: &[Vec<C64>]| -> f64 {
        m.iter()
            .flat_map(|c| c.iter())
            .map(|e| e.abs() * e.abs())
            .sum::<f64>()
            .sqrt()
    };
    let na = norm(a);
    let nb = norm(b);
    if na < TOL && nb < TOL {
        return Ok(());
    }
    if (na - nb).abs() > TOL * dim as f64 {
        return Err(format!("branch operator norms differ: {na:.6} vs {nb:.6}"));
    }
    let mut z = C64::ZERO;
    for (ca, cb) in a.iter().zip(b) {
        for (&ea, &eb) in ca.iter().zip(cb) {
            z += ea.conj() * eb;
        }
    }
    let mag = z.abs();
    if (mag - na * nb).abs() > TOL * dim as f64 {
        return Err(format!(
            "Frobenius overlap |tr(A†B)| = {mag:.6}, expected {:.6} (branch operators differ)",
            na * nb
        ));
    }
    let phase = if mag > TOL { z * (1.0 / mag) } else { C64::ONE };
    for (x, (ca, cb)) in a.iter().zip(b).enumerate() {
        for (row, (&ea, &eb)) in ca.iter().zip(cb).enumerate() {
            let d = (eb - phase * ea).abs();
            if d > TOL {
                return Err(format!(
                    "amplitude ({row}, {x}) differs by {d:.2e} after phase alignment"
                ));
            }
        }
    }
    Ok(())
}

/// Branch verification for non-unitary programs: slice both programs at
/// their measurement events, require equal skeletons, and compare the
/// branch operator for every assignment of measurement outcomes.
fn verify_branches(before: &Program, after: &Program, pass: &str) -> Result<bool, CompileError> {
    let n = before.qubit_count();
    if n == 0 || n > MAX_VERIFY_QUBITS {
        return Ok(false);
    }
    let (Some(ea), Some(eb)) = (branch_events(before), branch_events(after)) else {
        return Ok(false);
    };
    if skeleton(&ea) != skeleton(&eb) {
        return Ok(false);
    }
    let bits: usize = skeleton(&ea).iter().map(|qs| qs.len()).sum();
    let dim = 1usize << n;
    if bits > MAX_BRANCH_BITS || (1usize << bits).saturating_mul(dim * dim) > MAX_BRANCH_WORK {
        return Ok(false);
    }
    for outcomes in 0..(1u64 << bits) {
        let ca = branch_columns(&ea, n, outcomes);
        let cb = branch_columns(&eb, n, outcomes);
        same_branch_up_to_phase(&ca, &cb, dim).map_err(|detail| {
            CompileError::VerificationFailed {
                pass: pass.to_owned(),
                detail: format!("outcome record {outcomes:0bits$b}: {detail}"),
            }
        })?;
    }
    Ok(true)
}

/// Verifies that `after` implements the same semantics as `before`.
/// Unitary-shaped programs are compared as whole unitaries up to one
/// global phase; programs with mid-circuit measurement or conditional
/// gates are compared branch by branch over every assignment of
/// measurement outcomes (each branch up to its own phase — branches are
/// distinguished by their recorded classical outcomes, so the relative
/// phase between them is unobservable). Returns `Ok(true)` when a check
/// ran and passed, `Ok(false)` when the programs are outside both
/// verifiable shapes.
///
/// # Errors
///
/// [`CompileError::VerificationFailed`] naming `pass` when the circuits
/// provably diverge.
pub fn verify_pass(before: &Program, after: &Program, pass: &str) -> Result<bool, CompileError> {
    if before.qubit_count() != after.qubit_count() {
        return Ok(false);
    }
    if !verifiable(before) || !verifiable(after) {
        return verify_branches(before, after, pass);
    }
    // The unitary fast path ignores the trailing measurement suffix, so
    // it must not equate programs that measure different qubits: require
    // the measurement skeletons to agree before comparing the unitaries.
    match (branch_events(before), branch_events(after)) {
        (Some(ea), Some(eb)) if skeleton(&ea) != skeleton(&eb) => return Ok(false),
        _ => {}
    }
    let n = before.qubit_count();
    let ua = unitary_columns(before, n);
    let ub = unitary_columns(after, n);
    same_up_to_global_phase(&ua, &ub, 1 << n).map_err(|detail| {
        CompileError::VerificationFailed {
            pass: pass.to_owned(),
            detail,
        }
    })?;
    Ok(true)
}

/// Verifies a routed program against its pre-routing original, threading
/// the basis through the router's qubit permutations: input basis bits
/// enter at their `initial` physical positions and output amplitudes are
/// decoded through `final_mapping`. The before-program may address fewer
/// (logical) qubits than the routed (physical) program; extra physical
/// qubits must act as identity.
///
/// # Errors
///
/// [`CompileError::VerificationFailed`] naming `pass` on divergence.
pub fn verify_routed_pass(
    before: &Program,
    after: &Program,
    initial: &Mapping,
    final_mapping: &Mapping,
    pass: &str,
) -> Result<bool, CompileError> {
    let n_phys = after.qubit_count();
    if before.qubit_count() > n_phys
        || n_phys == 0
        || n_phys > MAX_VERIFY_QUBITS
        || initial.len() != n_phys
        || final_mapping.len() != n_phys
        || !verifiable(before)
        || !verifiable(after)
    {
        return Ok(false);
    }
    let dim = 1usize << n_phys;
    // Reference: the logical program acting on bit l = logical qubit l,
    // padded with identity on the extra physical qubits.
    let ua = unitary_columns(before, n_phys);
    // Routed: encode basis x through the initial placement, run, decode
    // through the final mapping.
    let ub: Vec<Vec<C64>> = (0..dim)
        .map(|x| {
            let mut y0 = 0u64;
            for l in 0..n_phys {
                if (x >> l) & 1 == 1 {
                    y0 |= 1 << initial.physical(l);
                }
            }
            let mut s = StateVector::basis_state(n_phys, y0);
            apply_gates(after, &mut s);
            let mut decoded = vec![C64::ZERO; dim];
            for (y, &a) in s.amplitudes().iter().enumerate() {
                let mut xl = 0usize;
                for l in 0..n_phys {
                    if (y >> final_mapping.physical(l)) & 1 == 1 {
                        xl |= 1 << l;
                    }
                }
                decoded[xl] = a;
            }
            decoded
        })
        .collect();
    same_up_to_global_phase(&ua, &ub, dim).map_err(|detail| CompileError::VerificationFailed {
        pass: pass.to_owned(),
        detail,
    })?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{route, InitialPlacement};
    use crate::topology::Topology;
    use cqasm::GateKind;

    #[test]
    fn identical_programs_verify() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build();
        assert_eq!(verify_pass(&p, &p, "noop"), Ok(true));
    }

    #[test]
    fn global_phase_is_ignored() {
        // S and T² differ from rz-based forms only by global phase; use
        // Z = S·S versus rz(π) which differ by e^{iπ/2}.
        let a = Program::builder(1).gate(GateKind::Z, &[0]).build();
        let b = Program::builder(1)
            .gate(GateKind::Rz(std::f64::consts::PI), &[0])
            .build();
        assert_eq!(verify_pass(&a, &b, "phase"), Ok(true));
    }

    #[test]
    fn divergent_programs_fail_with_pass_name() {
        let a = Program::builder(1).gate(GateKind::X, &[0]).build();
        let b = Program::builder(1).gate(GateKind::Y, &[0]).build();
        match verify_pass(&a, &b, "optimize") {
            Err(CompileError::VerificationFailed { pass, .. }) => assert_eq!(pass, "optimize"),
            other => panic!("expected VerificationFailed, got {other:?}"),
        }
    }

    #[test]
    fn x_and_y_differ_even_up_to_phase() {
        // X = e^{iθ}Y has no solution; the Frobenius check must say so.
        let a = Program::builder(1).gate(GateKind::X, &[0]).build();
        let b = Program::builder(1).gate(GateKind::Y, &[0]).build();
        assert!(verify_pass(&a, &b, "p").is_err());
    }

    #[test]
    fn unverifiable_shapes_are_skipped_not_failed() {
        let big = Program::builder(9).gate(GateKind::H, &[0]).build();
        assert_eq!(verify_pass(&big, &big, "p"), Ok(false));
        let prepped = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .prep_z(0)
            .build();
        assert_eq!(verify_pass(&prepped, &prepped, "p"), Ok(false));
    }

    #[test]
    fn mid_circuit_measurement_verifies_per_branch() {
        let measured_mid = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::X, &[1])
            .build();
        assert_eq!(verify_pass(&measured_mid, &measured_mid, "p"), Ok(true));
        // Commuting a disjoint gate across the measurement is sound and
        // keeps the skeleton, so it must verify (schedulers do this).
        let hoisted = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::X, &[1])
            .measure(0)
            .build();
        assert_eq!(verify_pass(&measured_mid, &hoisted, "p"), Ok(true));
    }

    #[test]
    fn gate_change_after_measurement_is_caught() {
        let a = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::X, &[1])
            .build();
        let b = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::Y, &[1])
            .build();
        assert!(verify_pass(&a, &b, "opt").is_err());
    }

    #[test]
    fn conditional_programs_verify_per_branch() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .cond(0, GateKind::X, &[1])
            .measure_all()
            .build();
        assert_eq!(verify_pass(&p, &p, "p"), Ok(true));
    }

    #[test]
    fn conditional_branch_phase_is_per_branch() {
        // Z and rz(π) differ by a phase; conditioning them on a bit makes
        // that phase branch-local, which is still unobservable.
        let a = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .cond(0, GateKind::Z, &[1])
            .build();
        let b = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .cond(0, GateKind::Rz(std::f64::consts::PI), &[1])
            .build();
        assert_eq!(verify_pass(&a, &b, "p"), Ok(true));
    }

    #[test]
    fn miscompiled_conditional_branch_is_caught() {
        // The fired branch applies X in `good` but Z in `bad`: only the
        // record with bit 0 = 1 diverges, and it must be caught.
        let good = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .cond(0, GateKind::X, &[1])
            .measure_all()
            .build();
        let bad = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .cond(0, GateKind::Z, &[1])
            .measure_all()
            .build();
        match verify_pass(&good, &bad, "schedule") {
            Err(CompileError::VerificationFailed { pass, detail }) => {
                assert_eq!(pass, "schedule");
                assert!(detail.contains("outcome record"), "{detail}");
            }
            other => panic!("expected VerificationFailed, got {other:?}"),
        }
    }

    #[test]
    fn conditional_reading_wrong_bit_is_caught() {
        let good = Program::builder(3)
            .gate(GateKind::H, &[0])
            .measure(0)
            .measure(1)
            .cond(0, GateKind::X, &[2])
            .build();
        let bad = Program::builder(3)
            .gate(GateKind::H, &[0])
            .measure(0)
            .measure(1)
            .cond(1, GateKind::X, &[2])
            .build();
        assert!(verify_pass(&good, &bad, "p").is_err());
    }

    #[test]
    fn skeleton_mismatch_is_skipped_not_failed() {
        let a = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .build();
        let b = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(1)
            .build();
        assert_eq!(verify_pass(&a, &b, "p"), Ok(false));
    }

    #[test]
    fn adjacent_measures_form_one_event() {
        // A scheduler may bundle adjacent measures or reorder them within
        // a cycle; a maximal consecutive run is one event, so the order
        // inside the run does not matter.
        let a = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .measure(1)
            .build();
        let b = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(1)
            .measure(0)
            .build();
        assert_eq!(verify_pass(&a, &b, "p"), Ok(true));
    }

    #[test]
    fn routed_program_verifies_through_permutations() {
        let t = Topology::linear(4);
        let p = Program::builder(4)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 3]) // needs routing on a line
            .gate(GateKind::Cnot, &[1, 2])
            .measure_all()
            .build();
        for placement in [
            InitialPlacement::Identity,
            InitialPlacement::GreedyInteraction,
        ] {
            let res = route(&p, &t, placement).unwrap();
            assert!(res.swaps_inserted > 0 || placement == InitialPlacement::GreedyInteraction);
            assert_eq!(
                verify_routed_pass(&p, &res.program, &res.initial, &res.final_mapping, "map"),
                Ok(true),
                "{placement:?}"
            );
        }
    }

    #[test]
    fn routed_verification_detects_wrong_mapping() {
        let t = Topology::linear(3);
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 2])
            .build();
        let res = route(&p, &t, InitialPlacement::Identity).unwrap();
        // Lying about the final mapping must be caught (the router really
        // swapped, so pretending it did not changes the decoded unitary).
        let wrong = Mapping::identity(3);
        if res.final_mapping != wrong {
            assert!(
                verify_routed_pass(&p, &res.program, &res.initial, &wrong, "map").is_err(),
                "wrong mapping accepted"
            );
        }
    }
}
