//! Gate decomposition: rewriting circuits into a platform's primitive set.
//!
//! This is the "quantum gate decomposition" step of §2.4: the compiler
//! lowers library gates to whatever the target executes natively — e.g. the
//! `{x90, y90, mx90, my90, rz, cz}` set of the superconducting transmon
//! targets. All rewrites are exact up to global phase (verified by the
//! simulator-backed tests).

use crate::error::CompileError;
use crate::platform::TargetGateSet;
use cqasm::{GateApp, GateKind, Instruction, Program, Qubit};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// Rewrites `program` so that every gate is accepted by `target`.
///
/// # Errors
///
/// Returns [`CompileError::Unsupported`] if a gate has no decomposition
/// rule for the target set.
pub fn decompose(program: &Program, target: TargetGateSet) -> Result<Program, CompileError> {
    let mut out = Program::new(program.qubit_count());
    out.set_version(program.version());
    for sub in program.subcircuits() {
        let mut new_sub = cqasm::Subcircuit::with_iterations(sub.name(), sub.iterations());
        for ins in sub.instructions() {
            lower_instruction(ins, target, new_sub.instructions_mut())?;
        }
        out.push_subcircuit(new_sub);
    }
    Ok(out)
}

fn lower_instruction(
    ins: &Instruction,
    target: TargetGateSet,
    out: &mut Vec<Instruction>,
) -> Result<(), CompileError> {
    match ins {
        Instruction::Gate(g) => {
            for app in lower_gate(g, target)? {
                out.push(Instruction::Gate(app));
            }
            Ok(())
        }
        Instruction::Cond(bit, g) => {
            for app in lower_gate(g, target)? {
                out.push(Instruction::Cond(*bit, app));
            }
            Ok(())
        }
        Instruction::Bundle(instrs) => {
            // Decomposition may lengthen slots; flatten the bundle and let
            // the scheduler re-bundle later.
            for inner in instrs {
                lower_instruction(inner, target, out)?;
            }
            Ok(())
        }
        other => {
            out.push(other.clone());
            Ok(())
        }
    }
}

/// Fully lowers one gate application to target primitives.
fn lower_gate(g: &GateApp, target: TargetGateSet) -> Result<Vec<GateApp>, CompileError> {
    let mut queue = vec![g.clone()];
    let mut out = Vec::new();
    // Each rewrite strictly reduces gate "rank" (3q -> 2q -> native), so
    // this terminates; the depth guard is belt-and-braces.
    let mut steps = 0usize;
    while let Some(app) = queue.pop() {
        if target.accepts(&app.kind) {
            out.push(app);
            continue;
        }
        steps += 1;
        if steps > 10_000 {
            return Err(CompileError::Unsupported {
                gate: app.kind.mnemonic().to_owned(),
                target: target.name().to_owned(),
            });
        }
        let expansion = expand_one(&app).ok_or_else(|| CompileError::Unsupported {
            gate: app.kind.mnemonic().to_owned(),
            target: target.name().to_owned(),
        })?;
        // Push in reverse so the queue pops in circuit order... but we pop
        // from the back, so extend reversed to preserve order.
        for e in expansion.into_iter().rev() {
            queue.push(e);
        }
    }
    Ok(out)
}

/// One decomposition step for a gate, in circuit order. Returns `None` for
/// gates with no rule (only `I`, which every set accepts, has none needed).
fn expand_one(app: &GateApp) -> Option<Vec<GateApp>> {
    let q = |i: usize| app.qubits[i];
    let one = |kind: GateKind, target: Qubit| GateApp::new(kind, vec![target]);
    let two = |kind: GateKind, a: Qubit, b: Qubit| GateApp::new(kind, vec![a, b]);
    use GateKind::*;
    Some(match app.kind {
        // --- single-qubit gates onto {x90, y90, mx90, my90, rz} ---
        // H = Y90 * Rz(pi) up to global phase: circuit [rz(pi), y90].
        H => vec![one(Rz(PI), q(0)), one(Y90, q(0))],
        // X = X90 * X90 up to phase.
        X => vec![one(X90, q(0)), one(X90, q(0))],
        Y => vec![one(Y90, q(0)), one(Y90, q(0))],
        Z => vec![one(Rz(PI), q(0))],
        S => vec![one(Rz(FRAC_PI_2), q(0))],
        Sdag => vec![one(Rz(-FRAC_PI_2), q(0))],
        T => vec![one(Rz(FRAC_PI_4), q(0))],
        Tdag => vec![one(Rz(-FRAC_PI_4), q(0))],
        // Rx(a) = Y90 * Rz(a) * mY90: circuit [my90, rz(a), y90].
        Rx(a) => vec![one(My90, q(0)), one(Rz(a), q(0)), one(Y90, q(0))],
        // Ry(a) = mX90 * Rz(a) * X90: circuit [x90, rz(a), mx90].
        Ry(a) => vec![one(X90, q(0)), one(Rz(a), q(0)), one(Mx90, q(0))],
        // The calibrated 90s in terms of rotations (for CNOT-basis targets
        // these are already accepted; this rule is never reached there).
        X90 => vec![one(Rx(FRAC_PI_2), q(0))],
        Mx90 => vec![one(Rx(-FRAC_PI_2), q(0))],
        Y90 => vec![one(Ry(FRAC_PI_2), q(0))],
        My90 => vec![one(Ry(-FRAC_PI_2), q(0))],
        // --- two-qubit gates ---
        // CNOT = (I (x) H) CZ (I (x) H).
        Cnot => vec![one(H, q(1)), two(Cz, q(0), q(1)), one(H, q(1))],
        // CZ in terms of CNOT for CNOT-basis targets.
        Cz => vec![one(H, q(1)), two(Cnot, q(0), q(1)), one(H, q(1))],
        Swap => vec![
            two(Cnot, q(0), q(1)),
            two(Cnot, q(1), q(0)),
            two(Cnot, q(0), q(1)),
        ],
        // Controlled phase: standard two-CNOT construction (exact up to
        // global phase).
        Cr(a) => vec![
            one(Rz(a / 2.0), q(0)),
            one(Rz(a / 2.0), q(1)),
            two(Cnot, q(0), q(1)),
            one(Rz(-a / 2.0), q(1)),
            two(Cnot, q(0), q(1)),
        ],
        CRk(k) => {
            let a = 2.0 * PI / (1u64 << k) as f64;
            vec![two(Cr(a), q(0), q(1))]
        }
        // --- Toffoli: the textbook 7-T construction ---
        Toffoli => vec![
            one(H, q(2)),
            two(Cnot, q(1), q(2)),
            one(Tdag, q(2)),
            two(Cnot, q(0), q(2)),
            one(T, q(2)),
            two(Cnot, q(1), q(2)),
            one(Tdag, q(2)),
            two(Cnot, q(0), q(2)),
            one(T, q(1)),
            one(T, q(2)),
            one(H, q(2)),
            two(Cnot, q(0), q(1)),
            one(T, q(0)),
            one(Tdag, q(1)),
            two(Cnot, q(0), q(1)),
        ],
        // `I` and `Rz` are accepted by every non-universal target set and
        // have no further expansion.
        I | Rz(_) => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxsim::StateVector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Applies a program's gates to a state (ignoring non-gate instructions).
    fn apply_program(p: &Program, state: &mut StateVector) {
        fn apply(ins: &Instruction, state: &mut StateVector) {
            match ins {
                Instruction::Gate(g) => {
                    let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
                    state.apply_gate(&g.kind, &idx);
                }
                Instruction::Bundle(instrs) => {
                    for i in instrs {
                        apply(i, state);
                    }
                }
                _ => {}
            }
        }
        for ins in p.flat_instructions() {
            apply(ins, state);
        }
    }

    /// Checks that `decomposed` implements the same unitary as `original`
    /// up to global phase, by comparing action on random states.
    fn assert_equivalent(original: &Program, decomposed: &Program, n: usize) {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let amps: Vec<cqasm::math::C64> = (0..1usize << n)
                .map(|_| cqasm::math::C64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect();
            let base = StateVector::from_amplitudes(amps);
            let mut a = base.clone();
            let mut b = base;
            apply_program(original, &mut a);
            apply_program(decomposed, &mut b);
            let f = a.fidelity(&b);
            assert!(
                (f - 1.0).abs() < 1e-9,
                "decomposition changed semantics: fidelity {f}"
            );
        }
    }

    fn single_gate_program(kind: GateKind, qubits: &[usize], n: usize) -> Program {
        Program::builder(n).gate(kind, qubits).build()
    }

    #[test]
    fn cz_basis_single_qubit_gates() {
        for kind in [
            GateKind::H,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::S,
            GateKind::Sdag,
            GateKind::T,
            GateKind::Tdag,
            GateKind::Rx(0.7),
            GateKind::Ry(-1.3),
            GateKind::Rz(2.1),
        ] {
            let p = single_gate_program(kind, &[0], 1);
            let d = decompose(&p, TargetGateSet::CzBasis).unwrap();
            for ins in d.flat_instructions() {
                if let Instruction::Gate(g) = ins {
                    assert!(
                        TargetGateSet::CzBasis.accepts(&g.kind),
                        "{} leaked through",
                        g.kind
                    );
                }
            }
            assert_equivalent(&p, &d, 1);
        }
    }

    #[test]
    fn cz_basis_two_qubit_gates() {
        for kind in [
            GateKind::Cnot,
            GateKind::Swap,
            GateKind::Cr(0.9),
            GateKind::CRk(3),
        ] {
            let p = single_gate_program(kind, &[0, 1], 2);
            let d = decompose(&p, TargetGateSet::CzBasis).unwrap();
            for ins in d.flat_instructions() {
                if let Instruction::Gate(g) = ins {
                    assert!(TargetGateSet::CzBasis.accepts(&g.kind));
                }
            }
            assert_equivalent(&p, &d, 2);
        }
    }

    #[test]
    fn toffoli_to_cnot_basis() {
        let p = single_gate_program(GateKind::Toffoli, &[0, 1, 2], 3);
        let d = decompose(&p, TargetGateSet::CnotBasis).unwrap();
        let stats = d.stats();
        assert_eq!(stats.multi_qubit_gates, 0);
        assert_eq!(stats.two_qubit_gates, 6, "7-T Toffoli uses 6 CNOTs");
        assert_equivalent(&p, &d, 3);
    }

    #[test]
    fn toffoli_to_cz_basis() {
        let p = single_gate_program(GateKind::Toffoli, &[0, 1, 2], 3);
        let d = decompose(&p, TargetGateSet::CzBasis).unwrap();
        for ins in d.flat_instructions() {
            if let Instruction::Gate(g) = ins {
                assert!(TargetGateSet::CzBasis.accepts(&g.kind));
            }
        }
        assert_equivalent(&p, &d, 3);
    }

    #[test]
    fn swap_to_cnot_basis_is_three_cnots() {
        let p = single_gate_program(GateKind::Swap, &[0, 1], 2);
        let d = decompose(&p, TargetGateSet::CnotBasis).unwrap();
        assert_eq!(d.stats().gates, 3);
        assert_equivalent(&p, &d, 2);
    }

    #[test]
    fn universal_target_is_identity_transform() {
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Toffoli, &[0, 1, 2])
            .build();
        let d = decompose(&p, TargetGateSet::Universal).unwrap();
        assert_eq!(p, d);
    }

    #[test]
    fn composite_circuit_preserved() {
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::T, &[1])
            .gate(GateKind::Toffoli, &[0, 1, 2])
            .gate(GateKind::Swap, &[0, 2])
            .gate(GateKind::Ry(0.4), &[1])
            .build();
        let d = decompose(&p, TargetGateSet::CzBasis).unwrap();
        assert_equivalent(&p, &d, 3);
    }

    #[test]
    fn non_gate_instructions_pass_through() {
        let p = Program::builder(1)
            .prep_z(0)
            .gate(GateKind::H, &[0])
            .measure(0)
            .build();
        let d = decompose(&p, TargetGateSet::CzBasis).unwrap();
        let instrs: Vec<_> = d.flat_instructions().collect();
        assert!(matches!(instrs[0], Instruction::PrepZ(_)));
        assert!(matches!(instrs.last().unwrap(), Instruction::Measure(_)));
    }

    #[test]
    fn conditional_gates_decompose_conditionally() {
        let mut p = Program::new(1);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::Cond(
            cqasm::Bit(0),
            GateApp::new(GateKind::H, vec![Qubit(0)]),
        ));
        p.push_subcircuit(s);
        let d = decompose(&p, TargetGateSet::CzBasis).unwrap();
        for ins in d.flat_instructions() {
            assert!(matches!(ins, Instruction::Cond(_, _)));
        }
        assert_eq!(d.flat_instructions().count(), 2);
    }

    #[test]
    fn bundles_are_flattened() {
        let p = Program::builder(2)
            .instruction(Instruction::Bundle(vec![
                Instruction::gate(GateKind::H, &[0]),
                Instruction::gate(GateKind::X, &[1]),
            ]))
            .build();
        let d = decompose(&p, TargetGateSet::CzBasis).unwrap();
        assert!(d
            .flat_instructions()
            .all(|i| !matches!(i, Instruction::Bundle(_))));
        assert_equivalent(&p, &d, 2);
    }
}
