//! The OpenQL programming interface: quantum kernels and programs.
//!
//! Applications are written against this typed API (the paper's "quantum
//! logic" layer, §2.3/§2.4), then lowered to cQASM by [`QuantumProgram::to_cqasm`]
//! and compiled for a platform by [`crate::Compiler`].

use cqasm::{GateApp, GateKind, Instruction, Program, Qubit, Subcircuit};

/// A quantum kernel: a named straight-line sequence of quantum operations.
///
/// Kernels are the unit the host CPU offloads to the accelerator; classical
/// control (loops) is expressed by repeating kernels.
///
/// # Example
///
/// ```
/// use openql::{Kernel, QuantumProgram};
///
/// let mut k = Kernel::new("bell", 2);
/// k.h(0).cnot(0, 1).measure_all();
/// let mut p = QuantumProgram::new("demo", 2);
/// p.add_kernel(k);
/// let cq = p.to_cqasm();
/// assert_eq!(cq.stats().gates, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    qubit_count: usize,
    instructions: Vec<Instruction>,
}

macro_rules! one_qubit_method {
    ($(#[$doc:meta])* $name:ident, $kind:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, q: usize) -> &mut Self {
            self.push_gate($kind, &[q])
        }
    };
}

impl Kernel {
    /// Creates an empty kernel over `qubit_count` qubits.
    pub fn new(name: impl Into<String>, qubit_count: usize) -> Self {
        Kernel {
            name: name.into(),
            qubit_count,
            instructions: Vec::new(),
        }
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits the kernel addresses.
    pub fn qubit_count(&self) -> usize {
        self.qubit_count
    }

    /// The instruction sequence built so far.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    fn push_gate(&mut self, kind: GateKind, qubits: &[usize]) -> &mut Self {
        for &q in qubits {
            assert!(
                q < self.qubit_count,
                "qubit {q} out of range for kernel `{}` ({} qubits)",
                self.name,
                self.qubit_count
            );
        }
        self.instructions.push(Instruction::gate(kind, qubits));
        self
    }

    /// Appends an arbitrary gate.
    ///
    /// # Panics
    ///
    /// Panics if operand count or indices are invalid.
    pub fn gate(&mut self, kind: GateKind, qubits: &[usize]) -> &mut Self {
        self.push_gate(kind, qubits)
    }

    one_qubit_method!(
        /// Appends an identity gate.
        identity, GateKind::I);
    one_qubit_method!(
        /// Appends a Hadamard.
        h, GateKind::H);
    one_qubit_method!(
        /// Appends a Pauli-X.
        x, GateKind::X);
    one_qubit_method!(
        /// Appends a Pauli-Y.
        y, GateKind::Y);
    one_qubit_method!(
        /// Appends a Pauli-Z.
        z, GateKind::Z);
    one_qubit_method!(
        /// Appends an S gate.
        s, GateKind::S);
    one_qubit_method!(
        /// Appends an S† gate.
        sdag, GateKind::Sdag);
    one_qubit_method!(
        /// Appends a T gate.
        t, GateKind::T);
    one_qubit_method!(
        /// Appends a T† gate.
        tdag, GateKind::Tdag);
    one_qubit_method!(
        /// Appends a calibrated +90° X rotation.
        x90, GateKind::X90);
    one_qubit_method!(
        /// Appends a calibrated +90° Y rotation.
        y90, GateKind::Y90);

    /// Appends `rx(q, angle)`.
    pub fn rx(&mut self, q: usize, angle: f64) -> &mut Self {
        self.push_gate(GateKind::Rx(angle), &[q])
    }

    /// Appends `ry(q, angle)`.
    pub fn ry(&mut self, q: usize, angle: f64) -> &mut Self {
        self.push_gate(GateKind::Ry(angle), &[q])
    }

    /// Appends `rz(q, angle)`.
    pub fn rz(&mut self, q: usize, angle: f64) -> &mut Self {
        self.push_gate(GateKind::Rz(angle), &[q])
    }

    /// Appends a CNOT with `control, target`.
    pub fn cnot(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_gate(GateKind::Cnot, &[control, target])
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_gate(GateKind::Cz, &[a, b])
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_gate(GateKind::Swap, &[a, b])
    }

    /// Appends a controlled phase rotation.
    pub fn cr(&mut self, control: usize, target: usize, angle: f64) -> &mut Self {
        self.push_gate(GateKind::Cr(angle), &[control, target])
    }

    /// Appends the QFT phase primitive `crk`.
    pub fn crk(&mut self, control: usize, target: usize, k: u32) -> &mut Self {
        self.push_gate(GateKind::CRk(k), &[control, target])
    }

    /// Appends a Toffoli with controls `c1, c2` and target `t`.
    pub fn toffoli(&mut self, c1: usize, c2: usize, target: usize) -> &mut Self {
        self.push_gate(GateKind::Toffoli, &[c1, c2, target])
    }

    /// Appends a `prep_z`.
    pub fn prep_z(&mut self, q: usize) -> &mut Self {
        self.instructions.push(Instruction::PrepZ(Qubit(q)));
        self
    }

    /// Appends a measurement.
    pub fn measure(&mut self, q: usize) -> &mut Self {
        self.instructions.push(Instruction::Measure(Qubit(q)));
        self
    }

    /// Appends a measurement of every qubit.
    pub fn measure_all(&mut self) -> &mut Self {
        self.instructions.push(Instruction::MeasureAll);
        self
    }

    /// Appends a binary-controlled gate: apply `kind` to `qubits` iff
    /// classical bit `bit` is one.
    pub fn cond_gate(&mut self, bit: usize, kind: GateKind, qubits: &[usize]) -> &mut Self {
        let app = GateApp::new(kind, qubits.iter().copied().map(Qubit).collect());
        self.instructions
            .push(Instruction::Cond(cqasm::Bit(bit), app));
        self
    }

    /// Appends an idle wait of `cycles`.
    pub fn wait(&mut self, cycles: u64) -> &mut Self {
        self.instructions.push(Instruction::Wait(cycles));
        self
    }

    /// Appends a raw instruction.
    pub fn instruction(&mut self, ins: Instruction) -> &mut Self {
        self.instructions.push(ins);
        self
    }

    /// Appends the inverse of this kernel's gates in reverse order
    /// (uncomputation). Non-unitary instructions are skipped.
    pub fn append_inverse_of(&mut self, other: &Kernel) -> &mut Self {
        for ins in other.instructions.iter().rev() {
            if let Instruction::Gate(g) = ins {
                let inv = g.kind.dagger();
                self.instructions
                    .push(Instruction::Gate(GateApp::new(inv, g.qubits.clone())));
            }
        }
        self
    }
}

/// A quantum program: an ordered list of kernels with iteration counts.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumProgram {
    name: String,
    qubit_count: usize,
    kernels: Vec<(Kernel, u64)>,
}

impl QuantumProgram {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>, qubit_count: usize) -> Self {
        QuantumProgram {
            name: name.into(),
            qubit_count,
            kernels: Vec::new(),
        }
    }

    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubit_count
    }

    /// Appends a kernel executed once.
    ///
    /// # Panics
    ///
    /// Panics if the kernel addresses more qubits than the program has.
    pub fn add_kernel(&mut self, kernel: Kernel) -> &mut Self {
        self.add_kernel_iterated(kernel, 1)
    }

    /// Appends a kernel executed `iterations` times (classical loop around
    /// quantum logic, §2.4).
    ///
    /// # Panics
    ///
    /// Panics if the kernel addresses more qubits than the program has.
    pub fn add_kernel_iterated(&mut self, kernel: Kernel, iterations: u64) -> &mut Self {
        assert!(
            kernel.qubit_count() <= self.qubit_count,
            "kernel `{}` needs {} qubits, program has {}",
            kernel.name(),
            kernel.qubit_count(),
            self.qubit_count
        );
        self.kernels.push((kernel, iterations));
        self
    }

    /// The kernels with their iteration counts.
    pub fn kernels(&self) -> &[(Kernel, u64)] {
        &self.kernels
    }

    /// Lowers the program to cQASM.
    pub fn to_cqasm(&self) -> Program {
        let mut p = Program::new(self.qubit_count);
        for (k, iters) in &self.kernels {
            let mut sub = Subcircuit::with_iterations(k.name(), *iters);
            sub.extend(k.instructions().iter().cloned());
            p.push_subcircuit(sub);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_kernel_building() {
        let mut k = Kernel::new("k", 3);
        k.h(0).cnot(0, 1).toffoli(0, 1, 2).rz(2, 0.5).measure(2);
        assert_eq!(k.instructions().len(), 5);
    }

    #[test]
    fn lowering_to_cqasm() {
        let mut k = Kernel::new("body", 2);
        k.h(0).cnot(0, 1);
        let mut p = QuantumProgram::new("prog", 2);
        p.add_kernel_iterated(k, 3);
        let cq = p.to_cqasm();
        assert_eq!(cq.qubit_count(), 2);
        assert_eq!(cq.subcircuits()[0].iterations(), 3);
        assert_eq!(cq.stats().gates, 6);
        cq.validate().expect("lowered program is valid");
    }

    #[test]
    fn uncompute_appends_daggers_in_reverse() {
        let mut fwd = Kernel::new("fwd", 1);
        fwd.h(0).t(0);
        let mut k = Kernel::new("k", 1);
        k.append_inverse_of(&fwd);
        let ins = k.instructions();
        assert_eq!(ins.len(), 2);
        assert!(matches!(&ins[0], Instruction::Gate(g) if g.kind == GateKind::Tdag));
        assert!(matches!(&ins[1], Instruction::Gate(g) if g.kind == GateKind::H));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn kernel_rejects_bad_qubit() {
        Kernel::new("k", 1).h(3);
    }

    #[test]
    #[should_panic(expected = "needs 5 qubits")]
    fn program_rejects_oversized_kernel() {
        let k = Kernel::new("k", 5);
        QuantumProgram::new("p", 2).add_kernel(k);
    }

    #[test]
    fn cond_gate_lowered() {
        let mut k = Kernel::new("k", 2);
        k.h(0).measure(0).cond_gate(0, GateKind::X, &[1]);
        let mut p = QuantumProgram::new("p", 2);
        p.add_kernel(k);
        let cq = p.to_cqasm();
        assert!(cq.validate().is_ok());
        assert!(matches!(
            cq.subcircuits()[0].instructions()[2],
            Instruction::Cond(_, _)
        ));
    }
}
