//! # openql — the quantum compiler of the full-stack accelerator
//!
//! Rust implementation of the OpenQL layer from Bertels et al., *"Quantum
//! Computer Architecture: Towards Full-Stack Quantum Accelerators"* (DATE
//! 2020). OpenQL is where quantum logic is expressed ([`Kernel`],
//! [`QuantumProgram`]) and compiled ([`Compiler`]) into the common assembly
//! cQASM for a concrete [`Platform`]:
//!
//! 1. **decomposition** ([`decompose()`]) lowers library gates to the
//!    platform's primitive set (e.g. `{x90, y90, mx90, my90, rz, cz}`);
//! 2. **optimisation** ([`optimize()`]) cancels and fuses gates;
//! 3. **mapping** ([`map`]) places logical qubits and routes two-qubit
//!    gates through nearest-neighbour topologies with SWAP insertion;
//! 4. **scheduling** ([`schedule()`]) packs instructions into hardware
//!    cycles, exposing qubit-level parallelism as cQASM bundles.
//!
//! # Example
//!
//! ```
//! use openql::{Compiler, Kernel, Platform, QuantumProgram};
//!
//! # fn main() -> Result<(), openql::CompileError> {
//! let mut k = Kernel::new("bell", 2);
//! k.h(0).cnot(0, 1).measure_all();
//! let mut program = QuantumProgram::new("demo", 2);
//! program.add_kernel(k);
//!
//! let out = Compiler::new(Platform::superconducting_grid(1, 2)).compile(&program)?;
//! println!("{}", out.program); // platform-conforming cQASM
//! # Ok(())
//! # }
//! ```

// Library paths must return typed errors, never abort (CI gates these
// lints); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod compiler;
pub mod decompose;
pub mod error;
pub mod kernel;
pub mod library;
pub mod map;
pub mod optimize;
pub mod platform;
pub mod schedule;
pub mod topology;
pub mod verify;

pub use compiler::{CompileOutput, CompileReport, Compiler, CompilerOptions, PassStat};
pub use decompose::decompose;
pub use error::CompileError;
pub use kernel::{Kernel, QuantumProgram};
pub use library::{bernstein_vazirani, deutsch_jozsa, ghz, iqft, phase_estimation, qft, DjOracle};
pub use map::{route, InitialPlacement, Mapping, RoutingResult};
pub use optimize::{optimize, OptimizeReport};
pub use platform::{GateDurations, Platform, TargetGateSet};
pub use schedule::{schedule, Schedule, ScheduleDirection, TimedInstruction};
pub use topology::Topology;
pub use verify::{verify_pass, verify_routed_pass, MAX_BRANCH_BITS, MAX_VERIFY_QUBITS};
