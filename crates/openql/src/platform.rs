//! Platform configuration: the compiler's description of a target.
//!
//! The paper stresses that retargeting the same micro-architecture to a
//! different quantum technology only requires swapping "the configuration
//! file for the compiler" (§3.1). A [`Platform`] is that configuration: a
//! topology, a primitive gate set, gate durations and the hardware cycle
//! time.

use crate::topology::Topology;
use cqasm::GateKind;

/// The primitive gate set a target executes natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TargetGateSet {
    /// Any cQASM gate is accepted (simulator target / perfect qubits).
    #[default]
    Universal,
    /// One-qubit gates plus CNOT; three-qubit gates and SWAP must be
    /// decomposed.
    CnotBasis,
    /// Calibrated rotations `{x90, y90, mx90, my90, rz}` plus CZ — the
    /// native set of the superconducting transmon targets in the paper.
    CzBasis,
}

impl TargetGateSet {
    /// A short name used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            TargetGateSet::Universal => "universal",
            TargetGateSet::CnotBasis => "cnot-basis",
            TargetGateSet::CzBasis => "cz-basis",
        }
    }

    /// Whether a gate is a native primitive of this set.
    pub fn accepts(&self, kind: &GateKind) -> bool {
        use GateKind::*;
        match self {
            TargetGateSet::Universal => true,
            TargetGateSet::CnotBasis => !matches!(kind, Toffoli | Swap),
            TargetGateSet::CzBasis => {
                matches!(kind, I | X90 | Y90 | Mx90 | My90 | Rz(_) | Cz)
            }
        }
    }
}

/// Gate timing in integer hardware cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateDurations {
    /// Cycles for any single-qubit gate.
    pub single_qubit: u64,
    /// Cycles for any two-qubit gate.
    pub two_qubit: u64,
    /// Cycles for a measurement.
    pub measure: u64,
    /// Cycles for a state preparation.
    pub prep: u64,
}

impl Default for GateDurations {
    fn default() -> Self {
        GateDurations {
            single_qubit: 1,
            two_qubit: 2,
            measure: 4,
            prep: 2,
        }
    }
}

/// A compile target: name, topology, primitive gates and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: String,
    topology: Topology,
    gate_set: TargetGateSet,
    durations: GateDurations,
    cycle_time_ns: u64,
}

impl Platform {
    /// Creates a platform from parts.
    pub fn new(
        name: impl Into<String>,
        topology: Topology,
        gate_set: TargetGateSet,
        durations: GateDurations,
        cycle_time_ns: u64,
    ) -> Self {
        Platform {
            name: name.into(),
            topology,
            gate_set,
            durations,
            cycle_time_ns,
        }
    }

    /// A perfect-qubit platform: full connectivity, universal gate set.
    ///
    /// This is the target used during algorithm development (§2.1: perfect
    /// qubits let the designer ignore NN constraints at their discretion).
    pub fn perfect(qubit_count: usize) -> Self {
        Platform::new(
            "perfect",
            Topology::fully_connected(qubit_count),
            TargetGateSet::Universal,
            GateDurations::default(),
            1,
        )
    }

    /// A superconducting transmon-style platform: 2-D grid topology,
    /// CZ-basis primitives, 20 ns cycle. Mirrors the experimental target of
    /// the Fig 6 micro-architecture.
    pub fn superconducting_grid(rows: usize, cols: usize) -> Self {
        Platform::new(
            format!("superconducting-{rows}x{cols}"),
            Topology::grid(rows, cols),
            TargetGateSet::CzBasis,
            GateDurations {
                single_qubit: 1,
                two_qubit: 2,
                measure: 15, // readout is long on transmons
                prep: 10,
            },
            20,
        )
    }

    /// A semiconducting spin-qubit style platform: linear array, CZ basis,
    /// slower gates (the second technology the Fig 6 micro-architecture
    /// was retargeted to).
    pub fn semiconducting_linear(n: usize) -> Self {
        Platform::new(
            format!("semiconducting-linear-{n}"),
            Topology::linear(n),
            TargetGateSet::CzBasis,
            GateDurations {
                single_qubit: 4,
                two_qubit: 8,
                measure: 50,
                prep: 25,
            },
            10,
        )
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The connectivity graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The primitive gate set.
    pub fn gate_set(&self) -> TargetGateSet {
        self.gate_set
    }

    /// Gate timing.
    pub fn durations(&self) -> GateDurations {
        self.durations
    }

    /// Hardware cycle time in nanoseconds.
    pub fn cycle_time_ns(&self) -> u64 {
        self.cycle_time_ns
    }

    /// Number of physical qubits.
    pub fn qubit_count(&self) -> usize {
        self.topology.qubit_count()
    }

    /// Duration of one instruction in cycles.
    pub fn instruction_cycles(&self, ins: &cqasm::Instruction) -> u64 {
        match ins {
            cqasm::Instruction::Gate(g) | cqasm::Instruction::Cond(_, g) => {
                if g.kind.arity() <= 1 {
                    self.durations.single_qubit
                } else {
                    self.durations.two_qubit
                }
            }
            cqasm::Instruction::Measure(_) | cqasm::Instruction::MeasureAll => {
                self.durations.measure
            }
            cqasm::Instruction::PrepZ(_) => self.durations.prep,
            cqasm::Instruction::Wait(n) => *n,
            cqasm::Instruction::Bundle(instrs) => instrs
                .iter()
                .map(|i| self.instruction_cycles(i))
                .max()
                .unwrap_or(0),
            cqasm::Instruction::Display => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqasm::Instruction;

    #[test]
    fn perfect_platform_accepts_everything() {
        let p = Platform::perfect(5);
        assert!(p.gate_set().accepts(&GateKind::Toffoli));
        assert!(p.topology().are_adjacent(0, 4));
        assert_eq!(p.qubit_count(), 5);
    }

    #[test]
    fn cz_basis_accepts_only_primitives() {
        let gs = TargetGateSet::CzBasis;
        assert!(gs.accepts(&GateKind::X90));
        assert!(gs.accepts(&GateKind::Rz(0.5)));
        assert!(gs.accepts(&GateKind::Cz));
        assert!(!gs.accepts(&GateKind::H));
        assert!(!gs.accepts(&GateKind::Cnot));
        assert!(!gs.accepts(&GateKind::Toffoli));
    }

    #[test]
    fn cnot_basis_rejects_three_qubit() {
        let gs = TargetGateSet::CnotBasis;
        assert!(gs.accepts(&GateKind::H));
        assert!(gs.accepts(&GateKind::Cnot));
        assert!(!gs.accepts(&GateKind::Toffoli));
        assert!(!gs.accepts(&GateKind::Swap));
    }

    #[test]
    fn durations_by_instruction() {
        let p = Platform::superconducting_grid(2, 2);
        assert_eq!(
            p.instruction_cycles(&Instruction::gate(GateKind::X90, &[0])),
            1
        );
        assert_eq!(
            p.instruction_cycles(&Instruction::gate(GateKind::Cz, &[0, 1])),
            2
        );
        assert_eq!(
            p.instruction_cycles(&Instruction::Measure(cqasm::Qubit(0))),
            15
        );
        assert_eq!(p.instruction_cycles(&Instruction::Wait(9)), 9);
        let b = Instruction::Bundle(vec![
            Instruction::gate(GateKind::X90, &[0]),
            Instruction::gate(GateKind::Cz, &[1, 2]),
        ]);
        assert_eq!(p.instruction_cycles(&b), 2);
    }

    #[test]
    fn retargeting_presets_differ_only_in_config() {
        let sc = Platform::superconducting_grid(2, 2);
        let spin = Platform::semiconducting_linear(4);
        assert_eq!(sc.gate_set(), spin.gate_set());
        assert_ne!(sc.cycle_time_ns(), spin.cycle_time_ns());
        assert_ne!(sc.topology(), spin.topology());
    }
}
