//! Instruction scheduling (§2.6: "scheduling of operations").
//!
//! Applies classical list scheduling to exploit the parallelism between
//! qubits: instructions that touch disjoint qubits and whose dependencies
//! are met issue in the same cycle. Durations come from the
//! [`crate::Platform`], so the schedule is in hardware cycles — the timing
//! basis the eQASM backend needs.

use crate::platform::Platform;
use cqasm::{Instruction, Program};

/// Scheduling direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleDirection {
    /// As soon as possible.
    #[default]
    Asap,
    /// As late as possible (same latency, operations pushed towards the
    /// end; reduces idle time before measurement on decohering qubits).
    Alap,
}

/// One scheduled instruction with its issue cycle and duration.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedInstruction {
    /// Issue cycle.
    pub start: u64,
    /// Duration in cycles.
    pub duration: u64,
    /// The instruction itself.
    pub instruction: Instruction,
}

/// A scheduled program: timed instructions sorted by start cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    qubit_count: usize,
    items: Vec<TimedInstruction>,
    latency: u64,
}

impl Schedule {
    /// Number of qubits the scheduled program addresses.
    pub fn qubit_count(&self) -> usize {
        self.qubit_count
    }

    /// Timed instructions, sorted by `(start, original order)`.
    pub fn items(&self) -> &[TimedInstruction] {
        &self.items
    }

    /// Total latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Number of distinct issue cycles (bundles).
    pub fn bundle_count(&self) -> usize {
        let mut cycles: Vec<u64> = self.items.iter().map(|t| t.start).collect();
        cycles.dedup();
        cycles.len()
    }

    /// Rewrites the schedule as a cQASM program with explicit bundles and
    /// waits, executable by QX and translatable to eQASM.
    pub fn to_program(&self) -> Program {
        let mut p = Program::new(self.qubit_count);
        let mut sub = cqasm::Subcircuit::new("scheduled");
        let mut cursor = 0u64;
        let mut i = 0usize;
        while i < self.items.len() {
            let start = self.items[i].start;
            if start > cursor {
                sub.push(Instruction::Wait(start - cursor));
            }
            // Collect all instructions issued this cycle.
            let mut slot: Vec<Instruction> = Vec::new();
            let mut max_dur = 0;
            while i < self.items.len() && self.items[i].start == start {
                max_dur = max_dur.max(self.items[i].duration);
                slot.push(self.items[i].instruction.clone());
                i += 1;
            }
            if slot.len() == 1 {
                if let Some(only) = slot.pop() {
                    sub.push(only);
                }
            } else {
                sub.push(Instruction::Bundle(slot));
            }
            cursor = start.saturating_add(max_dur.max(1));
        }
        p.push_subcircuit(sub);
        p
    }
}

/// Schedules `program` for `platform`.
///
/// Explicit `wait` instructions in the input act as global barriers of the
/// given length; bundles in the input are flattened and re-derived from the
/// dependence analysis.
pub fn schedule(program: &Program, platform: &Platform, direction: ScheduleDirection) -> Schedule {
    // Flatten to a linear op list first.
    let mut linear: Vec<Instruction> = Vec::new();
    for ins in program.flat_instructions() {
        flatten(ins, &mut linear);
    }
    match direction {
        ScheduleDirection::Asap => asap(&linear, program.qubit_count(), platform),
        ScheduleDirection::Alap => {
            // ALAP = reverse, ASAP, mirror.
            let reversed: Vec<Instruction> = linear.iter().rev().cloned().collect();
            let fwd = asap(&reversed, program.qubit_count(), platform);
            let total = fwd.latency;
            let mut items: Vec<TimedInstruction> = fwd
                .items
                .into_iter()
                .map(|t| TimedInstruction {
                    start: total.saturating_sub(t.start.saturating_add(t.duration)),
                    duration: t.duration,
                    instruction: t.instruction,
                })
                .collect();
            items.sort_by_key(|t| t.start);
            Schedule {
                qubit_count: program.qubit_count(),
                items,
                latency: total,
            }
        }
    }
}

fn flatten(ins: &Instruction, out: &mut Vec<Instruction>) {
    match ins {
        Instruction::Bundle(instrs) => {
            for i in instrs {
                flatten(i, out);
            }
        }
        Instruction::Display => {}
        other => out.push(other.clone()),
    }
}

fn asap(linear: &[Instruction], qubit_count: usize, platform: &Platform) -> Schedule {
    let n = qubit_count;
    let mut qubit_free = vec![0u64; n];
    let mut bit_ready = vec![0u64; n];
    // Anti-dependency (write-after-read): a measurement overwrites its
    // qubit's bit, so it must not be hoisted past a conditional gate that
    // still reads that bit. Tracks, per bit, when the last reader is done.
    let mut bit_read_busy = vec![0u64; n];
    let mut barrier = 0u64; // earliest start after the last global wait
    let mut items = Vec::with_capacity(linear.len());
    let mut latency = 0u64;

    for ins in linear {
        let duration = platform.instruction_cycles(ins);
        let qubits: Vec<usize> = match ins {
            Instruction::MeasureAll => (0..n).collect(),
            other => other.qubits().iter().map(|q| q.index()).collect(),
        };
        let mut start = barrier;
        for &q in &qubits {
            start = start.max(qubit_free[q]);
        }
        if let Instruction::Cond(bit, _) = ins {
            start = start.max(bit_ready[bit.index()]);
        }
        match ins {
            Instruction::Wait(cycles) => {
                // Global barrier: everything issued so far must finish,
                // then idle for `cycles`.
                let all_done = qubit_free.iter().copied().max().unwrap_or(0).max(barrier);
                barrier = all_done.saturating_add(*cycles);
                latency = latency.max(barrier);
                continue; // timing-only; not emitted as an item
            }
            Instruction::Measure(q) => {
                start = start.max(bit_read_busy[q.index()]);
                bit_ready[q.index()] = start.saturating_add(duration);
            }
            Instruction::MeasureAll => {
                start = start.max(bit_read_busy.iter().copied().max().unwrap_or(0));
                for b in bit_ready.iter_mut() {
                    *b = start.saturating_add(duration);
                }
            }
            _ => {}
        }
        if let Instruction::Cond(bit, _) = ins {
            let b = &mut bit_read_busy[bit.index()];
            *b = (*b).max(start.saturating_add(duration));
        }
        for &q in &qubits {
            qubit_free[q] = start.saturating_add(duration);
        }
        latency = latency.max(start.saturating_add(duration));
        items.push(TimedInstruction {
            start,
            duration,
            instruction: ins.clone(),
        });
    }
    items.sort_by_key(|t| t.start);
    Schedule {
        qubit_count: n,
        items,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqasm::GateKind;

    fn platform() -> Platform {
        Platform::perfect(4)
    }

    #[test]
    fn independent_gates_schedule_in_parallel() {
        let p = Program::builder(4)
            .gate(GateKind::H, &[0])
            .gate(GateKind::H, &[1])
            .gate(GateKind::H, &[2])
            .build();
        let s = schedule(&p, &platform(), ScheduleDirection::Asap);
        assert!(s.items().iter().all(|t| t.start == 0));
        assert_eq!(s.latency(), 1);
        assert_eq!(s.bundle_count(), 1);
    }

    #[test]
    fn dependent_gates_serialise() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::H, &[1])
            .build();
        let s = schedule(&p, &platform(), ScheduleDirection::Asap);
        let starts: Vec<u64> = s.items().iter().map(|t| t.start).collect();
        // H@0, CNOT@1 (dur 2), H@3.
        assert_eq!(starts, vec![0, 1, 3]);
        assert_eq!(s.latency(), 4);
    }

    #[test]
    fn no_bundle_shares_qubits() {
        let p = Program::builder(4)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::Cnot, &[2, 3])
            .gate(GateKind::T, &[2])
            .gate(GateKind::Cnot, &[1, 2])
            .measure_all()
            .build();
        let s = schedule(&p, &platform(), ScheduleDirection::Asap);
        // Group by start and check disjointness.
        let mut by_start: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        for t in s.items() {
            let qs: Vec<usize> = match &t.instruction {
                Instruction::MeasureAll => (0..4).collect(),
                other => other.qubits().iter().map(|q| q.index()).collect(),
            };
            let slot = by_start.entry(t.start).or_default();
            for q in qs {
                assert!(!slot.contains(&q), "qubit {q} double-booked at {}", t.start);
                slot.push(q);
            }
        }
    }

    #[test]
    fn per_qubit_order_preserved() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::T, &[0])
            .gate(GateKind::X, &[0])
            .build();
        let s = schedule(&p, &platform(), ScheduleDirection::Asap);
        let kinds: Vec<&Instruction> = s.items().iter().map(|t| &t.instruction).collect();
        assert!(matches!(kinds[0], Instruction::Gate(g) if g.kind == GateKind::H));
        assert!(matches!(kinds[1], Instruction::Gate(g) if g.kind == GateKind::T));
        assert!(matches!(kinds[2], Instruction::Gate(g) if g.kind == GateKind::X));
        let starts: Vec<u64> = s.items().iter().map(|t| t.start).collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn alap_has_same_latency_but_later_starts() {
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::H, &[1])
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::H, &[2]) // independent; ASAP puts it at 0
            .build();
        let asap_s = schedule(&p, &platform(), ScheduleDirection::Asap);
        let alap_s = schedule(&p, &platform(), ScheduleDirection::Alap);
        assert_eq!(asap_s.latency(), alap_s.latency());
        let h2_asap = asap_s
            .items()
            .iter()
            .find(|t| t.instruction.qubits() == vec![cqasm::Qubit(2)])
            .unwrap()
            .start;
        let h2_alap = alap_s
            .items()
            .iter()
            .find(|t| t.instruction.qubits() == vec![cqasm::Qubit(2)])
            .unwrap()
            .start;
        assert_eq!(h2_asap, 0);
        assert!(h2_alap > h2_asap, "ALAP should delay the independent gate");
    }

    #[test]
    fn wait_acts_as_global_barrier() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .instruction(Instruction::Wait(5))
            .gate(GateKind::H, &[1])
            .build();
        let s = schedule(&p, &platform(), ScheduleDirection::Asap);
        // H@0 (dur 1), barrier until 6, second H at 6.
        assert_eq!(s.items()[1].start, 6);
        assert_eq!(s.latency(), 7);
    }

    #[test]
    fn conditional_waits_for_measurement() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .instruction(Instruction::Cond(
                cqasm::Bit(0),
                cqasm::GateApp::new(GateKind::X, vec![cqasm::Qubit(1)]),
            ))
            .build();
        let s = schedule(&p, &platform(), ScheduleDirection::Asap);
        let cond = s
            .items()
            .iter()
            .find(|t| matches!(t.instruction, Instruction::Cond(_, _)))
            .unwrap();
        // H dur 1, measure dur 4 -> bit ready at 5.
        assert_eq!(cond.start, 5);
    }

    #[test]
    fn remeasure_is_not_hoisted_past_conditional_reader() {
        // The second `measure q[0]` overwrites bit 0 while the conditional
        // still has to read the *first* outcome. Gates on qubit 1 push the
        // conditional later than qubit 0 becomes free, so without the
        // write-after-read edge the re-measure would be sorted before the
        // conditional and change the program's semantics.
        let p = Program::builder(2)
            .measure(0)
            .gate(GateKind::X, &[1])
            .gate(GateKind::X, &[1])
            .gate(GateKind::X, &[1])
            .gate(GateKind::X, &[1])
            .gate(GateKind::X, &[1])
            .cond(0, GateKind::X, &[1])
            .measure(0)
            .build();
        let s = schedule(&p, &platform(), ScheduleDirection::Asap);
        let pos = |pred: &dyn Fn(&Instruction) -> bool| {
            s.items().iter().position(|t| pred(&t.instruction)).unwrap()
        };
        let cond_at = pos(&|i| matches!(i, Instruction::Cond(_, _)));
        let last_measure_at = s
            .items()
            .iter()
            .rposition(|t| matches!(t.instruction, Instruction::Measure(_)))
            .unwrap();
        assert!(
            cond_at < last_measure_at,
            "re-measure hoisted past its conditional reader: {:?}",
            s.items()
        );
        let cond = &s.items()[cond_at];
        let rem = &s.items()[last_measure_at];
        assert!(rem.start >= cond.start.saturating_add(cond.duration));
    }

    #[test]
    fn to_program_roundtrip_semantics() {
        use qxsim::Simulator;
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::Cnot, &[1, 2])
            .measure_all()
            .build();
        let s = schedule(&p, &platform(), ScheduleDirection::Asap);
        let sp = s.to_program();
        sp.validate().expect("scheduled program valid");
        let h1 = Simulator::perfect().run_shots(&p, 300).unwrap();
        let h2 = Simulator::perfect().run_shots(&sp, 300).unwrap();
        // Same outcome support (GHZ: only 000 and 111).
        assert_eq!(h1.count(0b010), 0);
        assert_eq!(h2.count(0b010), 0);
        assert!(h2.count(0b000) > 0 && h2.count(0b111) > 0);
    }

    #[test]
    fn to_program_emits_bundles_for_parallel_slots() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::H, &[1])
            .build();
        let s = schedule(&p, &platform(), ScheduleDirection::Asap);
        let sp = s.to_program();
        let first = sp.subcircuits()[0].instructions().first().unwrap();
        assert!(matches!(first, Instruction::Bundle(v) if v.len() == 2));
    }

    #[test]
    fn durations_respected_on_slow_platform() {
        let p = Program::builder(2)
            .gate(GateKind::X90, &[0])
            .gate(GateKind::Cz, &[0, 1])
            .measure(0)
            .build();
        let plat = Platform::semiconducting_linear(2);
        let s = schedule(&p, &plat, ScheduleDirection::Asap);
        // x90: 4 cycles, cz: 8, measure: 50.
        let starts: Vec<u64> = s.items().iter().map(|t| t.start).collect();
        assert_eq!(starts, vec![0, 4, 12]);
        assert_eq!(s.latency(), 62);
    }
}
