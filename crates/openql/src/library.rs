//! A library of standard quantum-algorithm kernels.
//!
//! §2.3 of the paper surveys the application domains that motivate the
//! accelerator — cryptography (Shor's period finding builds on the QFT),
//! search, and "manipulation of a large set of data items to produce a
//! statistical answer". These generators produce the textbook circuits as
//! OpenQL kernels so that every layer of the stack can be exercised with
//! real algorithm structure rather than random gates.

use crate::kernel::Kernel;

/// Appends the quantum Fourier transform on `qubits`, where `qubits[0]`
/// is the *least significant* bit of the transformed index (matching the
/// simulator's basis convention): `QFT|x> = N^{-1/2} sum_y e^{2 pi i xy/N} |y>`.
///
/// Uses `H` plus controlled-phase `CRk` gates — the cQASM primitive named
/// after exactly this use. Includes the final bit-reversal swaps.
pub fn qft(kernel: &mut Kernel, qubits: &[usize]) {
    let n = qubits.len();
    // Process from the most significant (qubits[n-1]) downwards.
    for i in (0..n).rev() {
        kernel.h(qubits[i]);
        for j in (0..i).rev() {
            // Controlled phase 2*pi / 2^(i-j+1), control j, target i.
            kernel.crk(qubits[j], qubits[i], (i - j + 1) as u32);
        }
    }
    // Bit reversal.
    for i in 0..n / 2 {
        kernel.swap(qubits[i], qubits[n - 1 - i]);
    }
}

/// Appends the inverse QFT (exact gate-by-gate reversal of [`qft`]).
pub fn iqft(kernel: &mut Kernel, qubits: &[usize]) {
    let n = qubits.len();
    for i in 0..n / 2 {
        kernel.swap(qubits[i], qubits[n - 1 - i]);
    }
    for i in 0..n {
        for j in 0..i {
            let k = (i - j + 1) as u32;
            let angle = -(2.0 * std::f64::consts::PI) / (1u64 << k) as f64;
            kernel.cr(qubits[j], qubits[i], angle);
        }
        kernel.h(qubits[i]);
    }
}

/// Builds a Bernstein–Vazirani kernel over `n` data qubits plus one
/// ancilla (qubit `n`): one oracle query reveals the hidden bit-string
/// `secret`.
///
/// # Panics
///
/// Panics if `secret >= 2^n`.
pub fn bernstein_vazirani(n: usize, secret: u64) -> Kernel {
    assert!(secret < (1 << n), "secret wider than register");
    let mut k = Kernel::new(format!("bv_{secret:b}"), n + 1);
    // Ancilla in |->.
    k.x(n).h(n);
    for q in 0..n {
        k.h(q);
    }
    // Oracle: CNOT from each secret bit into the ancilla.
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            k.cnot(q, n);
        }
    }
    for q in 0..n {
        k.h(q);
        k.measure(q);
    }
    k
}

/// The Deutsch–Jozsa oracle families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DjOracle {
    /// `f(x) = 0` for all x.
    ConstantZero,
    /// `f(x) = 1` for all x.
    ConstantOne,
    /// `f(x) = x_0 ^ x_1 ^ ...` (parity — balanced).
    BalancedParity,
    /// `f(x) = x_bit` (single-bit projection — balanced).
    BalancedBit(usize),
}

/// Builds a Deutsch–Jozsa kernel over `n` data qubits plus one ancilla.
/// Measuring all-zero on the data register means *constant*.
pub fn deutsch_jozsa(n: usize, oracle: DjOracle) -> Kernel {
    let mut k = Kernel::new("deutsch_jozsa", n + 1);
    k.x(n).h(n);
    for q in 0..n {
        k.h(q);
    }
    match oracle {
        DjOracle::ConstantZero => {}
        DjOracle::ConstantOne => {
            k.x(n);
        }
        DjOracle::BalancedParity => {
            for q in 0..n {
                k.cnot(q, n);
            }
        }
        DjOracle::BalancedBit(bit) => {
            assert!(bit < n, "oracle bit out of range");
            k.cnot(bit, n);
        }
    }
    for q in 0..n {
        k.h(q);
        k.measure(q);
    }
    k
}

/// Appends a GHZ preparation over the given qubits.
pub fn ghz(kernel: &mut Kernel, qubits: &[usize]) {
    if qubits.is_empty() {
        return;
    }
    kernel.h(qubits[0]);
    for w in qubits.windows(2) {
        kernel.cnot(w[0], w[1]);
    }
}

/// Builds a quantum-phase-estimation kernel estimating the phase of
/// `Rz`-like diagonal unitary `U|1> = e^{2 pi i phase}|1>` with
/// `precision` counting qubits. The eigenstate qubit is the last one.
///
/// The measured counting register (read as an integer, LSB = qubit 0)
/// concentrates on `round(phase * 2^precision)`.
pub fn phase_estimation(precision: usize, phase: f64) -> Kernel {
    let n = precision;
    let mut k = Kernel::new("qpe", n + 1);
    // Eigenstate |1> of the diagonal unitary.
    k.x(n);
    for q in 0..n {
        k.h(q);
    }
    // Controlled-U^{2^q}: U = phase gate of angle 2 pi phase; controlled
    // version is CR with the doubled angles.
    for q in 0..n {
        let angle = 2.0 * std::f64::consts::PI * phase * (1u64 << q) as f64;
        k.cr(q, n, angle);
    }
    // Counting qubit q holds weight 2^q, so the register is the
    // LSB-first QFT of |round(phase * 2^n)> — undo it directly.
    let order: Vec<usize> = (0..n).collect();
    iqft(&mut k, &order);
    for q in 0..n {
        k.measure(q);
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::QuantumProgram;
    use qxsim::{Simulator, StateVector};

    fn run(kernel: Kernel, n: usize, shots: u64) -> qxsim::ShotHistogram {
        let mut p = QuantumProgram::new("t", n);
        p.add_kernel(kernel);
        Simulator::perfect()
            .run_shots(&p.to_cqasm(), shots)
            .unwrap()
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let mut k = Kernel::new("qft", 3);
        qft(&mut k, &[0, 1, 2]);
        let mut p = QuantumProgram::new("t", 3);
        p.add_kernel(k);
        let r = Simulator::perfect().run_once(&p.to_cqasm()).unwrap();
        for b in 0..8u64 {
            assert!((r.state.probability_of(b) - 0.125).abs() < 1e-10, "{b}");
        }
    }

    #[test]
    fn qft_followed_by_iqft_is_identity() {
        let mut k = Kernel::new("round", 4);
        // Non-trivial input state.
        k.x(1).x(3).h(0).t(0);
        let mut reference = QuantumProgram::new("ref", 4);
        reference.add_kernel(k.clone());
        let ref_state = Simulator::perfect()
            .run_once(&reference.to_cqasm())
            .unwrap()
            .state;

        qft(&mut k, &[0, 1, 2, 3]);
        iqft(&mut k, &[0, 1, 2, 3]);
        let mut p = QuantumProgram::new("t", 4);
        p.add_kernel(k);
        let state = Simulator::perfect().run_once(&p.to_cqasm()).unwrap().state;
        let f = state.fidelity(&ref_state);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn qft_maps_basis_to_fourier_phases() {
        // QFT|x> has uniform magnitudes with phases e^{2 pi i x y / N}.
        let n = 3;
        let x = 5u64;
        let mut k = Kernel::new("qft", n);
        for q in 0..n {
            if (x >> q) & 1 == 1 {
                k.x(q);
            }
        }
        qft(&mut k, &[0, 1, 2]);
        let mut p = QuantumProgram::new("t", n);
        p.add_kernel(k);
        let state = Simulator::perfect().run_once(&p.to_cqasm()).unwrap().state;
        let dim = 8;
        let expected: Vec<cqasm::math::C64> = (0..dim)
            .map(|y| {
                cqasm::math::C64::cis(
                    2.0 * std::f64::consts::PI * (x as f64) * (y as f64) / dim as f64,
                ) * (1.0 / (dim as f64).sqrt())
            })
            .collect();
        let expected = StateVector::from_amplitudes(expected);
        let f = state.fidelity(&expected);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn bernstein_vazirani_reads_the_secret_in_one_query() {
        for secret in [0b0000u64, 0b1011, 0b1111, 0b0100] {
            let k = bernstein_vazirani(4, secret);
            let hist = run(k, 5, 100);
            // Data bits (0..4) must equal the secret on every shot.
            for (bits, count) in hist.iter() {
                assert_eq!(bits & 0b1111, secret, "secret {secret:04b} x{count}");
            }
        }
    }

    #[test]
    fn deutsch_jozsa_separates_constant_from_balanced() {
        let n = 4;
        for (oracle, constant) in [
            (DjOracle::ConstantZero, true),
            (DjOracle::ConstantOne, true),
            (DjOracle::BalancedParity, false),
            (DjOracle::BalancedBit(2), false),
        ] {
            let k = deutsch_jozsa(n, oracle);
            let hist = run(k, n + 1, 100);
            let all_zero = hist.iter().all(|(bits, _)| bits & ((1 << n) - 1) == 0);
            assert_eq!(all_zero, constant, "{oracle:?}");
        }
    }

    #[test]
    fn ghz_helper_produces_parity_states() {
        let mut k = Kernel::new("g", 4);
        ghz(&mut k, &[0, 1, 2, 3]);
        k.measure_all();
        let hist = run(k, 4, 200);
        assert_eq!(hist.count(0b0101), 0);
        assert!(hist.count(0b0000) > 0 && hist.count(0b1111) > 0);
    }

    #[test]
    fn phase_estimation_recovers_exact_phases() {
        let precision = 4;
        for target in [1u64, 5, 12] {
            let phase = target as f64 / 16.0;
            let k = phase_estimation(precision, phase);
            let hist = run(k, precision + 1, 200);
            // Counting register (bits 0..4) equals target on (almost) all
            // shots for exactly representable phases.
            let top = hist.most_likely().unwrap() & 0b1111;
            assert_eq!(top, target, "phase {phase}");
            assert!(hist.probability(top | (1 << precision)) + hist.probability(top) > 0.95);
        }
    }

    #[test]
    fn phase_estimation_approximates_irrational_phase() {
        let precision = 5;
        let phase = 0.3; // not exactly representable in 5 bits
        let k = phase_estimation(precision, phase);
        let hist = run(k, precision + 1, 400);
        let mask = (1u64 << precision) - 1;
        let expected = (phase * 32.0).round() as u64; // 10
                                                      // The nearest representable value dominates.
        let mut best = (0u64, 0u64);
        for (bits, count) in hist.iter() {
            let v = bits & mask;
            if count > best.1 {
                best = (v, count);
            }
        }
        assert_eq!(best.0, expected, "histogram peak off target");
    }

    #[test]
    fn library_kernels_compile_for_constrained_platforms() {
        use crate::compiler::Compiler;
        use crate::platform::Platform;
        let k = bernstein_vazirani(3, 0b101);
        let mut p = QuantumProgram::new("bv", 4);
        p.add_kernel(k);
        let out = Compiler::new(Platform::superconducting_grid(2, 2))
            .compile(&p)
            .expect("BV compiles to the grid");
        assert!(out.report.output_stats.gates > 0);
    }
}
