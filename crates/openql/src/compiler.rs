//! The OpenQL pass manager: decompose → optimise → map → schedule → emit.
//!
//! This is the compiler of Fig 4 in the paper: it takes quantum logic (a
//! [`crate::QuantumProgram`] or raw cQASM) and produces platform-conforming
//! cQASM — every gate native, every two-qubit gate nearest-neighbour, and
//! every instruction placed in a hardware cycle.

use crate::decompose::decompose;
use crate::error::CompileError;
use crate::kernel::QuantumProgram;
use crate::map::{route, InitialPlacement, Mapping};
use crate::optimize::{optimize, OptimizeReport};
use crate::platform::Platform;
use crate::schedule::{schedule, Schedule, ScheduleDirection};
use crate::verify::{verify_pass, verify_routed_pass};
use cqasm::{CircuitStats, Program};
use qca_telemetry::Telemetry;

/// Options controlling the pass pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerOptions {
    /// Run the peephole optimiser (before and after mapping).
    pub optimize: bool,
    /// Initial placement strategy for the router.
    pub placement: InitialPlacement,
    /// Scheduling direction.
    pub schedule: ScheduleDirection,
    /// Force routing even on fully-connected topologies (the paper notes
    /// perfect-qubit users may still *choose* to impose NN constraints).
    pub force_routing: bool,
    /// Differentially verify each pass preserves circuit semantics (see
    /// [`crate::verify`]). Applies to circuits of up to
    /// [`crate::verify::MAX_VERIFY_QUBITS`] qubits; larger or
    /// non-unitary shapes are skipped, never failed.
    pub verify: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            optimize: true,
            placement: InitialPlacement::GreedyInteraction,
            schedule: ScheduleDirection::Asap,
            force_routing: false,
            verify: false,
        }
    }
}

/// Circuit delta of one compiler pass: what the circuit looked like going
/// in and coming out, plus any SWAPs the pass inserted. Collected for every
/// compilation (the OpenQL paper reports per-pass statistics as a
/// first-class compiler output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name (`decompose`, `optimize`, `route`, `decompose-swaps`,
    /// `optimize-post`, `schedule`).
    pub name: &'static str,
    /// Circuit statistics before the pass.
    pub before: CircuitStats,
    /// Circuit statistics after the pass.
    pub after: CircuitStats,
    /// SWAPs this pass inserted (non-zero only for `route`).
    pub swaps_inserted: usize,
}

impl PassStat {
    /// Gate-count change of the pass (positive = grew the circuit).
    pub fn gate_delta(&self) -> i64 {
        self.after.gates as i64 - self.before.gates as i64
    }

    /// Depth change of the pass (positive = deepened the circuit).
    pub fn depth_delta(&self) -> i64 {
        self.after.depth as i64 - self.before.depth as i64
    }
}

/// What the compiler did, for reporting and for the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileReport {
    /// Statistics of the input program.
    pub input_stats: CircuitStats,
    /// Statistics of the final emitted program.
    pub output_stats: CircuitStats,
    /// SWAPs inserted by the router (0 if routing skipped).
    pub swaps_inserted: usize,
    /// Combined optimiser report across both optimisation runs.
    pub optimizer: OptimizeReport,
    /// Total schedule latency in hardware cycles.
    pub latency_cycles: u64,
    /// Total schedule latency in nanoseconds.
    pub latency_ns: u64,
    /// Schedule latency in cycles under ASAP scheduling (equals
    /// `latency_cycles` when ASAP is the active direction).
    pub cycles_asap: u64,
    /// Schedule latency in cycles under ALAP scheduling.
    pub cycles_alap: u64,
    /// Whether routing ran.
    pub routed: bool,
    /// Number of passes that were differentially verified (0 when
    /// verification is off or every pass was outside the decidable shape).
    pub passes_verified: usize,
    /// Per-pass circuit deltas, in pipeline order.
    pub passes: Vec<PassStat>,
}

/// Result of compilation.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The emitted, scheduled cQASM program (operands in physical space if
    /// routing ran).
    pub program: Program,
    /// The raw schedule (cycle-annotated instructions).
    pub schedule: Schedule,
    /// Logical→physical mapping after the last instruction, when routed.
    pub final_mapping: Option<Mapping>,
    /// Pass report.
    pub report: CompileReport,
}

/// The OpenQL compiler for a fixed platform.
///
/// # Example
///
/// ```
/// use openql::{Compiler, Kernel, Platform, QuantumProgram};
///
/// # fn main() -> Result<(), openql::CompileError> {
/// let mut k = Kernel::new("ghz", 3);
/// k.h(0).cnot(0, 1).cnot(1, 2).measure_all();
/// let mut p = QuantumProgram::new("demo", 3);
/// p.add_kernel(k);
///
/// let compiler = Compiler::new(Platform::superconducting_grid(2, 2));
/// let out = compiler.compile(&p)?;
/// assert!(out.report.latency_cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    platform: Platform,
    options: CompilerOptions,
    telemetry: Telemetry,
}

impl Compiler {
    /// Creates a compiler with default options.
    pub fn new(platform: Platform) -> Self {
        Compiler {
            platform,
            options: CompilerOptions::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Creates a compiler with explicit options.
    pub fn with_options(platform: Platform, options: CompilerOptions) -> Self {
        Compiler {
            platform,
            options,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: each pass then runs under a span
    /// (category `openql`) and the compiler records gate/SWAP counters.
    /// Per-pass circuit deltas are always collected in
    /// [`CompileReport::passes`], telemetry or not.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The target platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The active options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Enables or disables differential pass verification (see
    /// [`crate::verify`]); off by default.
    pub fn with_verification(mut self, enabled: bool) -> Self {
        self.options.verify = enabled;
        self
    }

    /// Compiles an OpenQL program.
    ///
    /// # Errors
    ///
    /// Propagates any pass failure ([`CompileError`]).
    pub fn compile(&self, program: &QuantumProgram) -> Result<CompileOutput, CompileError> {
        self.compile_cqasm(&program.to_cqasm())
    }

    /// Compiles a raw cQASM program.
    ///
    /// # Errors
    ///
    /// Propagates any pass failure ([`CompileError`]).
    pub fn compile_cqasm(&self, input: &Program) -> Result<CompileOutput, CompileError> {
        input.validate()?;
        if input.qubit_count() > self.platform.qubit_count() {
            return Err(CompileError::TooManyQubits {
                needed: input.qubit_count(),
                available: self.platform.qubit_count(),
            });
        }
        let _compile_span = self.telemetry.span("openql", "compile");
        let input_stats = input.stats();
        let mut opt_report = OptimizeReport::default();
        let verify = self.options.verify;
        let mut passes_verified = 0usize;
        let mut passes: Vec<PassStat> = Vec::new();
        // Running "before" stats for the next pass: each pass consumes the
        // previous pass's "after", so stats are computed once per program.
        let mut stats_in = input_stats;
        let mut record = |name: &'static str, after: CircuitStats, swaps: usize| {
            passes.push(PassStat {
                name,
                before: stats_in,
                after,
                swaps_inserted: swaps,
            });
            stats_in = after;
        };

        // 1. Decompose to the native gate set.
        let mut current = {
            let _span = self.telemetry.span("openql", "decompose");
            decompose(input, self.platform.gate_set())?
        };
        record("decompose", current.stats(), 0);
        if verify {
            passes_verified += usize::from(verify_pass(input, &current, "decompose")?);
        }

        // 2. Optimise.
        if self.options.optimize {
            let (p, r) = {
                let _span = self.telemetry.span("openql", "optimize");
                optimize(&current)
            };
            record("optimize", p.stats(), 0);
            if verify {
                passes_verified += usize::from(verify_pass(&current, &p, "optimize")?);
            }
            current = p;
            opt_report = merge(opt_report, r);
        }

        // 3. Map (skip when every pair is already adjacent, unless forced).
        let topo = self.platform.topology();
        let fully_connected =
            topo.edge_count() == topo.qubit_count() * (topo.qubit_count().saturating_sub(1)) / 2;
        let needs_routing = self.options.force_routing || !fully_connected;
        let mut final_mapping = None;
        let mut swaps_inserted = 0;
        if needs_routing {
            let routed = {
                let _span = self.telemetry.span("openql", "route");
                route(&current, topo, self.options.placement)?
            };
            record("route", routed.program.stats(), routed.swaps_inserted);
            if verify {
                passes_verified += usize::from(verify_routed_pass(
                    &current,
                    &routed.program,
                    &routed.initial,
                    &routed.final_mapping,
                    "map",
                )?);
            }
            swaps_inserted = routed.swaps_inserted;
            final_mapping = Some(routed.final_mapping);
            // Router introduces SWAPs; lower them to native gates.
            current = {
                let _span = self.telemetry.span("openql", "decompose-swaps");
                decompose(&routed.program, self.platform.gate_set())?
            };
            record("decompose-swaps", current.stats(), 0);
            if verify {
                passes_verified +=
                    usize::from(verify_pass(&routed.program, &current, "decompose-swaps")?);
            }
            if self.options.optimize {
                let (p, r) = {
                    let _span = self.telemetry.span("openql", "optimize-post");
                    optimize(&current)
                };
                record("optimize-post", p.stats(), 0);
                if verify {
                    passes_verified += usize::from(verify_pass(&current, &p, "optimize")?);
                }
                current = p;
                opt_report = merge(opt_report, r);
            }
        }

        // 4. Schedule (and record the latency under both directions — the
        // ASAP/ALAP spread bounds the slack available to a scheduler).
        let sched = {
            let _span = self.telemetry.span("openql", "schedule");
            schedule(&current, &self.platform, self.options.schedule)
        };
        let other_direction = match self.options.schedule {
            ScheduleDirection::Asap => ScheduleDirection::Alap,
            ScheduleDirection::Alap => ScheduleDirection::Asap,
        };
        let other_latency = schedule(&current, &self.platform, other_direction).latency();
        let (cycles_asap, cycles_alap) = match self.options.schedule {
            ScheduleDirection::Asap => (sched.latency(), other_latency),
            ScheduleDirection::Alap => (other_latency, sched.latency()),
        };
        let emitted = sched.to_program();
        emitted.validate()?;
        record("schedule", emitted.stats(), 0);
        if verify {
            passes_verified += usize::from(verify_pass(&current, &emitted, "schedule")?);
        }

        let output_stats = emitted.stats();
        if self.telemetry.is_enabled() {
            self.telemetry.incr("openql.compilations", 1);
            self.telemetry
                .incr("openql.gates.input", input_stats.gates as u64);
            self.telemetry
                .incr("openql.gates.output", output_stats.gates as u64);
            self.telemetry
                .incr("openql.swaps_inserted", swaps_inserted as u64);
            for p in &passes {
                self.telemetry.incr_labeled("openql.pass_runs", p.name, 1);
            }
        }
        let report = CompileReport {
            input_stats,
            output_stats,
            swaps_inserted,
            optimizer: opt_report,
            latency_cycles: sched.latency(),
            latency_ns: sched
                .latency()
                .saturating_mul(self.platform.cycle_time_ns()),
            cycles_asap,
            cycles_alap,
            routed: needs_routing,
            passes_verified,
            passes,
        };
        Ok(CompileOutput {
            program: emitted,
            schedule: sched,
            final_mapping,
            report,
        })
    }
}

fn merge(a: OptimizeReport, b: OptimizeReport) -> OptimizeReport {
    OptimizeReport {
        cancelled: a.cancelled + b.cancelled,
        merged: a.merged + b.merged,
        dropped_identities: a.dropped_identities + b.dropped_identities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use qxsim::Simulator;

    fn ghz_program(n: usize) -> QuantumProgram {
        let mut k = Kernel::new("ghz", n);
        k.h(0);
        for q in 0..n - 1 {
            k.cnot(q, q + 1);
        }
        k.measure_all();
        let mut p = QuantumProgram::new("ghz", n);
        p.add_kernel(k);
        p
    }

    #[test]
    fn perfect_platform_skips_routing() {
        let out = Compiler::new(Platform::perfect(4))
            .compile(&ghz_program(4))
            .unwrap();
        assert!(!out.report.routed);
        assert_eq!(out.report.swaps_inserted, 0);
        assert!(out.final_mapping.is_none());
    }

    #[test]
    fn superconducting_pipeline_produces_native_nn_gates() {
        let plat = Platform::superconducting_grid(2, 2);
        let out = Compiler::new(plat.clone())
            .compile(&ghz_program(4))
            .unwrap();
        assert!(out.report.routed);
        for ins in out.program.flat_instructions() {
            check_native_nn(ins, &plat);
        }
    }

    fn check_native_nn(ins: &cqasm::Instruction, plat: &Platform) {
        match ins {
            cqasm::Instruction::Gate(g) | cqasm::Instruction::Cond(_, g) => {
                assert!(
                    plat.gate_set().accepts(&g.kind),
                    "non-native gate {} emitted",
                    g.kind
                );
                if g.qubits.len() == 2 {
                    assert!(
                        plat.topology()
                            .are_adjacent(g.qubits[0].index(), g.qubits[1].index()),
                        "non-NN gate emitted"
                    );
                }
            }
            cqasm::Instruction::Bundle(v) => {
                for i in v {
                    check_native_nn(i, plat);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn compiled_ghz_still_produces_ghz_statistics() {
        // On the grid with identity-correlated mapping we must decode
        // through the final mapping; use measure_all and check only the
        // two-outcome support size after decoding.
        let plat = Platform::superconducting_grid(2, 2);
        let out = Compiler::new(plat).compile(&ghz_program(4)).unwrap();
        let hist = Simulator::perfect().run_shots(&out.program, 400).unwrap();
        let mapping = out.final_mapping.expect("routed");
        // Decode physical bitstrings back to logical.
        let mut logical_outcomes = std::collections::BTreeSet::new();
        for (bits, _) in hist.iter() {
            let mut logical = 0u64;
            for l in 0..4 {
                if (bits >> mapping.physical(l)) & 1 == 1 {
                    logical |= 1 << l;
                }
            }
            logical_outcomes.insert(logical);
        }
        assert_eq!(
            logical_outcomes.into_iter().collect::<Vec<_>>(),
            vec![0b0000, 0b1111],
            "GHZ support destroyed by compilation"
        );
    }

    #[test]
    fn report_counts_are_consistent() {
        let out = Compiler::new(Platform::superconducting_grid(3, 3))
            .compile(&ghz_program(5))
            .unwrap();
        let r = &out.report;
        assert!(
            r.output_stats.gates >= r.input_stats.gates,
            "CZ-basis decomposition grows gate count"
        );
        assert!(r.latency_cycles > 0);
        assert_eq!(r.latency_ns, r.latency_cycles * 20);
    }

    #[test]
    fn per_pass_stats_cover_the_pipeline() {
        let out = Compiler::new(Platform::superconducting_grid(2, 2))
            .compile(&ghz_program(4))
            .unwrap();
        let names: Vec<&str> = out.report.passes.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "decompose",
                "optimize",
                "route",
                "decompose-swaps",
                "optimize-post",
                "schedule"
            ]
        );
        // Deltas chain: each pass's "before" is the previous "after".
        for w in out.report.passes.windows(2) {
            assert_eq!(w[0].after, w[1].before);
        }
        assert_eq!(out.report.passes[0].before, out.report.input_stats);
        assert_eq!(
            out.report.passes.last().unwrap().after,
            out.report.output_stats
        );
        // The router's SWAPs appear on the route pass, and only there.
        let route = &out.report.passes[2];
        assert_eq!(route.swaps_inserted, out.report.swaps_inserted);
        assert!(out
            .report
            .passes
            .iter()
            .all(|p| p.name == "route" || p.swaps_inserted == 0));
    }

    #[test]
    fn asap_and_alap_cycles_are_both_reported() {
        let opts = |dir| CompilerOptions {
            schedule: dir,
            ..Default::default()
        };
        let plat = Platform::superconducting_grid(2, 2);
        let asap = Compiler::with_options(plat.clone(), opts(ScheduleDirection::Asap))
            .compile(&ghz_program(4))
            .unwrap();
        let alap = Compiler::with_options(plat, opts(ScheduleDirection::Alap))
            .compile(&ghz_program(4))
            .unwrap();
        assert_eq!(asap.report.latency_cycles, asap.report.cycles_asap);
        assert_eq!(alap.report.latency_cycles, alap.report.cycles_alap);
        // The two compilers agree on both numbers: the metrics describe the
        // circuit, not the active direction.
        assert_eq!(asap.report.cycles_asap, alap.report.cycles_asap);
        assert_eq!(asap.report.cycles_alap, alap.report.cycles_alap);
        assert!(asap.report.cycles_asap > 0 && asap.report.cycles_alap > 0);
    }

    #[test]
    fn compiler_telemetry_records_pass_spans_and_counters() {
        let tel = qca_telemetry::Telemetry::enabled();
        Compiler::new(Platform::superconducting_grid(2, 2))
            .with_telemetry(tel.clone())
            .compile(&ghz_program(4))
            .unwrap();
        let snap = tel.snapshot();
        for pass in ["decompose", "optimize", "route", "schedule"] {
            assert!(
                snap.spans
                    .iter()
                    .any(|s| s.cat == "openql" && s.name == pass),
                "missing span for pass {pass}"
            );
        }
        // Pass spans nest under the `compile` root span.
        let root = snap.spans.iter().position(|s| s.name == "compile").unwrap();
        assert!(snap
            .spans
            .iter()
            .filter(|s| s.name == "decompose")
            .all(|s| s.parent == Some(root)));
        assert_eq!(snap.counters.get("openql.compilations"), Some(&1));
        assert!(snap.labeled.contains_key("openql.pass_runs"));
    }

    #[test]
    fn too_large_program_rejected() {
        let err = Compiler::new(Platform::perfect(2))
            .compile(&ghz_program(5))
            .unwrap_err();
        assert!(matches!(err, CompileError::TooManyQubits { .. }));
    }

    #[test]
    fn optimizer_toggle() {
        let mut k = Kernel::new("k", 1);
        k.h(0).h(0).x(0);
        let mut p = QuantumProgram::new("p", 1);
        p.add_kernel(k);
        let with_opt = Compiler::new(Platform::perfect(1)).compile(&p).unwrap();
        let without = Compiler::with_options(
            Platform::perfect(1),
            CompilerOptions {
                optimize: false,
                ..Default::default()
            },
        )
        .compile(&p)
        .unwrap();
        assert!(with_opt.report.output_stats.gates < without.report.output_stats.gates);
        assert!(with_opt.report.optimizer.total_removed() > 0);
    }

    #[test]
    fn force_routing_on_fully_connected() {
        let out = Compiler::with_options(
            Platform::perfect(3),
            CompilerOptions {
                force_routing: true,
                ..Default::default()
            },
        )
        .compile(&ghz_program(3))
        .unwrap();
        assert!(out.report.routed);
        assert!(out.final_mapping.is_some());
    }

    #[test]
    fn toffoli_compiles_to_constrained_target() {
        let mut k = Kernel::new("k", 3);
        k.toffoli(0, 1, 2).measure_all();
        let mut p = QuantumProgram::new("p", 3);
        p.add_kernel(k);
        let plat = Platform::superconducting_grid(2, 2);
        let out = Compiler::new(plat.clone()).compile(&p).unwrap();
        for ins in out.program.flat_instructions() {
            check_native_nn(ins, &plat);
        }
        assert_eq!(out.report.output_stats.multi_qubit_gates, 0);
    }

    #[test]
    fn verification_passes_on_real_pipelines() {
        // Routed superconducting target and unrouted perfect target, with
        // verification on: every decidable pass must check out.
        for (plat, qubits) in [
            (Platform::superconducting_grid(2, 2), 4),
            (Platform::perfect(4), 4),
            (Platform::semiconducting_linear(4), 4),
        ] {
            let out = Compiler::new(plat.clone())
                .with_verification(true)
                .compile(&ghz_program(qubits))
                .unwrap_or_else(|e| panic!("{}: {e}", plat.name()));
            assert!(
                out.report.passes_verified > 0,
                "{}: nothing verified",
                plat.name()
            );
        }
    }

    #[test]
    fn verification_off_reports_zero_passes() {
        let out = Compiler::new(Platform::perfect(3))
            .compile(&ghz_program(3))
            .unwrap();
        assert_eq!(out.report.passes_verified, 0);
    }

    #[test]
    fn raw_cqasm_entry_point() {
        let src = "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n";
        let input = Program::parse(src).unwrap();
        let out = Compiler::new(Platform::perfect(2))
            .compile_cqasm(&input)
            .unwrap();
        assert_eq!(out.report.input_stats.gates, 2);
    }

    #[test]
    fn retargeting_changes_latency_not_correctness() {
        let sc = Compiler::new(Platform::superconducting_grid(2, 2))
            .compile(&ghz_program(4))
            .unwrap();
        let spin = Compiler::new(Platform::semiconducting_linear(4))
            .compile(&ghz_program(4))
            .unwrap();
        // Same logical program, two technologies: both compile, but the
        // slower technology takes more nanoseconds.
        assert!(spin.report.latency_ns > sc.report.latency_ns);
    }
}
