//! Monte-Carlo estimation of logical error rates.
//!
//! The deliverable behind the paper's realistic-qubit track: how the
//! logical failure probability of a code+decoder falls (or fails to fall)
//! with the physical error rate, and where the pseudo-threshold sits.

use crate::code::{PauliError, StabilizerCode};
use crate::decoder::{decode_x_errors, decode_z_errors, LookupDecoder};
use crate::surface::SurfaceCode;
use crate::tableau::Tableau;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise model for code-capacity Monte-Carlo runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseKind {
    /// Independent X flips with probability `p` per data qubit.
    BitFlip,
    /// Independent Z flips with probability `p` per data qubit.
    PhaseFlip,
    /// Depolarizing: each qubit suffers X, Y or Z with probability `p/3`
    /// each.
    Depolarizing,
}

/// Samples an error over `n` qubits.
pub fn sample_error<R: Rng + ?Sized>(n: usize, p: f64, kind: NoiseKind, rng: &mut R) -> PauliError {
    let mut e = PauliError::identity(n);
    for q in 0..n {
        match kind {
            NoiseKind::BitFlip => {
                if rng.gen_bool(p) {
                    e.x[q] = true;
                }
            }
            NoiseKind::PhaseFlip => {
                if rng.gen_bool(p) {
                    e.z[q] = true;
                }
            }
            NoiseKind::Depolarizing => {
                if rng.gen_bool(p) {
                    match rng.gen_range(0..3) {
                        0 => e.x[q] = true,
                        1 => e.z[q] = true,
                        _ => {
                            e.x[q] = true;
                            e.z[q] = true;
                        }
                    }
                }
            }
        }
    }
    e
}

/// Logical error rate of a small code with its exact lookup decoder.
pub fn code_logical_error_rate(
    code: &StabilizerCode,
    p: f64,
    kind: NoiseKind,
    trials: u64,
    seed: u64,
) -> f64 {
    let decoder = LookupDecoder::for_code(code);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u64;
    for _ in 0..trials {
        let e = sample_error(code.data_qubits(), p, kind, &mut rng);
        let mut residual = e.clone();
        residual.compose(&decoder.decode(&code.syndrome(&e)));
        // If the decoder left a syndrome (uncorrectable weight), count as
        // failure outright.
        if !code.syndrome(&residual).is_trivial() || code.is_logical_error(&residual) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

/// Logical X-failure rate of the surface code under bit-flip noise with
/// the greedy matching decoder.
pub fn surface_logical_error_rate(d: usize, p: f64, trials: u64, seed: u64) -> f64 {
    let code = SurfaceCode::new(d);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u64;
    for _ in 0..trials {
        let e = sample_error(code.data_qubits(), p, NoiseKind::BitFlip, &mut rng);
        let corr = decode_x_errors(&code, &code.x_error_defects(&e));
        let mut residual = e.clone();
        residual.compose(&corr);
        debug_assert!(code.x_error_defects(&residual).is_empty());
        if residual.x_parity(code.logical_z()) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

/// Executes one ancilla-based ESM round for the X component of `error`
/// on a stabilizer tableau — reset, CNOT fan-in, ancilla measurement per
/// Z-check, exactly the served `esm_program` circuit — and returns the
/// fired defect positions. The reused ancilla draws one coin per check
/// (always deterministic here), mirroring the serving engines' draw
/// contract.
fn circuit_defects<R: Rng + ?Sized>(
    code: &SurfaceCode,
    error: &PauliError,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    let n = code.data_qubits();
    let anc = n;
    let mut t = Tableau::zero_state(n + 1);
    let mut x_mask = error.x.clone();
    x_mask.push(false);
    let z_mask = vec![false; n + 1];
    t.apply_pauli_masks(&x_mask, &z_mask);
    let mut defects = Vec::new();
    for (pos, support) in code.z_checks_with_pos() {
        for &dq in support {
            t.cnot(dq, anc);
        }
        let outcome = rng.gen_bool(t.probability_one(anc));
        let realised = t.measure_given(anc, outcome);
        if realised {
            defects.push(*pos);
            // prep_z for the next check: flip the measured |1> back down.
            t.x_gate(anc);
        }
    }
    defects
}

/// Circuit-level logical X-failure rate of the surface code: each trial
/// injects independent X flips on the data register, *executes* a full
/// ESM round on the stabilizer tableau (the same circuit shape the
/// serving stack runs per ESM-round shot), decodes the measured defects
/// with the matching decoder and checks the residual against the logical
/// operator.
///
/// With perfect gates the measured syndrome equals the algebraic one, so
/// this converges to [`surface_logical_error_rate`]; the point is the
/// workload: its trials/sec is the tableau cost the service pays per
/// ESM-round shot, which the `BENCH_qxsim.json` stabilizer row tracks.
pub fn surface_circuit_error_rate(d: usize, p: f64, trials: u64, seed: u64) -> f64 {
    let code = SurfaceCode::new(d);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u64;
    for _ in 0..trials {
        let e = sample_error(code.data_qubits(), p, NoiseKind::BitFlip, &mut rng);
        let defects = circuit_defects(&code, &e, &mut rng);
        let corr = decode_x_errors(&code, &defects);
        let mut residual = e.clone();
        residual.compose(&corr);
        if residual.x_parity(code.logical_z()) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

/// Logical Z-failure rate of the surface code under phase-flip noise.
pub fn surface_logical_phase_error_rate(d: usize, p: f64, trials: u64, seed: u64) -> f64 {
    let code = SurfaceCode::new(d);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u64;
    for _ in 0..trials {
        let e = sample_error(code.data_qubits(), p, NoiseKind::PhaseFlip, &mut rng);
        let corr = decode_z_errors(&code, &code.z_error_defects(&e));
        let mut residual = e.clone();
        residual.compose(&corr);
        if residual.z_parity(code.logical_x()) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_never_fails() {
        assert_eq!(surface_logical_error_rate(3, 0.0, 200, 1), 0.0);
        let rep = StabilizerCode::repetition(3);
        assert_eq!(
            code_logical_error_rate(&rep, 0.0, NoiseKind::BitFlip, 200, 1),
            0.0
        );
    }

    #[test]
    fn repetition_suppresses_bit_flips_quadratically() {
        let rep = StabilizerCode::repetition(3);
        let p = 0.05;
        let rate = code_logical_error_rate(&rep, p, NoiseKind::BitFlip, 30_000, 2);
        // Exact: 3p^2(1-p) + p^3 ~ 0.00725.
        let exact = 3.0 * p * p * (1.0 - p) + p * p * p;
        assert!((rate - exact).abs() < 0.003, "rate {rate} vs exact {exact}");
    }

    #[test]
    fn repetition_does_not_protect_against_phase_flips() {
        let rep = StabilizerCode::repetition(3);
        let p = 0.05;
        let rate = code_logical_error_rate(&rep, p, NoiseKind::PhaseFlip, 20_000, 3);
        // Any single Z flip is an undetected logical error: rate ~ 1-(1-p)^3 ~ 0.14.
        assert!(rate > 0.10, "rate {rate}");
    }

    #[test]
    fn steane_beats_physical_rate_below_pseudothreshold() {
        let steane = StabilizerCode::steane();
        let p = 0.01;
        let rate = code_logical_error_rate(&steane, p, NoiseKind::Depolarizing, 30_000, 4);
        assert!(rate < p, "logical {rate} should beat physical {p}");
    }

    #[test]
    fn surface_code_below_threshold_improves_with_distance() {
        let p = 0.02;
        let r3 = surface_logical_error_rate(3, p, 4_000, 5);
        let r7 = surface_logical_error_rate(7, p, 4_000, 5);
        assert!(
            r7 < r3,
            "distance should help below threshold: d3={r3}, d7={r7}"
        );
    }

    #[test]
    fn surface_code_above_threshold_gets_worse_with_distance() {
        let p = 0.35;
        let r3 = surface_logical_error_rate(3, p, 2_000, 6);
        let r7 = surface_logical_error_rate(7, p, 2_000, 6);
        assert!(
            r7 > r3 * 0.8,
            "far above threshold distance must not help: d3={r3}, d7={r7}"
        );
    }

    #[test]
    fn phase_flip_dual_behaves_like_bit_flip() {
        let p = 0.02;
        let rx = surface_logical_error_rate(3, p, 4_000, 7);
        let rz = surface_logical_phase_error_rate(3, p, 4_000, 7);
        // Dual lattices: rates should be within a small factor.
        assert!((rx - rz).abs() < 0.05, "x {rx} vs z {rz}");
    }

    #[test]
    fn circuit_esm_round_measures_the_algebraic_syndrome() {
        let code = SurfaceCode::new(3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..40 {
            let e = sample_error(code.data_qubits(), 0.15, NoiseKind::BitFlip, &mut rng);
            let measured = circuit_defects(&code, &e, &mut rng);
            assert_eq!(measured, code.x_error_defects(&e));
        }
    }

    #[test]
    fn circuit_level_rate_matches_code_capacity() {
        assert_eq!(surface_circuit_error_rate(3, 0.0, 100, 1), 0.0);
        let p = 0.04;
        let circuit = surface_circuit_error_rate(3, p, 3_000, 10);
        let algebraic = surface_logical_error_rate(3, p, 3_000, 11);
        assert!(
            (circuit - algebraic).abs() < 0.02,
            "circuit {circuit} vs algebraic {algebraic}"
        );
    }

    #[test]
    fn depolarizing_sampler_statistics() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut weight = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            weight += sample_error(10, 0.3, NoiseKind::Depolarizing, &mut rng).weight();
        }
        let mean = weight as f64 / trials as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean weight {mean}");
    }
}
