//! A CHP-style stabilizer simulator (Gottesman–Knill / Aaronson–Gottesman).
//!
//! Clifford circuits on thousands of qubits simulate in polynomial time,
//! which is what makes studying error-correction circuits tractable: the
//! paper's "realistic qubit" track requires processing "a very large graph
//! ... in real-time" of syndrome measurements (§2.1), far beyond
//! state-vector reach. The tableau tracks `2n` Pauli generators
//! (destabilizers and stabilizers) plus sign bits.

use rand::Rng;

/// A stabilizer state of `n` qubits.
///
/// Supports the Clifford gates `H`, `S`, `CNOT` (and the Paulis derived
/// from them) plus Z-basis measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    /// `x[i][j]`: row `i` has an X component on qubit `j`.
    x: Vec<Vec<bool>>,
    /// `z[i][j]`: row `i` has a Z component on qubit `j`.
    z: Vec<Vec<bool>>,
    /// Sign bit per row (`true` = negative).
    r: Vec<bool>,
}

impl Tableau {
    /// The state `|0...0>`: destabilizers `X_i`, stabilizers `Z_i`.
    pub fn zero_state(n: usize) -> Self {
        let rows = 2 * n + 1; // last row is measurement scratch
        let mut t = Tableau {
            n,
            x: vec![vec![false; n]; rows],
            z: vec![vec![false; n]; rows],
            r: vec![false; rows],
        };
        for i in 0..n {
            t.x[i][i] = true; // destabilizer X_i
            t.z[n + i][i] = true; // stabilizer Z_i
        }
        t
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] && self.z[i][q];
            std::mem::swap(&mut self.x[i][q], &mut self.z[i][q]);
        }
    }

    /// Phase gate on `q`.
    pub fn s(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] && self.z[i][q];
            self.z[i][q] ^= self.x[i][q];
        }
    }

    /// Inverse phase gate on `q` (`S S S`).
    pub fn sdag(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// CNOT with control `c` and target `t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][c] && self.z[i][t] && (self.x[i][t] == self.z[i][c]);
            self.x[i][t] ^= self.x[i][c];
            self.z[i][c] ^= self.z[i][t];
        }
    }

    /// CZ via `H(t); CNOT(c,t); H(t)`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cnot(a, b);
        self.h(b);
    }

    /// Pauli-X on `q`.
    pub fn x_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i][q];
        }
    }

    /// Pauli-Z on `q`.
    pub fn z_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q];
        }
    }

    /// Pauli-Y on `q`.
    pub fn y_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] ^ self.z[i][q];
        }
    }

    /// SWAP of `a` and `b` (three CNOTs).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cnot(a, b);
        self.cnot(b, a);
        self.cnot(a, b);
    }

    /// `Rx(pi/2)` up to global phase: conjugation sends `Z -> -Y`,
    /// `Y -> Z`, `X -> X`, which is exactly `H S H`.
    pub fn x90(&mut self, q: usize) {
        self.h(q);
        self.s(q);
        self.h(q);
    }

    /// `Rx(-pi/2)` up to global phase (`H S^dag H`): `Z -> Y`, `Y -> -Z`.
    pub fn mx90(&mut self, q: usize) {
        self.h(q);
        self.sdag(q);
        self.h(q);
    }

    /// `Ry(pi/2)` up to global phase (`Z` then `H`): `X -> -Z`, `Z -> X`,
    /// `Y -> Y`.
    pub fn y90(&mut self, q: usize) {
        self.z_gate(q);
        self.h(q);
    }

    /// `Ry(-pi/2)` up to global phase (`H` then `Z`): `X -> Z`, `Z -> -X`,
    /// `Y -> Y`.
    pub fn my90(&mut self, q: usize) {
        self.h(q);
        self.z_gate(q);
    }

    /// Measures qubit `q` in the Z basis, collapsing the state.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        match self.anticommuting_stabilizer(q) {
            Some(p) => {
                let outcome = rng.gen_bool(0.5);
                self.collapse_random(q, p, outcome);
                outcome
            }
            None => self.deterministic_outcome(q),
        }
    }

    /// Measures qubit `q`, resolving a random outcome to `random_outcome`
    /// instead of drawing it from an RNG. Returns the realised outcome:
    /// `random_outcome` when the measurement is random, the deterministic
    /// value (ignoring `random_outcome`) otherwise.
    ///
    /// This is the forced-collapse primitive the stabilizer *engines* build
    /// on: they draw the outcome themselves (`gen_bool(p)` with `p` in
    /// `{0, 1/2, 1}`) so their RNG consumption matches the state-vector
    /// engine draw for draw.
    pub fn measure_given(&mut self, q: usize, random_outcome: bool) -> bool {
        match self.anticommuting_stabilizer(q) {
            Some(p) => {
                self.collapse_random(q, p, random_outcome);
                random_outcome
            }
            None => self.deterministic_outcome(q),
        }
    }

    /// The first stabilizer row anticommuting with `Z_q`, if any — the
    /// measurement of `q` is random exactly when one exists.
    fn anticommuting_stabilizer(&self, q: usize) -> Option<usize> {
        (self.n..2 * self.n).find(|&i| self.x[i][q])
    }

    /// The Aaronson–Gottesman random-outcome collapse: stabilizer row `p`
    /// anticommutes with `Z_q`; every other anticommuting row absorbs it,
    /// the destabilizer `p - n` becomes the old row `p`, and row `p`
    /// becomes `(+/-) Z_q` with sign `outcome`.
    fn collapse_random(&mut self, q: usize, p: usize, outcome: bool) {
        let n = self.n;
        for i in 0..2 * n {
            if i != p && self.x[i][q] {
                self.rowsum(i, p);
            }
        }
        self.x[p - n] = self.x[p].clone();
        self.z[p - n] = self.z[p].clone();
        self.r[p - n] = self.r[p];
        for j in 0..n {
            self.x[p][j] = false;
            self.z[p][j] = false;
        }
        self.z[p][q] = true;
        self.r[p] = outcome;
    }

    /// Symbolically measures the qubits `qs` in order, returning one
    /// [`MeasureRecord`] per position.
    ///
    /// Exploits two structural facts of Gottesman–Knill measurement:
    /// *which* positions come out random is independent of the realised
    /// outcomes (the x/z halves of the tableau evolve outcome-independently
    /// — only sign bits differ between outcome branches), and every
    /// deterministic outcome is an XOR-affine function of the earlier
    /// random outcomes (the `rowsum` phase is linear in the sign bits mod
    /// 2). One symbolic pass therefore captures the full outcome tree: the
    /// Pauli-frame sampler replays it per shot with pure bit operations.
    ///
    /// The tableau is consumed: afterwards it holds the collapse under the
    /// all-zeros variable assignment. Returns `None` when the sequence
    /// needs more than 64 random outcome variables (dependence masks are
    /// `u64`-packed).
    pub fn measure_layout(&mut self, qs: &[usize]) -> Option<Vec<MeasureRecord>> {
        let mut tracker = self.begin_layout();
        let mut records = Vec::with_capacity(qs.len());
        for &q in qs {
            records.push(self.measure_symbolic(q, &mut tracker)?);
        }
        Some(records)
    }

    /// Starts an incremental symbolic-measurement pass (see
    /// [`Tableau::measure_symbolic`]).
    pub fn begin_layout(&self) -> LayoutTracker {
        LayoutTracker {
            deps: vec![0u64; 2 * self.n + 1],
            vars: 0,
        }
    }

    /// One step of a symbolic-measurement pass: measures `q`, resolving a
    /// random outcome to a fresh symbolic variable instead of a concrete
    /// bit. Returns `None` once the pass needs more than 64 variables
    /// (dependence masks are `u64`-packed).
    ///
    /// Clifford gates may be applied to the tableau *between* steps of a
    /// pass and the tracker stays valid: a gate's sign update for row `i`
    /// is a function of that row's x/z bits only, and the x/z halves are
    /// identical in every outcome branch (only signs differ, by the
    /// tracked XOR-affine functions), so gates flip the same signs in
    /// every branch and the dependence masks ride along unchanged.
    pub fn measure_symbolic(
        &mut self,
        q: usize,
        tracker: &mut LayoutTracker,
    ) -> Option<MeasureRecord> {
        let n = self.n;
        let deps = &mut tracker.deps;
        match self.anticommuting_stabilizer(q) {
            Some(p) => {
                if tracker.vars >= 64 {
                    return None;
                }
                // collapse_random under the base (all-zeros) assignment,
                // with the dependence masks mirroring every sign update:
                // rowsum sets r_h' = r_h ^ r_i ^ c with c a function of
                // the x/z parts only, so deps combine by XOR.
                for i in 0..2 * n {
                    if i != p && self.x[i][q] {
                        self.rowsum(i, p);
                        deps[i] ^= deps[p];
                    }
                }
                self.x[p - n] = self.x[p].clone();
                self.z[p - n] = self.z[p].clone();
                self.r[p - n] = self.r[p];
                deps[p - n] = deps[p];
                for j in 0..n {
                    self.x[p][j] = false;
                    self.z[p][j] = false;
                }
                self.z[p][q] = true;
                self.r[p] = false; // base assignment: the variable is 0
                deps[p] = 1u64 << tracker.vars;
                let record = MeasureRecord {
                    random: true,
                    base: false,
                    deps: 1u64 << tracker.vars,
                };
                tracker.vars += 1;
                Some(record)
            }
            None => {
                let scratch = 2 * n;
                for j in 0..n {
                    self.x[scratch][j] = false;
                    self.z[scratch][j] = false;
                }
                self.r[scratch] = false;
                deps[scratch] = 0;
                for i in 0..n {
                    if self.x[i][q] {
                        self.rowsum(scratch, i + n);
                        deps[scratch] ^= deps[i + n];
                    }
                }
                Some(MeasureRecord {
                    random: false,
                    base: self.r[scratch],
                    deps: deps[scratch],
                })
            }
        }
    }

    /// The outcome of measuring `q` when it is deterministic (no stabilizer
    /// anticommutes with `Z_q`). Does not modify the state.
    pub fn deterministic_outcome(&mut self, q: usize) -> bool {
        let n = self.n;
        let scratch = 2 * n;
        for j in 0..n {
            self.x[scratch][j] = false;
            self.z[scratch][j] = false;
        }
        self.r[scratch] = false;
        for i in 0..n {
            if self.x[i][q] {
                self.rowsum(scratch, i + n);
            }
        }
        self.r[scratch]
    }

    /// Whether measuring `q` would give a random outcome.
    pub fn is_random(&self, q: usize) -> bool {
        (self.n..2 * self.n).any(|i| self.x[i][q])
    }

    /// Expectation that the qubit measures 1: exactly 0, 1, or 0.5.
    pub fn probability_one(&mut self, q: usize) -> f64 {
        if self.is_random(q) {
            0.5
        } else if self.deterministic_outcome(q) {
            1.0
        } else {
            0.0
        }
    }

    /// Row multiplication `row_h <- row_h * row_i`, tracking the phase.
    fn rowsum(&mut self, h: usize, i: usize) {
        // Phase exponent accumulates mod 4; stored r bits are mod-2 signs.
        let mut g_sum: i32 = 2 * (self.r[h] as i32) + 2 * (self.r[i] as i32);
        for j in 0..self.n {
            g_sum += g(self.x[i][j], self.z[i][j], self.x[h][j], self.z[h][j]);
        }
        self.r[h] = g_sum.rem_euclid(4) == 2;
        for j in 0..self.n {
            self.x[h][j] ^= self.x[i][j];
            self.z[h][j] ^= self.z[i][j];
        }
    }

    /// Applies an X/Z error pattern (used for Pauli error injection in
    /// error-correction studies): bit `q` of `x_mask` applies `X_q`, bit
    /// `q` of `z_mask` applies `Z_q`.
    pub fn apply_pauli_masks(&mut self, x_mask: &[bool], z_mask: &[bool]) {
        for q in 0..self.n {
            if x_mask[q] {
                self.x_gate(q);
            }
            if z_mask[q] {
                self.z_gate(q);
            }
        }
    }
}

/// State of an incremental symbolic-measurement pass (see
/// [`Tableau::measure_symbolic`]): the per-row variable-dependence masks
/// and the number of outcome variables allocated so far.
#[derive(Debug, Clone)]
pub struct LayoutTracker {
    /// `deps[i]`: XOR mask over outcome variables carried by row `i`'s sign.
    deps: Vec<u64>,
    vars: u32,
}

impl LayoutTracker {
    /// Number of random-outcome variables allocated so far.
    pub fn vars(&self) -> u32 {
        self.vars
    }
}

/// One position of a symbolic measurement layout (see
/// [`Tableau::measure_layout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureRecord {
    /// Whether the measurement is random (introduces a fresh outcome
    /// variable) or deterministic given the earlier random outcomes.
    pub random: bool,
    /// The outcome under the all-zeros variable assignment. Always `false`
    /// for a random position.
    pub base: bool,
    /// Mask over random-outcome variables: the realised outcome is
    /// `base ^ parity(deps & vars)`, where bit `v` of `vars` is the `v`-th
    /// random outcome of the sequence. A random position with variable `v`
    /// has `deps == 1 << v`.
    pub deps: u64,
}

impl MeasureRecord {
    /// The realised outcome under the variable assignment `vars` (bit `v`
    /// = `v`-th random outcome).
    #[inline]
    pub fn outcome(&self, vars: u64) -> bool {
        self.base ^ ((self.deps & vars).count_ones() & 1 == 1)
    }
}

/// The Aaronson–Gottesman phase function for multiplying single-qubit
/// Paulis: returns the exponent of `i` (mod 4, in {-1, 0, 1}).
fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
    match (x1, z1) {
        (false, false) => 0,
        (true, true) => (z2 as i32) - (x2 as i32),
        (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
        (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn zero_state_measures_zero() {
        let mut t = Tableau::zero_state(3);
        let mut r = rng();
        for q in 0..3 {
            assert!(!t.is_random(q));
            assert!(!t.measure(q, &mut r));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = Tableau::zero_state(2);
        t.x_gate(1);
        let mut r = rng();
        assert!(!t.measure(0, &mut r));
        assert!(t.measure(1, &mut r));
    }

    #[test]
    fn hadamard_randomises_then_collapses() {
        let mut r = rng();
        let mut ones = 0;
        for _ in 0..200 {
            let mut t = Tableau::zero_state(1);
            t.h(0);
            assert!(t.is_random(0));
            let m1 = t.measure(0, &mut r);
            // Second measurement must repeat the first.
            let m2 = t.measure(0, &mut r);
            assert_eq!(m1, m2);
            if m1 {
                ones += 1;
            }
        }
        assert!((60..140).contains(&ones), "got {ones}/200 ones");
    }

    #[test]
    fn bell_pair_correlations() {
        let mut r = rng();
        for _ in 0..50 {
            let mut t = Tableau::zero_state(2);
            t.h(0);
            t.cnot(0, 1);
            let a = t.measure(0, &mut r);
            let b = t.measure(1, &mut r);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ghz_parity() {
        let mut r = rng();
        for _ in 0..50 {
            let mut t = Tableau::zero_state(5);
            t.h(0);
            for q in 0..4 {
                t.cnot(q, q + 1);
            }
            let first = t.measure(0, &mut r);
            for q in 1..5 {
                assert_eq!(t.measure(q, &mut r), first);
            }
        }
    }

    #[test]
    fn s_gate_phases() {
        // H S S H |0> = H Z H |0> = X |0> = |1>.
        let mut t = Tableau::zero_state(1);
        t.h(0);
        t.s(0);
        t.s(0);
        t.h(0);
        let mut r = rng();
        assert!(t.measure(0, &mut r));
    }

    #[test]
    fn sdag_inverts_s() {
        let mut t = Tableau::zero_state(1);
        t.h(0);
        t.s(0);
        t.sdag(0);
        t.h(0);
        let mut r = rng();
        assert!(!t.measure(0, &mut r));
    }

    #[test]
    fn cz_phase_kickback() {
        // |++> -CZ-> measured in X basis: H both, CZ, H both, both still
        // random; but CZ |1+> = |1-> so H gives |11>.
        let mut t = Tableau::zero_state(2);
        t.x_gate(0);
        t.h(1);
        t.cz(0, 1);
        t.h(1);
        let mut r = rng();
        assert!(t.measure(0, &mut r));
        assert!(t.measure(1, &mut r));
    }

    #[test]
    fn y_gate_is_xz_up_to_phase() {
        // Y|0> = i|1>: measurement sees |1>.
        let mut t = Tableau::zero_state(1);
        t.y_gate(0);
        let mut r = rng();
        assert!(t.measure(0, &mut r));
    }

    #[test]
    fn probability_one_values() {
        let mut t = Tableau::zero_state(2);
        t.x_gate(0);
        t.h(1);
        assert_eq!(t.probability_one(0), 1.0);
        assert_eq!(t.probability_one(1), 0.5);
        let mut t2 = Tableau::zero_state(1);
        assert_eq!(t2.probability_one(0), 0.0);
    }

    #[test]
    fn agrees_with_statevector_on_random_clifford() {
        use cqasm::GateKind;
        use qxsim::StateVector;
        use rand::Rng;
        let mut r = rng();
        for _ in 0..30 {
            let n = 4;
            let mut t = Tableau::zero_state(n);
            let mut s = StateVector::zero_state(n);
            for _ in 0..25 {
                match r.gen_range(0..4) {
                    0 => {
                        let q = r.gen_range(0..n);
                        t.h(q);
                        s.apply_gate(&GateKind::H, &[q]);
                    }
                    1 => {
                        let q = r.gen_range(0..n);
                        t.s(q);
                        s.apply_gate(&GateKind::S, &[q]);
                    }
                    2 => {
                        let q = r.gen_range(0..n);
                        t.x_gate(q);
                        s.apply_gate(&GateKind::X, &[q]);
                    }
                    _ => {
                        let a = r.gen_range(0..n);
                        let b = (a + 1 + r.gen_range(0..n - 1)) % n;
                        t.cnot(a, b);
                        s.apply_gate(&GateKind::Cnot, &[a, b]);
                    }
                }
            }
            for q in 0..n {
                let p_tab = t.probability_one(q);
                let p_sv = s.probability_one(q);
                assert!(
                    (p_tab - p_sv).abs() < 1e-9,
                    "qubit {q}: tableau {p_tab} vs statevector {p_sv}"
                );
            }
        }
    }

    /// An RNG that counts draws and panics when `allowed` is exceeded:
    /// pins "deterministic measurement consumes no randomness".
    struct BudgetRng {
        inner: StdRng,
        draws: u64,
        allowed: u64,
    }

    impl rand::RngCore for BudgetRng {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            assert!(
                self.draws <= self.allowed,
                "RNG drawn {} times, only {} allowed",
                self.draws,
                self.allowed
            );
            self.inner.next_u64()
        }
    }

    /// A scripted Clifford circuit applied to both representations.
    #[derive(Debug, Clone)]
    enum Step {
        H(usize),
        S(usize),
        Sdag(usize),
        X(usize),
        Y(usize),
        Z(usize),
        X90(usize),
        Mx90(usize),
        Y90(usize),
        My90(usize),
        Cnot(usize, usize),
        Cz(usize, usize),
        Swap(usize, usize),
    }

    fn apply_step(t: &mut Tableau, s: &Step) {
        match *s {
            Step::H(q) => t.h(q),
            Step::S(q) => t.s(q),
            Step::Sdag(q) => t.sdag(q),
            Step::X(q) => t.x_gate(q),
            Step::Y(q) => t.y_gate(q),
            Step::Z(q) => t.z_gate(q),
            Step::X90(q) => t.x90(q),
            Step::Mx90(q) => t.mx90(q),
            Step::Y90(q) => t.y90(q),
            Step::My90(q) => t.my90(q),
            Step::Cnot(a, b) => t.cnot(a, b),
            Step::Cz(a, b) => t.cz(a, b),
            Step::Swap(a, b) => t.swap(a, b),
        }
    }

    fn apply_step_sv(s: &mut qxsim::StateVector, step: &Step) {
        use cqasm::GateKind;
        match *step {
            Step::H(q) => s.apply_gate(&GateKind::H, &[q]),
            Step::S(q) => s.apply_gate(&GateKind::S, &[q]),
            Step::Sdag(q) => s.apply_gate(&GateKind::Sdag, &[q]),
            Step::X(q) => s.apply_gate(&GateKind::X, &[q]),
            Step::Y(q) => s.apply_gate(&GateKind::Y, &[q]),
            Step::Z(q) => s.apply_gate(&GateKind::Z, &[q]),
            Step::X90(q) => s.apply_gate(&GateKind::X90, &[q]),
            Step::Mx90(q) => s.apply_gate(&GateKind::Mx90, &[q]),
            Step::Y90(q) => s.apply_gate(&GateKind::Y90, &[q]),
            Step::My90(q) => s.apply_gate(&GateKind::My90, &[q]),
            Step::Cnot(a, b) => s.apply_gate(&GateKind::Cnot, &[a, b]),
            Step::Cz(a, b) => s.apply_gate(&GateKind::Cz, &[a, b]),
            Step::Swap(a, b) => s.apply_gate(&GateKind::Swap, &[a, b]),
        }
    }

    /// A random Clifford circuit over `n` qubits, decoded from a seed so
    /// proptest can shrink it.
    fn circuit_from_seed(seed: u64, n: usize, len: usize) -> Vec<Step> {
        use rand::Rng;
        let mut r = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let q = r.gen_range(0..n);
                let p = (q + 1 + r.gen_range(0..n - 1)) % n;
                match r.gen_range(0..13u8) {
                    0 => Step::H(q),
                    1 => Step::S(q),
                    2 => Step::Sdag(q),
                    3 => Step::X(q),
                    4 => Step::Y(q),
                    5 => Step::Z(q),
                    6 => Step::X90(q),
                    7 => Step::Mx90(q),
                    8 => Step::Y90(q),
                    9 => Step::My90(q),
                    10 => Step::Cnot(q, p),
                    11 => Step::Cz(q, p),
                    _ => Step::Swap(q, p),
                }
            })
            .collect()
    }

    use proptest::prelude::*;

    proptest! {
        /// `deterministic_outcome` agrees with `measure` whenever
        /// `!is_random`, and a deterministic `measure` draws nothing from
        /// the RNG.
        #[test]
        fn deterministic_measure_consumes_no_randomness(
            seed in 0u64..1_000_000,
            n in 2usize..=10,
        ) {
            let steps = circuit_from_seed(seed, n, 30);
            let mut t = Tableau::zero_state(n);
            for s in &steps {
                apply_step(&mut t, s);
            }
            for q in 0..n {
                if t.is_random(q) {
                    continue;
                }
                let expected = t.deterministic_outcome(q);
                let mut budget = BudgetRng {
                    inner: StdRng::seed_from_u64(seed),
                    draws: 0,
                    allowed: 0, // deterministic: zero draws permitted
                };
                let got = t.clone().measure(q, &mut budget);
                prop_assert_eq!(got, expected);
            }
        }

        /// `apply_pauli_masks` sign bookkeeping matches the state-vector
        /// engine: after a random Clifford circuit plus a random X/Z error
        /// pattern, every conditional one-probability along a full collapse
        /// cascade agrees (deterministic outcomes are where sign errors
        /// show up).
        #[test]
        fn pauli_masks_match_statevector(
            seed in 0u64..1_000_000,
            n in 2usize..=10,
        ) {
            use rand::Rng;
            let steps = circuit_from_seed(seed, n, 25);
            let mut t = Tableau::zero_state(n);
            let mut s = qxsim::StateVector::zero_state(n);
            for step in &steps {
                apply_step(&mut t, step);
                apply_step_sv(&mut s, step);
            }
            let mut r = StdRng::seed_from_u64(seed ^ 0xA5A5);
            let x_mask: Vec<bool> = (0..n).map(|_| r.gen_bool(0.5)).collect();
            let z_mask: Vec<bool> = (0..n).map(|_| r.gen_bool(0.5)).collect();
            t.apply_pauli_masks(&x_mask, &z_mask);
            for q in 0..n {
                if x_mask[q] {
                    apply_step_sv(&mut s, &Step::X(q));
                }
                if z_mask[q] {
                    apply_step_sv(&mut s, &Step::Z(q));
                }
            }
            for q in 0..n {
                let p_tab = t.probability_one(q);
                let p_sv = s.probability_one(q);
                prop_assert!(
                    (p_tab - p_sv).abs() < 1e-9,
                    "qubit {}: tableau {} vs statevector {}", q, p_tab, p_sv
                );
                // Collapse both onto the same branch (false stays feasible:
                // P(0) >= 0.5 whenever the outcome is not forced to 1).
                let outcome = p_tab == 1.0;
                t.measure_given(q, outcome);
                s.collapse(q, outcome);
            }
        }

        /// `measure_layout` reproduces concrete forced-outcome measurement
        /// for every sampled variable assignment: same randomness pattern,
        /// same deterministic outcomes.
        #[test]
        fn measure_layout_matches_concrete_measurement(
            seed in 0u64..1_000_000,
            n in 2usize..=8,
        ) {
            use rand::Rng;
            let steps = circuit_from_seed(seed, n, 25);
            let mut base = Tableau::zero_state(n);
            for s in &steps {
                apply_step(&mut base, s);
            }
            let mut r = StdRng::seed_from_u64(seed ^ 0x5A5A);
            let qs: Vec<usize> = (0..r.gen_range(1..=2 * n)).map(|_| r.gen_range(0..n)).collect();
            let records = base
                .clone()
                .measure_layout(&qs)
                .expect("<= 64 random vars by construction");
            prop_assert_eq!(records.len(), qs.len());
            for _ in 0..4 {
                let vars: u64 = r.gen();
                let mut t = base.clone();
                let mut var = 0u32;
                for (rec, &q) in records.iter().zip(&qs) {
                    prop_assert_eq!(rec.random, t.is_random(q));
                    let forced = (vars >> var) & 1 == 1;
                    if rec.random {
                        var += 1;
                    }
                    let actual = t.measure_given(q, forced);
                    prop_assert_eq!(rec.outcome(vars), actual);
                }
            }
        }

        /// The derived gates (swap and the four axis rotations) match the
        /// state-vector unitaries on random states, via the same collapse
        /// cascade as the Pauli-mask check.
        #[test]
        fn derived_gates_match_statevector(
            seed in 0u64..1_000_000,
            n in 2usize..=6,
        ) {
            let steps = circuit_from_seed(seed, n, 30);
            let mut t = Tableau::zero_state(n);
            let mut s = qxsim::StateVector::zero_state(n);
            for step in &steps {
                apply_step(&mut t, step);
                apply_step_sv(&mut s, step);
            }
            for q in 0..n {
                let p_tab = t.probability_one(q);
                let p_sv = s.probability_one(q);
                prop_assert!(
                    (p_tab - p_sv).abs() < 1e-9,
                    "qubit {}: tableau {} vs statevector {}", q, p_tab, p_sv
                );
                let outcome = p_tab == 1.0;
                t.measure_given(q, outcome);
                s.collapse(q, outcome);
            }
        }
    }

    #[test]
    fn measure_given_forces_random_outcomes() {
        for forced in [false, true] {
            let mut t = Tableau::zero_state(2);
            t.h(0);
            t.cnot(0, 1);
            assert!(t.is_random(0));
            assert_eq!(t.measure_given(0, forced), forced);
            // The pair is collapsed: qubit 1 now deterministically agrees.
            assert!(!t.is_random(1));
            assert_eq!(t.measure_given(1, !forced), forced);
        }
    }

    #[test]
    fn ghz_layout_has_one_variable_and_parity_deps() {
        // GHZ-4: first measurement random, the rest deterministic copies.
        let n = 4;
        let mut t = Tableau::zero_state(n);
        t.h(0);
        for q in 0..n - 1 {
            t.cnot(q, q + 1);
        }
        let recs = t.measure_layout(&[0, 1, 2, 3]).unwrap();
        assert!(recs[0].random);
        assert_eq!(recs[0].deps, 1);
        for rec in &recs[1..] {
            assert!(!rec.random);
            assert!(!rec.base);
            assert_eq!(rec.deps, 1, "each later outcome copies variable 0");
        }
        assert!(recs[1].outcome(1));
        assert!(!recs[1].outcome(0));
    }

    #[test]
    fn scales_to_many_qubits() {
        // 500-qubit GHZ in milliseconds — impossible for the state-vector
        // engine, easy for the tableau.
        let n = 500;
        let mut t = Tableau::zero_state(n);
        t.h(0);
        for q in 0..n - 1 {
            t.cnot(q, q + 1);
        }
        let mut r = rng();
        let first = t.measure(0, &mut r);
        assert_eq!(t.measure(n - 1, &mut r), first);
    }
}
