//! A CHP-style stabilizer simulator (Gottesman–Knill / Aaronson–Gottesman).
//!
//! Clifford circuits on thousands of qubits simulate in polynomial time,
//! which is what makes studying error-correction circuits tractable: the
//! paper's "realistic qubit" track requires processing "a very large graph
//! ... in real-time" of syndrome measurements (§2.1), far beyond
//! state-vector reach. The tableau tracks `2n` Pauli generators
//! (destabilizers and stabilizers) plus sign bits.

use rand::Rng;

/// A stabilizer state of `n` qubits.
///
/// Supports the Clifford gates `H`, `S`, `CNOT` (and the Paulis derived
/// from them) plus Z-basis measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    /// `x[i][j]`: row `i` has an X component on qubit `j`.
    x: Vec<Vec<bool>>,
    /// `z[i][j]`: row `i` has a Z component on qubit `j`.
    z: Vec<Vec<bool>>,
    /// Sign bit per row (`true` = negative).
    r: Vec<bool>,
}

impl Tableau {
    /// The state `|0...0>`: destabilizers `X_i`, stabilizers `Z_i`.
    pub fn zero_state(n: usize) -> Self {
        let rows = 2 * n + 1; // last row is measurement scratch
        let mut t = Tableau {
            n,
            x: vec![vec![false; n]; rows],
            z: vec![vec![false; n]; rows],
            r: vec![false; rows],
        };
        for i in 0..n {
            t.x[i][i] = true; // destabilizer X_i
            t.z[n + i][i] = true; // stabilizer Z_i
        }
        t
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] && self.z[i][q];
            std::mem::swap(&mut self.x[i][q], &mut self.z[i][q]);
        }
    }

    /// Phase gate on `q`.
    pub fn s(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] && self.z[i][q];
            self.z[i][q] ^= self.x[i][q];
        }
    }

    /// Inverse phase gate on `q` (`S S S`).
    pub fn sdag(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// CNOT with control `c` and target `t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][c] && self.z[i][t] && (self.x[i][t] == self.z[i][c]);
            self.x[i][t] ^= self.x[i][c];
            self.z[i][c] ^= self.z[i][t];
        }
    }

    /// CZ via `H(t); CNOT(c,t); H(t)`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cnot(a, b);
        self.h(b);
    }

    /// Pauli-X on `q`.
    pub fn x_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i][q];
        }
    }

    /// Pauli-Z on `q`.
    pub fn z_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q];
        }
    }

    /// Pauli-Y on `q`.
    pub fn y_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] ^ self.z[i][q];
        }
    }

    /// Measures qubit `q` in the Z basis, collapsing the state.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let n = self.n;
        // Random outcome iff some stabilizer anticommutes with Z_q.
        let p = (n..2 * n).find(|&i| self.x[i][q]);
        match p {
            Some(p) => {
                let outcome = rng.gen_bool(0.5);
                for i in 0..2 * n {
                    if i != p && self.x[i][q] {
                        self.rowsum(i, p);
                    }
                }
                // Destabilizer p-n becomes the old stabilizer row p.
                self.x[p - n] = self.x[p].clone();
                self.z[p - n] = self.z[p].clone();
                self.r[p - n] = self.r[p];
                // New stabilizer: (+/-) Z_q.
                for j in 0..n {
                    self.x[p][j] = false;
                    self.z[p][j] = false;
                }
                self.z[p][q] = true;
                self.r[p] = outcome;
                outcome
            }
            None => self.deterministic_outcome(q),
        }
    }

    /// The outcome of measuring `q` when it is deterministic (no stabilizer
    /// anticommutes with `Z_q`). Does not modify the state.
    pub fn deterministic_outcome(&mut self, q: usize) -> bool {
        let n = self.n;
        let scratch = 2 * n;
        for j in 0..n {
            self.x[scratch][j] = false;
            self.z[scratch][j] = false;
        }
        self.r[scratch] = false;
        for i in 0..n {
            if self.x[i][q] {
                self.rowsum(scratch, i + n);
            }
        }
        self.r[scratch]
    }

    /// Whether measuring `q` would give a random outcome.
    pub fn is_random(&self, q: usize) -> bool {
        (self.n..2 * self.n).any(|i| self.x[i][q])
    }

    /// Expectation that the qubit measures 1: exactly 0, 1, or 0.5.
    pub fn probability_one(&mut self, q: usize) -> f64 {
        if self.is_random(q) {
            0.5
        } else if self.deterministic_outcome(q) {
            1.0
        } else {
            0.0
        }
    }

    /// Row multiplication `row_h <- row_h * row_i`, tracking the phase.
    fn rowsum(&mut self, h: usize, i: usize) {
        // Phase exponent accumulates mod 4; stored r bits are mod-2 signs.
        let mut g_sum: i32 = 2 * (self.r[h] as i32) + 2 * (self.r[i] as i32);
        for j in 0..self.n {
            g_sum += g(self.x[i][j], self.z[i][j], self.x[h][j], self.z[h][j]);
        }
        self.r[h] = g_sum.rem_euclid(4) == 2;
        for j in 0..self.n {
            self.x[h][j] ^= self.x[i][j];
            self.z[h][j] ^= self.z[i][j];
        }
    }

    /// Applies an X/Z error pattern (used for Pauli error injection in
    /// error-correction studies): bit `q` of `x_mask` applies `X_q`, bit
    /// `q` of `z_mask` applies `Z_q`.
    pub fn apply_pauli_masks(&mut self, x_mask: &[bool], z_mask: &[bool]) {
        for q in 0..self.n {
            if x_mask[q] {
                self.x_gate(q);
            }
            if z_mask[q] {
                self.z_gate(q);
            }
        }
    }
}

/// The Aaronson–Gottesman phase function for multiplying single-qubit
/// Paulis: returns the exponent of `i` (mod 4, in {-1, 0, 1}).
fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
    match (x1, z1) {
        (false, false) => 0,
        (true, true) => (z2 as i32) - (x2 as i32),
        (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
        (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn zero_state_measures_zero() {
        let mut t = Tableau::zero_state(3);
        let mut r = rng();
        for q in 0..3 {
            assert!(!t.is_random(q));
            assert!(!t.measure(q, &mut r));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = Tableau::zero_state(2);
        t.x_gate(1);
        let mut r = rng();
        assert!(!t.measure(0, &mut r));
        assert!(t.measure(1, &mut r));
    }

    #[test]
    fn hadamard_randomises_then_collapses() {
        let mut r = rng();
        let mut ones = 0;
        for _ in 0..200 {
            let mut t = Tableau::zero_state(1);
            t.h(0);
            assert!(t.is_random(0));
            let m1 = t.measure(0, &mut r);
            // Second measurement must repeat the first.
            let m2 = t.measure(0, &mut r);
            assert_eq!(m1, m2);
            if m1 {
                ones += 1;
            }
        }
        assert!((60..140).contains(&ones), "got {ones}/200 ones");
    }

    #[test]
    fn bell_pair_correlations() {
        let mut r = rng();
        for _ in 0..50 {
            let mut t = Tableau::zero_state(2);
            t.h(0);
            t.cnot(0, 1);
            let a = t.measure(0, &mut r);
            let b = t.measure(1, &mut r);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ghz_parity() {
        let mut r = rng();
        for _ in 0..50 {
            let mut t = Tableau::zero_state(5);
            t.h(0);
            for q in 0..4 {
                t.cnot(q, q + 1);
            }
            let first = t.measure(0, &mut r);
            for q in 1..5 {
                assert_eq!(t.measure(q, &mut r), first);
            }
        }
    }

    #[test]
    fn s_gate_phases() {
        // H S S H |0> = H Z H |0> = X |0> = |1>.
        let mut t = Tableau::zero_state(1);
        t.h(0);
        t.s(0);
        t.s(0);
        t.h(0);
        let mut r = rng();
        assert!(t.measure(0, &mut r));
    }

    #[test]
    fn sdag_inverts_s() {
        let mut t = Tableau::zero_state(1);
        t.h(0);
        t.s(0);
        t.sdag(0);
        t.h(0);
        let mut r = rng();
        assert!(!t.measure(0, &mut r));
    }

    #[test]
    fn cz_phase_kickback() {
        // |++> -CZ-> measured in X basis: H both, CZ, H both, both still
        // random; but CZ |1+> = |1-> so H gives |11>.
        let mut t = Tableau::zero_state(2);
        t.x_gate(0);
        t.h(1);
        t.cz(0, 1);
        t.h(1);
        let mut r = rng();
        assert!(t.measure(0, &mut r));
        assert!(t.measure(1, &mut r));
    }

    #[test]
    fn y_gate_is_xz_up_to_phase() {
        // Y|0> = i|1>: measurement sees |1>.
        let mut t = Tableau::zero_state(1);
        t.y_gate(0);
        let mut r = rng();
        assert!(t.measure(0, &mut r));
    }

    #[test]
    fn probability_one_values() {
        let mut t = Tableau::zero_state(2);
        t.x_gate(0);
        t.h(1);
        assert_eq!(t.probability_one(0), 1.0);
        assert_eq!(t.probability_one(1), 0.5);
        let mut t2 = Tableau::zero_state(1);
        assert_eq!(t2.probability_one(0), 0.0);
    }

    #[test]
    fn agrees_with_statevector_on_random_clifford() {
        use cqasm::GateKind;
        use qxsim::StateVector;
        use rand::Rng;
        let mut r = rng();
        for _ in 0..30 {
            let n = 4;
            let mut t = Tableau::zero_state(n);
            let mut s = StateVector::zero_state(n);
            for _ in 0..25 {
                match r.gen_range(0..4) {
                    0 => {
                        let q = r.gen_range(0..n);
                        t.h(q);
                        s.apply_gate(&GateKind::H, &[q]);
                    }
                    1 => {
                        let q = r.gen_range(0..n);
                        t.s(q);
                        s.apply_gate(&GateKind::S, &[q]);
                    }
                    2 => {
                        let q = r.gen_range(0..n);
                        t.x_gate(q);
                        s.apply_gate(&GateKind::X, &[q]);
                    }
                    _ => {
                        let a = r.gen_range(0..n);
                        let b = (a + 1 + r.gen_range(0..n - 1)) % n;
                        t.cnot(a, b);
                        s.apply_gate(&GateKind::Cnot, &[a, b]);
                    }
                }
            }
            for q in 0..n {
                let p_tab = t.probability_one(q);
                let p_sv = s.probability_one(q);
                assert!(
                    (p_tab - p_sv).abs() < 1e-9,
                    "qubit {q}: tableau {p_tab} vs statevector {p_sv}"
                );
            }
        }
    }

    #[test]
    fn scales_to_many_qubits() {
        // 500-qubit GHZ in milliseconds — impossible for the state-vector
        // engine, easy for the tableau.
        let n = 500;
        let mut t = Tableau::zero_state(n);
        t.h(0);
        for q in 0..n - 1 {
            t.cnot(q, q + 1);
        }
        let mut r = rng();
        let first = t.measure(0, &mut r);
        assert_eq!(t.measure(n - 1, &mut r), first);
    }
}
