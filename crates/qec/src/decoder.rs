//! Decoders: syndrome → correction.
//!
//! Small codes use an exact minimum-weight lookup table; the surface code
//! uses a greedy defect-matching decoder (a lightweight stand-in for
//! minimum-weight perfect matching with the same threshold behaviour,
//! lower constant).

use crate::code::{PauliError, StabilizerCode, Syndrome};
use crate::surface::SurfaceCode;
use std::collections::HashMap;

/// Exact lookup decoder for small CSS codes.
///
/// Built by enumerating all error patterns up to weight
/// `floor((d-1)/2)` and keeping the minimum-weight representative per
/// syndrome. X and Z components decode independently (CSS property).
#[derive(Debug, Clone)]
pub struct LookupDecoder {
    /// Z-check syndrome bits → X-correction mask.
    x_table: HashMap<Vec<bool>, Vec<bool>>,
    /// X-check syndrome bits → Z-correction mask.
    z_table: HashMap<Vec<bool>, Vec<bool>>,
    n: usize,
}

impl LookupDecoder {
    /// Builds the decoder for a code.
    pub fn for_code(code: &StabilizerCode) -> Self {
        let t = (code.distance().saturating_sub(1)) / 2;
        let n = code.data_qubits();
        let x_table = build_table(n, t, |mask| {
            let mut e = PauliError::identity(n);
            e.x.copy_from_slice(mask);
            code.syndrome(&e).z_checks
        });
        let z_table = build_table(n, t, |mask| {
            let mut e = PauliError::identity(n);
            e.z.copy_from_slice(mask);
            code.syndrome(&e).x_checks
        });
        LookupDecoder {
            x_table,
            z_table,
            n,
        }
    }

    /// Decodes a syndrome into a correction.
    ///
    /// Unknown syndromes (beyond the correctable weight) return the best
    /// effort: an empty correction, which the Monte-Carlo harness counts
    /// as failure if a logical operator remains.
    pub fn decode(&self, syndrome: &Syndrome) -> PauliError {
        let mut corr = PauliError::identity(self.n);
        if let Some(xm) = self.x_table.get(&syndrome.z_checks) {
            corr.x.copy_from_slice(xm);
        }
        if let Some(zm) = self.z_table.get(&syndrome.x_checks) {
            corr.z.copy_from_slice(zm);
        }
        corr
    }
}

/// Enumerates masks of weight 0..=t, keeping minimum weight per syndrome.
fn build_table(
    n: usize,
    t: usize,
    syndrome_of: impl Fn(&[bool]) -> Vec<bool>,
) -> HashMap<Vec<bool>, Vec<bool>> {
    let mut table: HashMap<Vec<bool>, Vec<bool>> = HashMap::new();
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    for _weight in 0..=t {
        for combo in &frontier {
            let mut mask = vec![false; n];
            for &q in combo {
                mask[q] = true;
            }
            let s = syndrome_of(&mask);
            table.entry(s).or_insert(mask);
        }
        // Extend combinations by one more qubit (ascending to avoid dups).
        let mut next = Vec::new();
        for combo in &frontier {
            let start = combo.last().map_or(0, |&q| q + 1);
            for q in start..n {
                let mut c = combo.clone();
                c.push(q);
                next.push(c);
            }
        }
        frontier = next;
    }
    table
}

/// Greedy matching decoder for the planar surface code under independent
/// X (bit-flip) noise. The dual (Z noise / X-checks) follows by symmetry
/// via [`decode_z_errors`].
pub fn decode_x_errors(code: &SurfaceCode, defects: &[(usize, usize)]) -> PauliError {
    let side = 2 * code.distance() - 1;
    let mut corr = PauliError::identity(code.data_qubits());
    let mut open: Vec<(usize, usize)> = defects.to_vec();

    // Z-defects terminate on the top/bottom boundaries.
    let boundary_cost = |(r, _c): (usize, usize)| r.div_ceil(2).min((side - r) / 2);
    if open.len() <= EXACT_MATCH_LIMIT {
        for op in optimal_matching(&open, boundary_cost) {
            match op {
                MatchOp::Pair(i, j) => flip_path(code, &mut corr, open[i], open[j]),
                MatchOp::Boundary(i) => flip_to_boundary(code, &mut corr, open[i], side),
            }
        }
        return corr;
    }
    while !open.is_empty() {
        match pick_match(&open, boundary_cost) {
            (i, Some(j)) => {
                let a = open[i];
                let b = open[j];
                flip_path(code, &mut corr, a, b);
                // Remove the larger index first.
                open.remove(j);
                open.remove(i);
            }
            (i, None) => {
                let a = open[i];
                flip_to_boundary(code, &mut corr, a, side);
                open.remove(i);
            }
        }
    }
    corr
}

/// Chooses the cheapest match among defect pairs and defect-boundary
/// options, preferring pair matches on ties (splitting a pair across two
/// boundaries creates a logical operator).
fn pick_match(
    open: &[(usize, usize)],
    boundary_cost: impl Fn((usize, usize)) -> usize,
) -> (usize, Option<usize>) {
    let mut best_pair: (usize, usize, usize) = (0, 0, usize::MAX);
    for i in 0..open.len() {
        for j in i + 1..open.len() {
            let cost = (open[i].0.abs_diff(open[j].0) + open[i].1.abs_diff(open[j].1)) / 2;
            if cost < best_pair.2 {
                best_pair = (i, j, cost);
            }
        }
    }
    let mut best_boundary: (usize, usize) = (0, usize::MAX);
    for (i, &d) in open.iter().enumerate() {
        let cost = boundary_cost(d);
        if cost < best_boundary.1 {
            best_boundary = (i, cost);
        }
    }
    if best_boundary.1 < best_pair.2 {
        (best_boundary.0, None)
    } else {
        (best_pair.0, Some(best_pair.1))
    }
}

/// One matching decision: pair two defects, or send one to the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MatchOp {
    Pair(usize, usize),
    Boundary(usize),
}

/// Threshold below which the exact subset-DP matcher runs (cost
/// `O(2^k * k^2)`; below-threshold syndromes are almost always this small).
const EXACT_MATCH_LIMIT: usize = 16;

/// Exact minimum-weight matching over defects with a boundary option,
/// by memoised recursion over the unmatched-set bitmask.
fn optimal_matching(
    defects: &[(usize, usize)],
    boundary_cost: impl Fn((usize, usize)) -> usize,
) -> Vec<MatchOp> {
    let k = defects.len();
    let pair_cost = |i: usize, j: usize| {
        (defects[i].0.abs_diff(defects[j].0) + defects[i].1.abs_diff(defects[j].1)) / 2
    };
    let full = (1usize << k) - 1;
    let mut memo: Vec<Option<(usize, Option<MatchOp>)>> = vec![None; 1 << k];
    memo[0] = Some((0, None));
    fn solve(
        mask: usize,
        memo: &mut [Option<(usize, Option<MatchOp>)>],
        pair_cost: &dyn Fn(usize, usize) -> usize,
        bcost: &[usize],
    ) -> usize {
        if let Some((c, _)) = memo[mask] {
            return c;
        }
        // mask != 0 here: memo[0] is pre-filled, so the lookup above
        // returns for the empty mask.
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        let mut best = solve(rest, memo, pair_cost, bcost) + bcost[i];
        let mut best_op = MatchOp::Boundary(i);
        let mut j_iter = rest;
        while j_iter != 0 {
            let j = j_iter.trailing_zeros() as usize;
            j_iter &= j_iter - 1;
            let c = solve(rest & !(1 << j), memo, pair_cost, bcost) + pair_cost(i, j);
            if c < best {
                best = c;
                best_op = MatchOp::Pair(i, j);
            }
        }
        memo[mask] = Some((best, Some(best_op)));
        best
    }
    let bcosts: Vec<usize> = defects.iter().map(|&d| boundary_cost(d)).collect();
    let pc = |i: usize, j: usize| pair_cost(i, j);
    solve(full, &mut memo, &pc, &bcosts);
    // Reconstruct.
    let mut ops = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let Some((_, Some(op))) = memo[mask] else {
            break; // unreachable: solve() memoised every submask of full
        };
        match op {
            MatchOp::Pair(i, j) => {
                ops.push(op);
                mask &= !(1 << i);
                mask &= !(1 << j);
            }
            MatchOp::Boundary(i) => {
                ops.push(op);
                mask &= !(1 << i);
            }
        }
    }
    ops
}

/// Greedy matching decoder for Z errors (X-check defects, left/right
/// boundaries).
pub fn decode_z_errors(code: &SurfaceCode, defects: &[(usize, usize)]) -> PauliError {
    let side = 2 * code.distance() - 1;
    let mut corr = PauliError::identity(code.data_qubits());
    let mut open: Vec<(usize, usize)> = defects.to_vec();
    // X-defects terminate on the left/right boundaries.
    let boundary_cost = |(_r, c): (usize, usize)| c.div_ceil(2).min((side - c) / 2);
    if open.len() <= EXACT_MATCH_LIMIT {
        for op in optimal_matching(&open, boundary_cost) {
            match op {
                MatchOp::Pair(i, j) => flip_path_z(code, &mut corr, open[i], open[j]),
                MatchOp::Boundary(i) => flip_to_boundary_z(code, &mut corr, open[i], side),
            }
        }
        return corr;
    }
    while !open.is_empty() {
        match pick_match(&open, boundary_cost) {
            (i, Some(j)) => {
                let a = open[i];
                let b = open[j];
                flip_path_z(code, &mut corr, a, b);
                open.remove(j);
                open.remove(i);
            }
            (i, None) => {
                let a = open[i];
                flip_to_boundary_z(code, &mut corr, a, side);
                open.remove(i);
            }
        }
    }
    corr
}

/// Flips X-corrections along an L-path (vertical first, then horizontal)
/// between two Z-defects.
fn flip_path(code: &SurfaceCode, corr: &mut PauliError, a: (usize, usize), b: (usize, usize)) {
    let (r1, c1) = a;
    let (r2, c2) = b;
    let (rlo, rhi) = (r1.min(r2), r1.max(r2));
    // Vertical leg along column c1: data cells at odd offsets between rows.
    let mut r = rlo + 1;
    while r < rhi {
        if let Some(q) = code.data_at(r, c1) {
            corr.x[q] ^= true;
        }
        r += 2;
    }
    // Horizontal leg along row r2: data cells between c1 and c2.
    let (clo, chi) = (c1.min(c2), c1.max(c2));
    let mut c = clo + 1;
    while c < chi {
        if let Some(q) = code.data_at(r2, c) {
            corr.x[q] ^= true;
        }
        c += 2;
    }
}

/// Flips X-corrections from a Z-defect straight to the nearest top/bottom
/// boundary.
fn flip_to_boundary(code: &SurfaceCode, corr: &mut PauliError, a: (usize, usize), side: usize) {
    let (r, c) = a;
    let up = r.div_ceil(2);
    let down = (side - r) / 2;
    if up <= down {
        let mut row = r as isize - 1;
        while row >= 0 {
            if let Some(q) = code.data_at(row as usize, c) {
                corr.x[q] ^= true;
            }
            row -= 2;
        }
    } else {
        let mut row = r + 1;
        while row < side {
            if let Some(q) = code.data_at(row, c) {
                corr.x[q] ^= true;
            }
            row += 2;
        }
    }
}

/// As [`flip_path`] but for Z corrections (horizontal-first L-path).
fn flip_path_z(code: &SurfaceCode, corr: &mut PauliError, a: (usize, usize), b: (usize, usize)) {
    let (r1, c1) = a;
    let (r2, c2) = b;
    let (clo, chi) = (c1.min(c2), c1.max(c2));
    let mut c = clo + 1;
    while c < chi {
        if let Some(q) = code.data_at(r1, c) {
            corr.z[q] ^= true;
        }
        c += 2;
    }
    let (rlo, rhi) = (r1.min(r2), r1.max(r2));
    let mut r = rlo + 1;
    while r < rhi {
        if let Some(q) = code.data_at(r, c2) {
            corr.z[q] ^= true;
        }
        r += 2;
    }
}

/// As [`flip_to_boundary`] but for Z corrections towards left/right.
fn flip_to_boundary_z(code: &SurfaceCode, corr: &mut PauliError, a: (usize, usize), side: usize) {
    let (r, c) = a;
    let left = c.div_ceil(2);
    let right = (side - c) / 2;
    if left <= right {
        let mut col = c as isize - 1;
        while col >= 0 {
            if let Some(q) = code.data_at(r, col as usize) {
                corr.z[q] ^= true;
            }
            col -= 2;
        }
    } else {
        let mut col = c + 1;
        while col < side {
            if let Some(q) = code.data_at(r, col) {
                corr.z[q] ^= true;
            }
            col += 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_corrects_all_single_errors_on_steane() {
        let code = StabilizerCode::steane();
        let dec = LookupDecoder::for_code(&code);
        for q in 0..7 {
            for (x, z) in [(true, false), (false, true), (true, true)] {
                let mut e = PauliError::identity(7);
                e.x[q] = x;
                e.z[q] = z;
                let s = code.syndrome(&e);
                let mut residual = e.clone();
                residual.compose(&dec.decode(&s));
                assert!(
                    code.syndrome(&residual).is_trivial(),
                    "q{q} ({x},{z}): syndrome not cleared"
                );
                assert!(
                    !code.is_logical_error(&residual),
                    "q{q} ({x},{z}): logical error after decoding"
                );
            }
        }
    }

    #[test]
    fn lookup_corrects_double_flips_on_repetition_5() {
        let code = StabilizerCode::repetition(5);
        let dec = LookupDecoder::for_code(&code);
        for a in 0..5 {
            for b in a + 1..5 {
                let mut e = PauliError::identity(5);
                e.x[a] = true;
                e.x[b] = true;
                let s = code.syndrome(&e);
                let mut residual = e.clone();
                residual.compose(&dec.decode(&s));
                assert!(!code.is_logical_error(&residual), "flips {a},{b} failed");
            }
        }
    }

    #[test]
    fn lookup_fails_gracefully_beyond_distance() {
        // Weight-2 X error on repetition-3 must decode to the *wrong*
        // logical class (that is the whole point of finite distance).
        let code = StabilizerCode::repetition(3);
        let dec = LookupDecoder::for_code(&code);
        let mut e = PauliError::identity(3);
        e.x[0] = true;
        e.x[1] = true;
        let mut residual = e.clone();
        residual.compose(&dec.decode(&code.syndrome(&e)));
        assert!(code.syndrome(&residual).is_trivial());
        assert!(code.is_logical_error(&residual));
    }

    #[test]
    fn surface_corrects_every_single_x_error() {
        for d in [3, 5] {
            let code = SurfaceCode::new(d);
            for q in 0..code.data_qubits() {
                let mut e = PauliError::identity(code.data_qubits());
                e.x[q] = true;
                let defects = code.x_error_defects(&e);
                let corr = decode_x_errors(&code, &defects);
                let mut residual = e.clone();
                residual.compose(&corr);
                assert!(
                    code.x_error_defects(&residual).is_empty(),
                    "d={d} q{q}: syndrome not cleared"
                );
                assert!(
                    !residual.x_parity(code.logical_z()),
                    "d={d} q{q}: logical X after decoding"
                );
            }
        }
    }

    #[test]
    fn surface_corrects_every_single_z_error() {
        let code = SurfaceCode::new(3);
        for q in 0..code.data_qubits() {
            let mut e = PauliError::identity(code.data_qubits());
            e.z[q] = true;
            let defects = code.z_error_defects(&e);
            let corr = decode_z_errors(&code, &defects);
            let mut residual = e.clone();
            residual.compose(&corr);
            assert!(code.z_error_defects(&residual).is_empty(), "q{q}");
            assert!(!residual.z_parity(code.logical_x()), "q{q} logical");
        }
    }

    #[test]
    fn surface_corrects_adjacent_double_errors_at_d5() {
        let code = SurfaceCode::new(5);
        let n = code.data_qubits();
        let mut failures = 0;
        let mut total = 0;
        for a in 0..n {
            for b in a + 1..n {
                let (ra, ca) = code.coords_of(a);
                let (rb, cb) = code.coords_of(b);
                if ra.abs_diff(rb) + ca.abs_diff(cb) > 2 {
                    continue; // only near-adjacent pairs
                }
                total += 1;
                let mut e = PauliError::identity(n);
                e.x[a] = true;
                e.x[b] = true;
                let corr = decode_x_errors(&code, &code.x_error_defects(&e));
                let mut residual = e.clone();
                residual.compose(&corr);
                assert!(code.x_error_defects(&residual).is_empty());
                if residual.x_parity(code.logical_z()) {
                    failures += 1;
                }
            }
        }
        assert!(total > 0);
        assert_eq!(
            failures, 0,
            "{failures}/{total} adjacent pairs failed at d=5"
        );
    }
}
