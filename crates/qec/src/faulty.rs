//! Faulty syndrome measurement and repeated ESM rounds.
//!
//! §2.1 of the paper: "Measurements themselves can be erroneous and
//! therefore need to be repeated multiple times before a final conclusion
//! is reached." This module implements the phenomenological noise model:
//! the data error pattern is fixed, but each syndrome *bit* read is
//! flipped independently with probability `q` per round. Majority voting
//! over `r` rounds suppresses measurement errors exponentially — the
//! repetition the paper prescribes.

use crate::code::{PauliError, StabilizerCode, Syndrome};
use crate::decoder::LookupDecoder;
use crate::monte::{sample_error, NoiseKind};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Reads the Z-check syndrome of `error` with per-bit flip probability
/// `q` (one noisy ESM round).
pub fn noisy_syndrome<R: Rng + ?Sized>(
    code: &StabilizerCode,
    error: &PauliError,
    q: f64,
    rng: &mut R,
) -> Syndrome {
    let mut s = code.syndrome(error);
    for b in s.z_checks.iter_mut().chain(s.x_checks.iter_mut()) {
        if q > 0.0 && rng.gen_bool(q) {
            *b = !*b;
        }
    }
    s
}

/// Majority-votes a sequence of syndrome readings bit-wise.
/// Ties (even round counts) resolve to `false` (no defect).
pub fn majority_vote(rounds: &[Syndrome]) -> Syndrome {
    assert!(!rounds.is_empty(), "need at least one round");
    let z_len = rounds[0].z_checks.len();
    let x_len = rounds[0].x_checks.len();
    let vote = |get: &dyn Fn(&Syndrome) -> &Vec<bool>, len: usize| -> Vec<bool> {
        (0..len)
            .map(|i| {
                let ones = rounds.iter().filter(|r| get(r)[i]).count();
                2 * ones > rounds.len()
            })
            .collect()
    };
    Syndrome {
        z_checks: vote(&|r| &r.z_checks, z_len),
        x_checks: vote(&|r| &r.x_checks, x_len),
    }
}

/// Logical error rate of a small code under data noise `p` *and*
/// measurement noise `q`, with `rounds` repeated ESM readings that are
/// majority-voted before decoding.
pub fn faulty_logical_error_rate(
    code: &StabilizerCode,
    p: f64,
    q: f64,
    rounds: usize,
    trials: u64,
    seed: u64,
) -> f64 {
    assert!(rounds >= 1, "at least one ESM round");
    let decoder = LookupDecoder::for_code(code);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u64;
    for _ in 0..trials {
        let e = sample_error(code.data_qubits(), p, NoiseKind::BitFlip, &mut rng);
        let readings: Vec<Syndrome> = (0..rounds)
            .map(|_| noisy_syndrome(code, &e, q, &mut rng))
            .collect();
        let voted = majority_vote(&readings);
        let mut residual = e.clone();
        residual.compose(&decoder.decode(&voted));
        if !code.syndrome(&residual).is_trivial() || code.is_logical_error(&residual) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_vote_recovers_the_true_syndrome() {
        let code = StabilizerCode::repetition(3);
        let mut e = PauliError::identity(3);
        e.x[0] = true;
        let truth = code.syndrome(&e);
        let mut rng = StdRng::seed_from_u64(1);
        // 9 rounds at q = 0.2: the vote is almost always right.
        let mut correct = 0;
        for _ in 0..200 {
            let rounds: Vec<Syndrome> = (0..9)
                .map(|_| noisy_syndrome(&code, &e, 0.2, &mut rng))
                .collect();
            if majority_vote(&rounds) == truth {
                correct += 1;
            }
        }
        assert!(correct > 190, "vote correct {correct}/200");
    }

    #[test]
    fn noiseless_measurement_matches_code_capacity() {
        let code = StabilizerCode::repetition(3);
        let p = 0.05;
        let faulty = faulty_logical_error_rate(&code, p, 0.0, 1, 20_000, 2);
        let capacity =
            crate::monte::code_logical_error_rate(&code, p, NoiseKind::BitFlip, 20_000, 2);
        assert!(
            (faulty - capacity).abs() < 0.01,
            "faulty q=0 {faulty} vs capacity {capacity}"
        );
    }

    #[test]
    fn repeating_rounds_suppresses_measurement_errors() {
        let code = StabilizerCode::repetition(3);
        let p = 0.01;
        let q = 0.10;
        let one = faulty_logical_error_rate(&code, p, q, 1, 15_000, 3);
        let five = faulty_logical_error_rate(&code, p, q, 5, 15_000, 3);
        let nine = faulty_logical_error_rate(&code, p, q, 9, 15_000, 3);
        assert!(
            five < one / 2.0,
            "5 rounds ({five}) should be far below 1 round ({one})"
        );
        assert!(nine <= five + 0.005, "9 rounds {nine} vs 5 rounds {five}");
    }

    #[test]
    fn steane_also_benefits_from_repetition() {
        let code = StabilizerCode::steane();
        let one = faulty_logical_error_rate(&code, 0.005, 0.08, 1, 8_000, 4);
        let five = faulty_logical_error_rate(&code, 0.005, 0.08, 5, 8_000, 4);
        assert!(five < one, "5 rounds {five} vs 1 round {one}");
    }

    #[test]
    fn even_round_counts_are_valid() {
        let code = StabilizerCode::repetition(3);
        // Just exercises the tie-break path.
        let r = faulty_logical_error_rate(&code, 0.02, 0.05, 4, 2_000, 5);
        assert!((0.0..=1.0).contains(&r));
    }
}
