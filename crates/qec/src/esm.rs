//! Error-syndrome-measurement (ESM) circuits as cQASM programs.
//!
//! §2.1 of the paper: "after every sequence of quantum gates, the system
//! needs to measure out its state and interpret those measurements to see
//! if an error has been produced". This module builds the ancilla-based
//! ESM circuits for a [`crate::StabilizerCode`] so the full stack (compiler +
//! simulator + micro-architecture) can run real error-correction rounds.

use crate::code::StabilizerCode;
use cqasm::{GateKind, Instruction, Program, Qubit, Subcircuit};

/// Layout of an ESM program: which program qubits are data vs ancilla.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EsmLayout {
    /// Number of data qubits.
    pub data: usize,
    /// Number of ancillas for Z-type checks.
    pub z_ancillas: usize,
    /// Number of ancillas for X-type checks.
    pub x_ancillas: usize,
    /// When `false` (the classic layout) data qubits occupy indices
    /// `0..data` with ancillas after them; when `true` the ancillas come
    /// first. Ancilla-first keeps every measured qubit below 64 for large
    /// codes (e.g. the d=5 surface code's 40 ancillas over 41 data qubits),
    /// so syndromes still fit the u64 measurement register and the program
    /// stays eligible for the stabilizer fast path.
    pub ancilla_first: bool,
}

impl EsmLayout {
    /// Total program qubits.
    pub fn total(&self) -> usize {
        self.data + self.z_ancillas + self.x_ancillas
    }

    /// Program qubit of the `i`-th data qubit.
    pub fn data_qubit(&self, i: usize) -> usize {
        if self.ancilla_first {
            self.z_ancillas + self.x_ancillas + i
        } else {
            i
        }
    }

    /// Program qubit of the `i`-th Z-check ancilla.
    pub fn z_ancilla(&self, i: usize) -> usize {
        if self.ancilla_first {
            i
        } else {
            self.data + i
        }
    }

    /// Program qubit of the `i`-th X-check ancilla.
    pub fn x_ancilla(&self, i: usize) -> usize {
        if self.ancilla_first {
            self.z_ancillas + i
        } else {
            self.data + self.z_ancillas + i
        }
    }
}

/// Builds one ESM round for `code` as a cQASM program.
///
/// Z-type checks use an ancilla in `|0>` as CNOT target from each data
/// qubit in the support; X-type checks use a `|+>` ancilla as CNOT control.
/// Each ancilla is prepared, entangled and measured; repeated rounds (the
/// paper notes measurements "need to be repeated multiple times") are
/// emitted as an iterated subcircuit.
pub fn esm_program(code: &StabilizerCode, rounds: u64) -> (Program, EsmLayout) {
    esm_program_with_layout(code, rounds, false)
}

/// Like [`esm_program`] but with the ancillas at program qubits `0..a`
/// and the data register after them.
///
/// All measured qubits then sit below the measurement-register width for
/// any code with fewer than 64 ancillas, which keeps large codes (e.g. the
/// 81-qubit d=5 surface code) servable through the stabilizer engine.
pub fn esm_program_ancilla_first(code: &StabilizerCode, rounds: u64) -> (Program, EsmLayout) {
    esm_program_with_layout(code, rounds, true)
}

fn esm_program_with_layout(
    code: &StabilizerCode,
    rounds: u64,
    ancilla_first: bool,
) -> (Program, EsmLayout) {
    let layout = EsmLayout {
        data: code.data_qubits(),
        z_ancillas: code.z_stabilizers().len(),
        x_ancillas: code.x_stabilizers().len(),
        ancilla_first,
    };
    let mut program = Program::new(layout.total());
    let mut sub = Subcircuit::with_iterations("esm_round", rounds);
    for (i, support) in code.z_stabilizers().iter().enumerate() {
        let anc = layout.z_ancilla(i);
        sub.push(Instruction::PrepZ(Qubit(anc)));
        for &dq in support {
            sub.push(Instruction::gate(
                GateKind::Cnot,
                &[layout.data_qubit(dq), anc],
            ));
        }
        sub.push(Instruction::Measure(Qubit(anc)));
    }
    for (i, support) in code.x_stabilizers().iter().enumerate() {
        let anc = layout.x_ancilla(i);
        sub.push(Instruction::PrepZ(Qubit(anc)));
        sub.push(Instruction::gate(GateKind::H, &[anc]));
        for &dq in support {
            sub.push(Instruction::gate(
                GateKind::Cnot,
                &[anc, layout.data_qubit(dq)],
            ));
        }
        sub.push(Instruction::gate(GateKind::H, &[anc]));
        sub.push(Instruction::Measure(Qubit(anc)));
    }
    program.push_subcircuit(sub);
    (program, layout)
}

/// Extracts the Z-check syndrome bits from a measured bit register.
pub fn z_syndrome_bits(layout: &EsmLayout, bits: u64) -> Vec<bool> {
    (0..layout.z_ancillas)
        .map(|i| (bits >> layout.z_ancilla(i)) & 1 == 1)
        .collect()
}

/// Extracts the X-check syndrome bits from a measured bit register.
pub fn x_syndrome_bits(layout: &EsmLayout, bits: u64) -> Vec<bool> {
    (0..layout.x_ancillas)
        .map(|i| (bits >> layout.x_ancilla(i)) & 1 == 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::PauliError;
    use qxsim::Simulator;

    /// Runs one ESM round on a state with an injected X error and returns
    /// the measured Z-syndrome.
    fn measured_syndrome(code: &StabilizerCode, flipped: &[usize]) -> Vec<bool> {
        let (esm, layout) = esm_program(code, 1);
        // Prepend the error injection.
        let mut program = Program::new(layout.total());
        let mut inject = Subcircuit::new("inject");
        for &q in flipped {
            inject.push(Instruction::gate(GateKind::X, &[q]));
        }
        program.push_subcircuit(inject);
        for s in esm.subcircuits() {
            program.push_subcircuit(s.clone());
        }
        let r = Simulator::perfect().run_once(&program).unwrap();
        z_syndrome_bits(&layout, r.bits)
    }

    #[test]
    fn clean_state_has_trivial_syndrome() {
        let code = StabilizerCode::repetition(3);
        assert_eq!(measured_syndrome(&code, &[]), vec![false, false]);
    }

    #[test]
    fn single_flips_produce_textbook_syndromes() {
        let code = StabilizerCode::repetition(3);
        assert_eq!(measured_syndrome(&code, &[0]), vec![true, false]);
        assert_eq!(measured_syndrome(&code, &[1]), vec![true, true]);
        assert_eq!(measured_syndrome(&code, &[2]), vec![false, true]);
    }

    #[test]
    fn measured_syndrome_matches_pauli_frame_model() {
        let code = StabilizerCode::repetition(5);
        for q in 0..5 {
            let mut e = PauliError::identity(5);
            e.x[q] = true;
            let model = code.syndrome(&e).z_checks;
            let measured = measured_syndrome(&code, &[q]);
            assert_eq!(measured, model, "qubit {q}");
        }
    }

    #[test]
    fn ancilla_first_layout_reproduces_syndromes() {
        let code = StabilizerCode::repetition(3);
        let (esm, layout) = esm_program_ancilla_first(&code, 1);
        assert_eq!(layout.z_ancilla(0), 0);
        assert_eq!(layout.data_qubit(0), 2);
        for (flipped, expect) in [
            (None, vec![false, false]),
            (Some(0), vec![true, false]),
            (Some(1), vec![true, true]),
            (Some(2), vec![false, true]),
        ] {
            let mut program = Program::new(layout.total());
            let mut inject = Subcircuit::new("inject");
            if let Some(q) = flipped {
                inject.push(Instruction::gate(GateKind::X, &[layout.data_qubit(q)]));
            }
            program.push_subcircuit(inject);
            for s in esm.subcircuits() {
                program.push_subcircuit(s.clone());
            }
            let r = Simulator::perfect().run_once(&program).unwrap();
            assert_eq!(z_syndrome_bits(&layout, r.bits), expect, "{flipped:?}");
        }
    }

    #[test]
    fn surface_code_esm_ancillas_fit_the_register() {
        let code = crate::SurfaceCode::new(5).to_stabilizer_code();
        let (p, layout) = esm_program_ancilla_first(&code, 1);
        assert_eq!(layout.total(), 81);
        assert_eq!(layout.z_ancillas + layout.x_ancillas, 40);
        // Every measured qubit must fit the u64 measurement register.
        for i in 0..layout.z_ancillas {
            assert!(layout.z_ancilla(i) < 64);
        }
        for i in 0..layout.x_ancillas {
            assert!(layout.x_ancilla(i) < 64);
        }
        p.validate().expect("surface esm program valid");
    }

    #[test]
    fn steane_esm_layout_counts() {
        let code = StabilizerCode::steane();
        let (p, layout) = esm_program(&code, 3);
        assert_eq!(layout.total(), 13); // 7 data + 3 + 3 ancilla
        assert_eq!(p.subcircuits()[0].iterations(), 3);
        p.validate().expect("esm program valid");
    }

    #[test]
    fn steane_x_checks_detect_z_errors() {
        let code = StabilizerCode::steane();
        let (esm, layout) = esm_program(&code, 1);
        let mut program = Program::new(layout.total());
        let mut inject = Subcircuit::new("inject");
        // Prepare the data register in |+>^7, a +1 eigenstate of every
        // X stabilizer (|0>^7 is not, and Z acts trivially on it, which
        // made this test depend on the RNG's projection of the initial
        // state). On |+>^7 the injected Z deterministically flips exactly
        // the X checks whose support contains qubit 6.
        for q in 0..code.data_qubits() {
            inject.push(Instruction::gate(GateKind::H, &[q]));
        }
        inject.push(Instruction::gate(GateKind::Z, &[6]));
        program.push_subcircuit(inject);
        for s in esm.subcircuits() {
            program.push_subcircuit(s.clone());
        }
        let r = Simulator::perfect().run_once(&program).unwrap();
        let xs = x_syndrome_bits(&layout, r.bits);
        // Z on qubit 6 is in all three X-check supports.
        assert_eq!(xs, vec![true, true, true]);
    }
}
