//! Stabilizer codes in the code-capacity (Pauli-frame) model.
//!
//! A code is given by its stabilizer supports; errors are Pauli masks on
//! the data qubits; syndromes are parities of error masks over supports.
//! The small codes here (repetition, Steane) are exactly the "small codes"
//! the paper says Preskill's NISQ argument revived against surface codes
//! (§2.1).

/// A Pauli error pattern over `n` data qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliError {
    /// X component per qubit.
    pub x: Vec<bool>,
    /// Z component per qubit.
    pub z: Vec<bool>,
}

impl PauliError {
    /// The identity error on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliError {
            x: vec![false; n],
            z: vec![false; n],
        }
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the error is the identity.
    pub fn is_empty(&self) -> bool {
        !self.x.iter().any(|&b| b) && !self.z.iter().any(|&b| b)
    }

    /// Pauli weight (qubits with any non-identity component).
    pub fn weight(&self) -> usize {
        self.x.iter().zip(&self.z).filter(|(&x, &z)| x || z).count()
    }

    /// Multiplies (XORs) another error into this one.
    pub fn compose(&mut self, other: &PauliError) {
        for i in 0..self.x.len() {
            self.x[i] ^= other.x[i];
            self.z[i] ^= other.z[i];
        }
    }

    /// Parity of the X component over a support set.
    pub fn x_parity(&self, support: &[usize]) -> bool {
        support.iter().filter(|&&q| self.x[q]).count() % 2 == 1
    }

    /// Parity of the Z component over a support set.
    pub fn z_parity(&self, support: &[usize]) -> bool {
        support.iter().filter(|&&q| self.z[q]).count() % 2 == 1
    }
}

/// The syndrome of an error: one bit per stabilizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Syndrome {
    /// Bits from Z-type stabilizers (which detect X errors).
    pub z_checks: Vec<bool>,
    /// Bits from X-type stabilizers (which detect Z errors).
    pub x_checks: Vec<bool>,
}

impl Syndrome {
    /// Whether any check fired.
    pub fn is_trivial(&self) -> bool {
        !self.z_checks.iter().any(|&b| b) && !self.x_checks.iter().any(|&b| b)
    }
}

/// A CSS stabilizer code described by its check supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizerCode {
    name: String,
    n: usize,
    k: usize,
    d: usize,
    /// Supports of Z-type stabilizers (detect X errors).
    z_stabilizers: Vec<Vec<usize>>,
    /// Supports of X-type stabilizers (detect Z errors).
    x_stabilizers: Vec<Vec<usize>>,
    /// Support of the logical X operator.
    logical_x: Vec<usize>,
    /// Support of the logical Z operator.
    logical_z: Vec<usize>,
}

impl StabilizerCode {
    /// Builds a code from raw parts.
    #[allow(clippy::too_many_arguments)] // a code *is* these eight parts
    pub fn new(
        name: impl Into<String>,
        n: usize,
        k: usize,
        d: usize,
        z_stabilizers: Vec<Vec<usize>>,
        x_stabilizers: Vec<Vec<usize>>,
        logical_x: Vec<usize>,
        logical_z: Vec<usize>,
    ) -> Self {
        StabilizerCode {
            name: name.into(),
            n,
            k,
            d,
            z_stabilizers,
            x_stabilizers,
            logical_x,
            logical_z,
        }
    }

    /// The distance-`d` bit-flip repetition code `|0..0>/|1..1>`.
    ///
    /// Detects X errors via adjacent `ZZ` checks; offers no phase
    /// protection (the textbook "small code").
    pub fn repetition(d: usize) -> Self {
        assert!(d >= 2, "repetition code needs d >= 2");
        let z_stabs: Vec<Vec<usize>> = (0..d - 1).map(|i| vec![i, i + 1]).collect();
        StabilizerCode::new(
            format!("repetition-{d}"),
            d,
            1,
            d,
            z_stabs,
            Vec::new(),
            (0..d).collect(), // logical X = X on every qubit
            vec![0],          // logical Z = Z on one qubit
        )
    }

    /// The Steane `[[7,1,3]]` code (CSS from the `[7,4,3]` Hamming code).
    pub fn steane() -> Self {
        let supports = vec![vec![3, 4, 5, 6], vec![1, 2, 5, 6], vec![0, 2, 4, 6]];
        StabilizerCode::new(
            "steane-[[7,1,3]]",
            7,
            1,
            3,
            supports.clone(),
            supports,
            (0..7).collect(),
            (0..7).collect(),
        )
    }

    /// Code name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical data qubits.
    pub fn data_qubits(&self) -> usize {
        self.n
    }

    /// Number of logical qubits.
    pub fn logical_qubits(&self) -> usize {
        self.k
    }

    /// Code distance.
    pub fn distance(&self) -> usize {
        self.d
    }

    /// Number of stabilizer checks (= ancilla qubits in a standard ESM
    /// layout, the overhead Preskill's argument is about).
    pub fn ancilla_qubits(&self) -> usize {
        self.z_stabilizers.len() + self.x_stabilizers.len()
    }

    /// Z-type stabilizer supports.
    pub fn z_stabilizers(&self) -> &[Vec<usize>] {
        &self.z_stabilizers
    }

    /// X-type stabilizer supports.
    pub fn x_stabilizers(&self) -> &[Vec<usize>] {
        &self.x_stabilizers
    }

    /// Logical X support.
    pub fn logical_x(&self) -> &[usize] {
        &self.logical_x
    }

    /// Logical Z support.
    pub fn logical_z(&self) -> &[usize] {
        &self.logical_z
    }

    /// Measures the error syndrome of `error`.
    pub fn syndrome(&self, error: &PauliError) -> Syndrome {
        Syndrome {
            z_checks: self
                .z_stabilizers
                .iter()
                .map(|s| error.x_parity(s))
                .collect(),
            x_checks: self
                .x_stabilizers
                .iter()
                .map(|s| error.z_parity(s))
                .collect(),
        }
    }

    /// Whether a *syndrome-free* residual error acts as a logical operator.
    ///
    /// A residual X-type component is a logical X iff it anticommutes with
    /// logical Z (odd overlap), and dually for Z components.
    pub fn is_logical_error(&self, residual: &PauliError) -> bool {
        residual.x_parity(&self.logical_z) || residual.z_parity(&self.logical_x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_code_shape() {
        let c = StabilizerCode::repetition(3);
        assert_eq!(c.data_qubits(), 3);
        assert_eq!(c.ancilla_qubits(), 2);
        assert_eq!(c.distance(), 3);
        assert_eq!(c.z_stabilizers(), &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn repetition_syndromes_distinguish_single_flips() {
        let c = StabilizerCode::repetition(3);
        let mut syndromes = Vec::new();
        for q in 0..3 {
            let mut e = PauliError::identity(3);
            e.x[q] = true;
            let s = c.syndrome(&e);
            assert!(!s.is_trivial());
            syndromes.push(s.z_checks.clone());
        }
        // All three single-flip syndromes are distinct.
        syndromes.sort();
        syndromes.dedup();
        assert_eq!(syndromes.len(), 3);
    }

    #[test]
    fn repetition_ignores_phase_errors() {
        let c = StabilizerCode::repetition(3);
        let mut e = PauliError::identity(3);
        e.z[1] = true;
        assert!(c.syndrome(&e).is_trivial());
        // ... and that undetected Z is a logical error.
        assert!(c.is_logical_error(&e));
    }

    #[test]
    fn steane_distinguishes_all_single_qubit_errors() {
        let c = StabilizerCode::steane();
        assert_eq!(c.data_qubits(), 7);
        assert_eq!(c.ancilla_qubits(), 6);
        let mut seen = Vec::new();
        for q in 0..7 {
            let mut e = PauliError::identity(7);
            e.x[q] = true;
            let s = c.syndrome(&e);
            assert!(!s.is_trivial(), "X{q} undetected");
            seen.push((s.z_checks.clone(), s.x_checks.clone()));
            let mut e = PauliError::identity(7);
            e.z[q] = true;
            let s = c.syndrome(&e);
            assert!(!s.is_trivial(), "Z{q} undetected");
        }
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 7, "single-X syndromes must be unique");
    }

    #[test]
    fn stabilizers_commute_with_logicals() {
        // Logical operators have trivial syndrome.
        for c in [StabilizerCode::repetition(5), StabilizerCode::steane()] {
            let mut lx = PauliError::identity(c.data_qubits());
            for &q in c.logical_x() {
                lx.x[q] = true;
            }
            assert!(
                c.syndrome(&lx).is_trivial(),
                "{}: logical X detected",
                c.name()
            );
            assert!(c.is_logical_error(&lx));
            let mut lz = PauliError::identity(c.data_qubits());
            for &q in c.logical_z() {
                lz.z[q] = true;
            }
            assert!(
                c.syndrome(&lz).is_trivial(),
                "{}: logical Z detected",
                c.name()
            );
            assert!(c.is_logical_error(&lz));
        }
    }

    #[test]
    fn pauli_error_algebra() {
        let mut a = PauliError::identity(3);
        a.x[0] = true;
        a.z[1] = true;
        assert_eq!(a.weight(), 2);
        let mut b = PauliError::identity(3);
        b.x[0] = true;
        a.compose(&b);
        assert_eq!(a.weight(), 1);
        assert!(!a.is_empty());
        a.z[1] = false;
        assert!(a.is_empty());
    }
}
