//! The planar surface code (§2.1 of the paper: data qubits + ancilla
//! qubits on a 2-D nearest-neighbour lattice, error syndrome measurement
//! over plaquettes).
//!
//! Layout: a `(2d-1) x (2d-1)` grid. Cells with even coordinate parity are
//! data qubits; odd-parity cells are checks — X-type on even rows, Z-type
//! on odd rows. Each check acts on its in-grid N/S/E/W data neighbours.
//! This is the standard planar code with `n = d^2 + (d-1)^2` data qubits
//! and `2d(d-1)` ancillas.

use crate::code::{PauliError, StabilizerCode};

/// A distance-`d` planar surface code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfaceCode {
    d: usize,
    /// Data qubit index per grid cell (usize::MAX for non-data cells).
    cell_to_data: Vec<usize>,
    /// Grid coordinates of each data qubit.
    data_coords: Vec<(usize, usize)>,
    /// Z-check positions (odd rows) and their data supports.
    z_checks: Vec<((usize, usize), Vec<usize>)>,
    /// X-check positions (even rows, odd parity) and their data supports.
    x_checks: Vec<((usize, usize), Vec<usize>)>,
    /// Logical Z support: top row of data qubits.
    logical_z: Vec<usize>,
    /// Logical X support: left column of data qubits.
    logical_x: Vec<usize>,
}

impl SurfaceCode {
    /// Builds a distance-`d` planar surface code.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`.
    pub fn new(d: usize) -> Self {
        assert!(d >= 2, "surface code needs d >= 2");
        let side = 2 * d - 1;
        let mut cell_to_data = vec![usize::MAX; side * side];
        let mut data_coords = Vec::new();
        for r in 0..side {
            for c in 0..side {
                if (r + c) % 2 == 0 {
                    cell_to_data[r * side + c] = data_coords.len();
                    data_coords.push((r, c));
                }
            }
        }
        let data_at = |r: isize, c: isize| -> Option<usize> {
            if r < 0 || c < 0 || r >= side as isize || c >= side as isize {
                return None;
            }
            let idx = cell_to_data[r as usize * side + c as usize];
            (idx != usize::MAX).then_some(idx)
        };
        let mut z_checks = Vec::new();
        let mut x_checks = Vec::new();
        for r in 0..side {
            for c in 0..side {
                if (r + c) % 2 == 1 {
                    let support: Vec<usize> = [(-1, 0), (1, 0), (0, -1), (0, 1)]
                        .iter()
                        .filter_map(|&(dr, dc)| data_at(r as isize + dr, c as isize + dc))
                        .collect();
                    if r % 2 == 1 {
                        z_checks.push(((r, c), support));
                    } else {
                        x_checks.push(((r, c), support));
                    }
                }
            }
        }
        // Logical Z: top row (r = 0, all even columns). Logical X: left
        // column (c = 0, all even rows).
        let logical_z: Vec<usize> = (0..side).step_by(2).map(|c| cell_to_data[c]).collect();
        let logical_x: Vec<usize> = (0..side)
            .step_by(2)
            .map(|r| cell_to_data[r * side])
            .collect();
        SurfaceCode {
            d,
            cell_to_data,
            data_coords,
            z_checks,
            x_checks,
            logical_z,
            logical_x,
        }
    }

    /// Code distance.
    pub fn distance(&self) -> usize {
        self.d
    }

    /// Number of data qubits (`d^2 + (d-1)^2`).
    pub fn data_qubits(&self) -> usize {
        self.data_coords.len()
    }

    /// Number of ancilla (check) qubits (`2d(d-1)`).
    pub fn ancilla_qubits(&self) -> usize {
        self.z_checks.len() + self.x_checks.len()
    }

    /// Total physical qubits per logical qubit — the overhead figure behind
    /// Preskill's "surface code requires too many ancillas" argument.
    pub fn total_qubits(&self) -> usize {
        self.data_qubits() + self.ancilla_qubits()
    }

    /// Z-check supports.
    pub fn z_checks(&self) -> impl Iterator<Item = &[usize]> {
        self.z_checks.iter().map(|(_, s)| s.as_slice())
    }

    /// X-check supports.
    pub fn x_checks(&self) -> impl Iterator<Item = &[usize]> {
        self.x_checks.iter().map(|(_, s)| s.as_slice())
    }

    /// Logical Z support.
    pub fn logical_z(&self) -> &[usize] {
        &self.logical_z
    }

    /// Logical X support.
    pub fn logical_x(&self) -> &[usize] {
        &self.logical_x
    }

    /// The code as a generic [`StabilizerCode`], so the ESM circuit
    /// builder and the Monte Carlo harness can run surface-code rounds.
    pub fn to_stabilizer_code(&self) -> StabilizerCode {
        StabilizerCode::new(
            format!("surface-{}", self.d),
            self.data_qubits(),
            1,
            self.d,
            self.z_checks().map(|s| s.to_vec()).collect(),
            self.x_checks().map(|s| s.to_vec()).collect(),
            self.logical_x.clone(),
            self.logical_z.clone(),
        )
    }

    /// Z-checks with their grid positions: `(position, support)` pairs in
    /// the same order as [`SurfaceCode::z_checks`]. The position is the
    /// defect coordinate the matching decoder consumes, so a measured
    /// ancilla syndrome can be mapped back onto the grid.
    pub fn z_checks_with_pos(&self) -> impl Iterator<Item = (&(usize, usize), &[usize])> {
        self.z_checks.iter().map(|(p, s)| (p, s.as_slice()))
    }

    /// Syndrome of the X component of an error: fired Z-checks, as
    /// positions on the grid (the "defects" the decoder matches).
    pub fn x_error_defects(&self, error: &PauliError) -> Vec<(usize, usize)> {
        self.z_checks
            .iter()
            .filter(|(_, s)| error.x_parity(s))
            .map(|(pos, _)| *pos)
            .collect()
    }

    /// Syndrome of the Z component: fired X-checks.
    pub fn z_error_defects(&self, error: &PauliError) -> Vec<(usize, usize)> {
        self.x_checks
            .iter()
            .filter(|(_, s)| error.z_parity(s))
            .map(|(pos, _)| *pos)
            .collect()
    }

    /// The data qubit at grid cell `(r, c)`, if that cell is a data cell.
    pub fn data_at(&self, r: usize, c: usize) -> Option<usize> {
        let side = 2 * self.d - 1;
        if r >= side || c >= side {
            return None;
        }
        let idx = self.cell_to_data[r * side + c];
        (idx != usize::MAX).then_some(idx)
    }

    /// Grid coordinates of a data qubit.
    pub fn coords_of(&self, data: usize) -> (usize, usize) {
        self.data_coords[data]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts_match_formulas() {
        for d in 2..=7 {
            let s = SurfaceCode::new(d);
            assert_eq!(s.data_qubits(), d * d + (d - 1) * (d - 1), "data d={d}");
            assert_eq!(s.ancilla_qubits(), 2 * d * (d - 1), "ancilla d={d}");
            assert_eq!(s.total_qubits(), (2 * d - 1) * (2 * d - 1), "total d={d}");
        }
    }

    #[test]
    fn checks_have_weight_two_to_four() {
        let s = SurfaceCode::new(3);
        for sup in s.z_checks().chain(s.x_checks()) {
            assert!((2..=4).contains(&sup.len()), "support {sup:?}");
        }
    }

    #[test]
    fn logical_operators_have_distance_weight() {
        for d in 2..=5 {
            let s = SurfaceCode::new(d);
            assert_eq!(s.logical_z().len(), d);
            assert_eq!(s.logical_x().len(), d);
        }
    }

    #[test]
    fn logical_z_commutes_with_all_checks() {
        let s = SurfaceCode::new(4);
        let mut e = PauliError::identity(s.data_qubits());
        for &q in s.logical_z() {
            e.z[q] = true;
        }
        // Z logical only threatens X-checks.
        assert!(
            s.z_error_defects(&e).is_empty(),
            "logical Z must be undetectable"
        );
        let mut ex = PauliError::identity(s.data_qubits());
        for &q in s.logical_x() {
            ex.x[q] = true;
        }
        assert!(
            s.x_error_defects(&ex).is_empty(),
            "logical X must be undetectable"
        );
    }

    #[test]
    fn single_x_error_fires_one_or_two_z_checks() {
        let s = SurfaceCode::new(3);
        for q in 0..s.data_qubits() {
            let mut e = PauliError::identity(s.data_qubits());
            e.x[q] = true;
            let defects = s.x_error_defects(&e);
            assert!(
                (1..=2).contains(&defects.len()),
                "qubit {q} fired {} Z-checks",
                defects.len()
            );
        }
    }

    #[test]
    fn stabilizer_product_is_undetectable() {
        // Applying X on a full X-check support looks like a stabilizer:
        // trivial Z-syndrome.
        let s = SurfaceCode::new(3);
        let sup: Vec<usize> = s.x_checks().next().unwrap().to_vec();
        let mut e = PauliError::identity(s.data_qubits());
        for q in sup {
            e.x[q] = true;
        }
        assert!(s.x_error_defects(&e).is_empty());
    }

    #[test]
    fn data_at_and_coords_roundtrip() {
        let s = SurfaceCode::new(3);
        for q in 0..s.data_qubits() {
            let (r, c) = s.coords_of(q);
            assert_eq!(s.data_at(r, c), Some(q));
        }
        assert_eq!(s.data_at(0, 1), None); // odd parity cell is a check
    }
}
