//! # qec — the quantum error correction substrate
//!
//! The "realistic qubit" track of Bertels et al. (DATE 2020, §2.1, §2.4)
//! rests on quantum error correction: data + ancilla qubits on a 2-D
//! lattice, error syndrome measurements after every gate sequence, and a
//! decoder interpreting the syndrome graph in real time. This crate builds
//! that substrate from scratch:
//!
//! - [`Tableau`] — a CHP-style stabilizer simulator (Gottesman–Knill),
//!   scaling to hundreds of qubits where the state-vector engine stops;
//! - [`StabilizerCode`] — small codes (repetition, Steane `[[7,1,3]]`), the
//!   codes Preskill's NISQ argument revived;
//! - [`SurfaceCode`] — the planar surface code with its
//!   `(2d-1)^2`-physical-qubit footprint;
//! - [`LookupDecoder`] / [`decoder::decode_x_errors`] — exact and greedy
//!   matching decoders;
//! - [`monte`] — Monte-Carlo logical-error-rate estimation;
//! - [`esm`] — syndrome-extraction circuits emitted as cQASM so the full
//!   stack can execute real QEC rounds.
//!
//! # Example
//!
//! ```
//! use qec::monte::surface_logical_error_rate;
//!
//! // Below threshold, a larger distance suppresses logical errors.
//! let d3 = surface_logical_error_rate(3, 0.02, 2_000, 7);
//! let d5 = surface_logical_error_rate(5, 0.02, 2_000, 7);
//! assert!(d5 <= d3 + 0.01);
//! ```

pub mod code;
pub mod decoder;
pub mod esm;
pub mod faulty;
pub mod monte;
pub mod surface;
pub mod tableau;

pub use code::{PauliError, StabilizerCode, Syndrome};
pub use decoder::LookupDecoder;
pub use monte::NoiseKind;
pub use surface::SurfaceCode;
pub use tableau::{LayoutTracker, MeasureRecord, Tableau};
