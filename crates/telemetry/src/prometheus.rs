//! Prometheus text-exposition exporter and schema validator.
//!
//! [`render`] turns a [`Snapshot`] into the Prometheus text format
//! (version 0.0.4, the `text/plain` scrape format): counters stay
//! counters, labelled counter families become one series per label,
//! value aggregates become `_count`/`_sum`/`_min`/`_max` gauges, and
//! every [`LogHistogram`](crate::LogHistogram) becomes a native
//! Prometheus histogram (`_bucket{le=...}` cumulative series plus
//! `_sum`/`_count`) with companion `_p50`/`_p90`/`_p99`/`_p999` gauges so
//! percentiles are scrapeable without server-side `histogram_quantile`.
//!
//! Metric names are sanitised to `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots become
//! underscores, the convention Prometheus itself documents), label
//! values are escaped per the exposition spec. [`validate`] re-parses an
//! exposition and checks exactly the invariants this exporter promises —
//! CI runs it against live `qca-serve` output so schema drift fails the
//! build instead of a dashboard.

use crate::hist::REPORTED_QUANTILES;
use crate::Snapshot;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Sanitises a metric name for the exposition format: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed
/// with `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `(key, value)` label pairs as the canonical
/// `key="value",key2="value2"` form used both as the stored label-set
/// key and on the wire. Empty input renders as the empty string.
pub fn label_string(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label_value(v));
    }
    out
}

/// Joins a stored label-set string with an extra label (for `le`).
fn join_labels(set: &str, extra: &str) -> String {
    if set.is_empty() {
        extra.to_string()
    } else if extra.is_empty() {
        set.to_string()
    } else {
        format!("{set},{extra}")
    }
}

fn sample(out: &mut String, name: &str, labels: &str, value: impl std::fmt::Display) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// Formats an `f64` sample value (NaN/Inf use the spec spellings).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// The Prometheus text exposition for a snapshot. Spans are timing data
/// with no scrape-friendly shape and are not exported here (use the
/// Chrome trace for those).
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        sample(&mut out, &n, "", value);
    }
    for (family, labels) in &snap.labeled {
        let n = sanitize_name(family);
        let _ = writeln!(out, "# TYPE {n} counter");
        for (label, value) in labels {
            let set = label_string(&[("label", label)]);
            sample(&mut out, &n, &set, value);
        }
    }
    for (name, stat) in &snap.values {
        let n = sanitize_name(name);
        for (suffix, value) in [
            ("count", stat.count as f64),
            ("sum", stat.sum),
            ("min", stat.min),
            ("max", stat.max),
        ] {
            let _ = writeln!(out, "# TYPE {n}_{suffix} gauge");
            sample(&mut out, &format!("{n}_{suffix}"), "", fmt_value(value));
        }
    }
    for (family, sets) in &snap.hists {
        let n = sanitize_name(family);
        let _ = writeln!(out, "# TYPE {n} histogram");
        for (set, hist) in sets {
            let mut cumulative = 0u64;
            for (_lo, hi, count) in hist.nonzero_buckets() {
                cumulative += count;
                let le = join_labels(set, &format!("le=\"{hi}\""));
                sample(&mut out, &format!("{n}_bucket"), &le, cumulative);
            }
            let inf = join_labels(set, "le=\"+Inf\"");
            sample(&mut out, &format!("{n}_bucket"), &inf, hist.count());
            sample(&mut out, &format!("{n}_sum"), set, hist.sum());
            sample(&mut out, &format!("{n}_count"), set, hist.count());
        }
        for (suffix, q) in REPORTED_QUANTILES {
            let _ = writeln!(out, "# TYPE {n}_{suffix} gauge");
            for (set, hist) in sets {
                sample(&mut out, &format!("{n}_{suffix}"), set, hist.quantile(q));
            }
        }
    }
    out
}

/// What [`validate`] learned about an exposition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PromCheck {
    /// Total sample lines.
    pub samples: usize,
    /// Distinct metric names seen on sample lines.
    pub metrics: BTreeSet<String>,
    /// Metric names declared `# TYPE ... histogram`.
    pub histograms: BTreeSet<String>,
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Validates a Prometheus text exposition against the schema [`render`]
/// emits: well-formed names, labels and values on every sample line; at
/// most one `# TYPE` per metric, appearing before that metric's
/// samples; and for every declared histogram, per-label-set `_bucket`
/// series with non-decreasing cumulative counts ending in an `+Inf`
/// bucket that equals the `_count` series.
///
/// # Errors
///
/// A message naming the first violated rule and its line number.
pub fn validate(text: &str) -> Result<PromCheck, String> {
    let mut check = PromCheck::default();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_samples: BTreeSet<String> = BTreeSet::new();
    // histogram base name -> label set (minus le) -> bucket (le, count) list
    #[allow(clippy::type_complexity)]
    let mut buckets: BTreeMap<String, BTreeMap<String, Vec<(f64, f64)>>> = BTreeMap::new();
    let mut counts: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut sums: BTreeSet<(String, String)> = BTreeSet::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown TYPE kind {kind:?}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
                if seen_samples.contains(name) {
                    return Err(format!("line {lineno}: TYPE for {name} after its samples"));
                }
                if kind == "histogram" {
                    check.histograms.insert(name.to_string());
                }
            }
            // HELP and free comments are fine.
            continue;
        }
        let s = parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        check.samples += 1;
        check.metrics.insert(s.name.clone());
        seen_samples.insert(s.name.clone());
        // Histogram bookkeeping: strip the series suffix to find the base.
        for (base, kind) in [
            (s.name.strip_suffix("_bucket"), "bucket"),
            (s.name.strip_suffix("_count"), "count"),
            (s.name.strip_suffix("_sum"), "sum"),
        ] {
            let Some(base) = base else { continue };
            if types.get(base).map(String::as_str) != Some("histogram") {
                continue;
            }
            let (le, rest_labels): (Option<f64>, Vec<(String, String)>) = {
                let mut le = None;
                let mut rest = Vec::new();
                for (k, v) in &s.labels {
                    if k == "le" && kind == "bucket" {
                        le = Some(parse_le(v).map_err(|e| format!("line {lineno}: {e}"))?);
                    } else {
                        rest.push((k.clone(), v.clone()));
                    }
                }
                (le, rest)
            };
            let set_key = rest_labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect::<Vec<_>>()
                .join(",");
            match kind {
                "bucket" => {
                    let le =
                        le.ok_or_else(|| format!("line {lineno}: histogram bucket without `le`"))?;
                    buckets
                        .entry(base.to_string())
                        .or_default()
                        .entry(set_key)
                        .or_default()
                        .push((le, s.value));
                }
                "count" => {
                    counts
                        .entry(base.to_string())
                        .or_default()
                        .insert(set_key, s.value);
                }
                _ => {
                    sums.insert((base.to_string(), set_key));
                }
            }
            break;
        }
    }

    for (base, sets) in &buckets {
        for (set, series) in sets {
            let mut last_le = f64::NEG_INFINITY;
            let mut last_count = -1.0f64;
            for &(le, count) in series {
                if le <= last_le {
                    return Err(format!(
                        "histogram {base}{{{set}}}: `le` bounds not strictly increasing"
                    ));
                }
                if count < last_count {
                    return Err(format!(
                        "histogram {base}{{{set}}}: cumulative bucket counts decrease"
                    ));
                }
                last_le = le;
                last_count = count;
            }
            let Some(&(last, inf_count)) = series.last() else {
                continue;
            };
            if last.is_finite() {
                return Err(format!(
                    "histogram {base}{{{set}}}: missing le=\"+Inf\" bucket"
                ));
            }
            let total = counts.get(base).and_then(|m| m.get(set)).copied();
            if total != Some(inf_count) {
                return Err(format!(
                    "histogram {base}{{{set}}}: _count ({total:?}) != +Inf bucket ({inf_count})"
                ));
            }
            if !sums.contains(&(base.clone(), set.clone())) {
                return Err(format!("histogram {base}{{{set}}}: missing _sum series"));
            }
        }
    }
    // A declared histogram with samples must have bucket series.
    for base in &check.histograms {
        let has_samples = check
            .metrics
            .iter()
            .any(|m| m.strip_suffix("_count").or(m.strip_suffix("_sum")) == Some(base.as_str()));
        if has_samples && !buckets.contains_key(base) {
            return Err(format!("histogram {base}: no _bucket series"));
        }
    }
    Ok(check)
}

fn parse_le(v: &str) -> Result<f64, String> {
    match v {
        "+Inf" => Ok(f64::INFINITY),
        _ => v
            .parse::<f64>()
            .map_err(|_| format!("bad `le` value {v:?}")),
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ' || b == b'\t')
        .ok_or("sample line has no value")?;
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let mut pos = name_end;
    if bytes.get(pos) == Some(&b'{') {
        pos += 1;
        loop {
            // Allow an empty or trailing-comma-free label list.
            if bytes.get(pos) == Some(&b'}') {
                pos += 1;
                break;
            }
            let key_end = line[pos..]
                .find('=')
                .map(|i| pos + i)
                .ok_or("label without `=`")?;
            let key = line[pos..key_end].trim();
            if !valid_name(key) {
                return Err(format!("invalid label name {key:?}"));
            }
            pos = key_end + 1;
            if bytes.get(pos) != Some(&b'"') {
                return Err("label value is not quoted".to_string());
            }
            pos += 1;
            let mut value = String::new();
            loop {
                match bytes.get(pos) {
                    None => return Err("unterminated label value".to_string()),
                    Some(b'"') => {
                        pos += 1;
                        break;
                    }
                    Some(b'\\') => {
                        match bytes.get(pos + 1) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            _ => return Err("bad escape in label value".to_string()),
                        }
                        pos += 2;
                    }
                    Some(_) => {
                        let c = line[pos..]
                            .chars()
                            .next()
                            .ok_or("unterminated label value")?;
                        value.push(c);
                        pos += c.len_utf8();
                    }
                }
            }
            labels.push((key.to_string(), value));
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err("expected `,` or `}` after a label".to_string()),
            }
        }
    }
    let rest = line[pos..].trim();
    if rest.is_empty() {
        return Err("sample line has no value".to_string());
    }
    // The exposition format allows `value [timestamp]`.
    let mut parts = rest.split_whitespace();
    let value_text = parts.next().ok_or("sample line has no value")?;
    let value = parse_le(value_text).map_err(|_| format!("bad sample value {value_text:?}"))?;
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing data after sample value".to_string());
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample_snapshot() -> Snapshot {
        let tel = Telemetry::enabled();
        tel.incr("service.jobs.submitted", 42);
        tel.incr_labeled("qxsim.kernel_dispatch", "Cnot", 7);
        tel.record_value("service.queue.depth", 3.0);
        for v in [50u64, 120, 700, 700, 15_000] {
            tel.record_hist("service.latency.e2e_us", v);
            tel.record_hist_labeled(
                "service.latency.queue_wait_us",
                &[("priority", "0"), ("outcome", "ok")],
                v,
            );
        }
        tel.snapshot()
    }

    #[test]
    fn render_validates_against_its_own_schema() {
        let text = render(&sample_snapshot());
        let check = validate(&text).unwrap();
        assert!(check.samples > 10, "expected a rich exposition:\n{text}");
        assert!(check.metrics.contains("service_jobs_submitted"));
        assert!(check.metrics.contains("service_latency_e2e_us_bucket"));
        assert!(check.metrics.contains("service_latency_e2e_us_p50"));
        assert!(check.metrics.contains("service_latency_e2e_us_p999"));
        assert!(check.histograms.contains("service_latency_e2e_us"));
        assert!(check.histograms.contains("service_latency_queue_wait_us"));
        assert!(text
            .contains("service_latency_queue_wait_us_bucket{priority=\"0\",outcome=\"ok\",le=\""));
    }

    #[test]
    fn empty_snapshot_renders_an_empty_valid_exposition() {
        let text = render(&Snapshot::default());
        assert!(text.is_empty());
        let check = validate(&text).unwrap();
        assert_eq!(check.samples, 0);
    }

    #[test]
    fn name_sanitisation() {
        assert_eq!(sanitize_name("service.latency.e2e"), "service_latency_e2e");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name(""), "_");
        assert!(valid_name(&sanitize_name("service.latency.e2e")));
    }

    #[test]
    fn label_values_escape_and_parse_back() {
        let set = label_string(&[("outcome", "a\"b\\c\nd")]);
        let line = format!("m{{{set}}} 1");
        let s = parse_sample(&line).unwrap();
        assert_eq!(
            s.labels,
            vec![("outcome".to_string(), "a\"b\\c\nd".to_string())]
        );
    }

    #[test]
    fn validator_rejects_drift() {
        // Invalid metric name.
        assert!(validate("2bad 1").is_err());
        // Missing value.
        assert!(validate("metric_name").is_err());
        // Unquoted label value.
        assert!(validate("m{a=3} 1").is_err());
        // Duplicate TYPE.
        assert!(validate("# TYPE m counter\n# TYPE m counter\nm 1").is_err());
        // TYPE after samples.
        assert!(validate("m 1\n# TYPE m counter").is_err());
        // Histogram without +Inf.
        assert!(validate("# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1").is_err());
        // Histogram whose count disagrees with the +Inf bucket.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 5\nh_count 2"
        )
        .is_err());
        // Decreasing cumulative counts.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2"
        )
        .is_err());
        // Histogram with _count but no buckets at all.
        assert!(validate("# TYPE h histogram\nh_count 2\nh_sum 1").is_err());
    }

    #[test]
    fn validator_accepts_timestamps_and_comments() {
        let text = "# HELP m helpful\n# TYPE m counter\nm 3 1700000000\n# a free comment\n";
        let check = validate(text).unwrap();
        assert_eq!(check.samples, 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let snap = sample_snapshot();
        let text = render(&snap);
        // The +Inf bucket equals the count for the unlabeled e2e series.
        let hist = &snap.hists["service.latency.e2e_us"][""];
        let inf_line = format!(
            "service_latency_e2e_us_bucket{{le=\"+Inf\"}} {}",
            hist.count()
        );
        assert!(text.contains(&inf_line), "missing {inf_line:?} in:\n{text}");
        let count_line = format!("service_latency_e2e_us_count {}", hist.count());
        assert!(text.contains(&count_line));
    }
}
