//! # qca-telemetry — stack-wide observability without external dependencies
//!
//! The paper's stack (OpenQL → cQASM → eQASM → QX) spans five crates;
//! understanding where a run spends its time and which paths it took
//! requires one telemetry context threaded through all of them. This crate
//! provides that context:
//!
//! - [`Telemetry`] — a cheaply cloneable handle around a thread-safe
//!   registry. A *disabled* handle (the default) is a `None` pointer: every
//!   operation is a single branch and performs **no allocation**, so hot
//!   kernel paths can be instrumented without regressing.
//! - **Spans** — hierarchical wall-clock timers ([`Telemetry::span`])
//!   whose nesting is tracked per thread; they export as Chrome
//!   trace-event `"X"` (complete) events loadable in Perfetto or
//!   `about:tracing`.
//! - **Counters** — monotonic named `u64` counters
//!   ([`Telemetry::incr`]) and labelled counter families
//!   ([`Telemetry::incr_labeled`], e.g. the kernel-dispatch histogram).
//!   Counter totals are order-independent sums, so they are **bit-identical
//!   for a fixed seed regardless of thread count** — only span timings vary
//!   between runs.
//! - **Value statistics** — min/max/sum/count aggregates
//!   ([`Telemetry::record_value`]) for quantities that are not counts.
//! - **Exporters** — a JSON metrics report ([`Telemetry::export_json`]),
//!   Chrome trace-event JSON ([`Telemetry::export_chrome_trace`]), and a
//!   human-readable summary table ([`Telemetry::summary_table`]). The
//!   bundled [`json`] parser round-trips both formats so schema drift is
//!   testable offline.
//!
//! # Example
//!
//! ```
//! use qca_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! {
//!     let _compile = tel.span("openql", "compile");
//!     {
//!         let _pass = tel.span("openql", "decompose");
//!         tel.incr("openql.gates_lowered", 12);
//!     }
//! }
//! tel.incr_labeled("qxsim.kernel_dispatch", "Cnot", 3);
//! let snap = tel.snapshot();
//! assert_eq!(snap.spans.len(), 2);
//! assert_eq!(snap.spans[1].parent, Some(0)); // decompose nests in compile
//! assert!(tel.export_chrome_trace().contains("\"traceEvents\""));
//! ```

// Library paths must return typed errors, never abort (CI gates these
// lints); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod export;
pub mod hist;
pub mod json;
pub mod prometheus;

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

pub use export::{validate_chrome_trace, TraceCheck};
pub use hist::LogHistogram;

/// One finished (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"decompose"`).
    pub name: String,
    /// Category — the stack layer (`"openql"`, `"eqasm"`, `"qxsim"`,
    /// `"stack"`, ...). Becomes the Chrome trace `cat` field.
    pub cat: String,
    /// Start time in microseconds from the registry epoch.
    pub start_us: u64,
    /// Duration in microseconds (`0` until the guard drops).
    pub dur_us: u64,
    /// Stable per-registry thread id (1-based, in order of first use).
    pub tid: u32,
    /// Index of the enclosing span on the same thread, if any.
    pub parent: Option<usize>,
    /// Nesting depth on its thread (0 = top level).
    pub depth: u32,
    /// Whether the guard has dropped. Open spans export with their
    /// duration-so-far.
    pub closed: bool,
}

/// Min/max/sum/count aggregate of a recorded value series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueStat {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of all values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl ValueStat {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    fn new(v: f64) -> Self {
        ValueStat {
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }
}

/// A point-in-time copy of everything a [`Telemetry`] registry holds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All spans, in start order.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Labelled counter families (histograms over discrete labels),
    /// sorted by family then label.
    pub labeled: BTreeMap<String, BTreeMap<String, u64>>,
    /// Value aggregates, sorted by name.
    pub values: BTreeMap<String, ValueStat>,
    /// Latency histograms: family → label set (the canonical
    /// `key="value",...` string, `""` when unlabeled) → histogram.
    pub hists: BTreeMap<String, BTreeMap<String, LogHistogram>>,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    labeled: BTreeMap<String, BTreeMap<String, u64>>,
    values: BTreeMap<String, ValueStat>,
    hists: BTreeMap<String, BTreeMap<String, LogHistogram>>,
    thread_ids: HashMap<std::thread::ThreadId, u32>,
}

#[derive(Debug)]
struct Registry {
    /// Unique id distinguishing registries on the per-thread span stack.
    id: u64,
    epoch: Instant,
    state: Mutex<State>,
}

static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of `(registry id, span index)` for the spans currently open
    /// on this thread; tracks nesting without any cross-thread state.
    static SPAN_STACK: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

impl Registry {
    /// Locks the state, recovering from a poisoned mutex (a panicking
    /// instrumented thread must not take the whole telemetry down).
    fn lock(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn thread_id(state: &mut State) -> u32 {
        let next = state.thread_ids.len() as u32 + 1;
        *state
            .thread_ids
            .entry(std::thread::current().id())
            .or_insert(next)
    }
}

/// A shared handle to a telemetry registry.
///
/// Clones share the same registry (the handle is an `Arc`). The default
/// handle is **disabled**: every method is a null-pointer check and a
/// return, with no allocation — cheap enough for per-gate hot paths.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A recording registry.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Registry {
                id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A no-op handle (the default). All operations are free.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; it closes (and its duration is recorded) when the
    /// returned guard drops. Nesting is tracked per thread: a span opened
    /// while another span of the same registry is open on this thread
    /// records that span as its parent.
    #[inline]
    pub fn span(&self, cat: &str, name: &str) -> SpanGuard {
        let Some(reg) = &self.inner else {
            return SpanGuard { active: None };
        };
        let start_us = reg.now_us();
        let mut state = reg.lock();
        let tid = Registry::thread_id(&mut state);
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(rid, _)| *rid == reg.id)
                .map(|(_, idx)| *idx)
        });
        let depth = parent
            .and_then(|p| state.spans.get(p))
            .map_or(0, |p| p.depth + 1);
        let index = state.spans.len();
        state.spans.push(SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            start_us,
            dur_us: 0,
            tid,
            parent,
            depth,
            closed: false,
        });
        drop(state);
        SPAN_STACK.with(|s| s.borrow_mut().push((reg.id, index)));
        SpanGuard {
            active: Some((Arc::clone(reg), index)),
        }
    }

    /// Adds `by` to the named monotonic counter.
    #[inline]
    pub fn incr(&self, name: &str, by: u64) {
        let Some(reg) = &self.inner else { return };
        let mut state = reg.lock();
        if let Some(c) = state.counters.get_mut(name) {
            *c += by;
        } else {
            state.counters.insert(name.to_string(), by);
        }
    }

    /// Adds `by` to label `label` of the counter family `family` — a
    /// histogram over discrete labels (kernel classes, mutation kinds,
    /// error variants, ...).
    #[inline]
    pub fn incr_labeled(&self, family: &str, label: &str, by: u64) {
        let Some(reg) = &self.inner else { return };
        let mut state = reg.lock();
        let fam = state.labeled.entry(family.to_string()).or_default();
        if let Some(c) = fam.get_mut(label) {
            *c += by;
        } else {
            fam.insert(label.to_string(), by);
        }
    }

    /// Records one observation of a named value series (min/max/sum/count
    /// aggregate).
    #[inline]
    pub fn record_value(&self, name: &str, v: f64) {
        let Some(reg) = &self.inner else { return };
        let mut state = reg.lock();
        if let Some(s) = state.values.get_mut(name) {
            s.record(v);
        } else {
            state.values.insert(name.to_string(), ValueStat::new(v));
        }
    }

    /// Records one observation of the `label` series of the value family
    /// `family` — per-label timing/size distributions (per-kernel-class
    /// nanoseconds, per-pass microseconds, ...). Stored in the value map
    /// under `family.label`; the disabled handle pays a single branch and
    /// never allocates the joined name.
    #[inline]
    pub fn record_value_labeled(&self, family: &str, label: &str, v: f64) {
        if self.inner.is_none() {
            return;
        }
        self.record_value(&format!("{family}.{label}"), v);
    }

    /// Records one observation into the named [`LogHistogram`] —
    /// log-bucketed with ~6% relative precision, merged deterministically
    /// across threads, exported with p50/p90/p99/p99.9. Histograms hold
    /// timing-shaped data and are therefore **excluded** from
    /// [`Telemetry::counters_json`], like spans.
    #[inline]
    pub fn record_hist(&self, name: &str, v: u64) {
        let Some(reg) = &self.inner else { return };
        let mut state = reg.lock();
        state
            .hists
            .entry(name.to_string())
            .or_default()
            .entry(String::new())
            .or_insert_with(LogHistogram::new)
            .record(v);
    }

    /// Records one observation into the labelled series of a histogram
    /// family (e.g. `service.latency.e2e_us{priority="0",outcome="ok"}`).
    /// The label set is canonicalised to the Prometheus
    /// `key="value",...` form. The disabled handle pays a single branch
    /// and never builds the label string.
    #[inline]
    pub fn record_hist_labeled(&self, family: &str, labels: &[(&str, &str)], v: u64) {
        let Some(reg) = &self.inner else { return };
        let set = prometheus::label_string(labels);
        let mut state = reg.lock();
        state
            .hists
            .entry(family.to_string())
            .or_default()
            .entry(set)
            .or_insert_with(LogHistogram::new)
            .record(v);
    }

    /// Records an already-finished span from explicit wall-clock
    /// endpoints — for events whose lifetime does not follow lexical
    /// scope (a job's queue wait, a retry window). The span is closed,
    /// top-level (no parent), and attributed to the calling thread.
    /// Instants before the registry epoch clamp to it.
    #[inline]
    pub fn record_span_at(&self, cat: &str, name: &str, start: Instant, end: Instant) {
        let Some(reg) = &self.inner else { return };
        let start_us = u64::try_from(start.saturating_duration_since(reg.epoch).as_micros())
            .unwrap_or(u64::MAX);
        let end_us =
            u64::try_from(end.saturating_duration_since(reg.epoch).as_micros()).unwrap_or(u64::MAX);
        let mut state = reg.lock();
        let tid = Registry::thread_id(&mut state);
        state.spans.push(SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            tid,
            parent: None,
            depth: 0,
            closed: true,
        });
    }

    /// Copies out everything recorded so far. Open spans appear with their
    /// duration-so-far and `closed == false`.
    pub fn snapshot(&self) -> Snapshot {
        let Some(reg) = &self.inner else {
            return Snapshot::default();
        };
        let now = reg.now_us();
        let state = reg.lock();
        let mut spans = state.spans.clone();
        for s in &mut spans {
            if !s.closed {
                s.dur_us = now.saturating_sub(s.start_us);
            }
        }
        Snapshot {
            spans,
            counters: state.counters.clone(),
            labeled: state.labeled.clone(),
            values: state.values.clone(),
            hists: state.hists.clone(),
        }
    }

    /// The full JSON metrics report (counters, labelled histograms, value
    /// aggregates, spans). See [`export::metrics_json`] for the schema.
    pub fn export_json(&self) -> String {
        export::metrics_json(&self.snapshot())
    }

    /// Only the deterministic part of the report — counters and labelled
    /// histograms, no timings. For a fixed seed this string is
    /// bit-identical regardless of thread count.
    pub fn counters_json(&self) -> String {
        export::counters_json(&self.snapshot())
    }

    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object form),
    /// loadable in Perfetto or `about:tracing`.
    pub fn export_chrome_trace(&self) -> String {
        export::chrome_trace(&self.snapshot())
    }

    /// A human-readable summary: the span tree with durations, then
    /// counters, labelled histograms and value aggregates.
    pub fn summary_table(&self) -> String {
        export::summary_table(&self.snapshot())
    }

    /// The span tree in flamegraph collapsed-stack form (one
    /// `frame;frame weight` line per distinct stack, weights = self time
    /// in microseconds). See [`export::collapsed`].
    pub fn export_collapsed(&self) -> String {
        export::collapsed(&self.snapshot())
    }

    /// The Prometheus text exposition of everything recorded so far.
    /// See [`prometheus::render`] for the schema and
    /// [`prometheus::validate`] for its checker.
    pub fn export_prometheus(&self) -> String {
        prometheus::render(&self.snapshot())
    }
}

/// Closes its span on drop. Inert (and allocation-free) when obtained from
/// a disabled [`Telemetry`].
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Arc<Registry>, usize)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((reg, index)) = self.active.take() else {
            return;
        };
        let end = reg.now_us();
        let mut state = reg.lock();
        if let Some(span) = state.spans.get_mut(index) {
            span.dur_us = end.saturating_sub(span.start_us);
            span.closed = true;
        }
        drop(state);
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(rid, idx)| rid == reg.id && idx == index)
            {
                stack.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.incr("x", 5);
        tel.incr_labeled("fam", "a", 1);
        tel.record_value("v", 1.0);
        tel.record_hist("h", 10);
        tel.record_hist_labeled("h", &[("k", "v")], 10);
        let now = Instant::now();
        tel.record_span_at("cat", "late", now, now);
        let _s = tel.span("cat", "name");
        let snap = tel.snapshot();
        assert_eq!(snap, Snapshot::default());
    }

    #[test]
    fn hists_record_merge_deterministically_across_threads() {
        // The same seeded observations split over 1/2/4 workers must
        // produce bit-identical bucket counts — the merge is commutative.
        let snapshots: Vec<Snapshot> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let tel = Telemetry::enabled();
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let tel = tel.clone();
                        s.spawn(move || {
                            let lo = 800 * t / threads;
                            let hi = 800 * (t + 1) / threads;
                            for i in lo..hi {
                                // Seeded value spread across many buckets.
                                let v = ((i as u64).wrapping_mul(2654435761) >> 7) % 100_000;
                                tel.record_hist("lat", v);
                                tel.record_hist_labeled(
                                    "lat.by_prio",
                                    &[("priority", if i % 2 == 0 { "0" } else { "1" })],
                                    v,
                                );
                            }
                        });
                    }
                });
                tel.snapshot()
            })
            .collect();
        assert_eq!(snapshots[0].hists, snapshots[1].hists);
        assert_eq!(snapshots[1].hists, snapshots[2].hists);
        let h = &snapshots[0].hists["lat"][""];
        assert_eq!(h.count(), 800);
    }

    #[test]
    fn record_span_at_clamps_and_closes() {
        let tel = Telemetry::enabled();
        let start = Instant::now();
        let end = start + std::time::Duration::from_millis(2);
        tel.record_span_at("service.job", "job-1.queue_wait", start, end);
        let spans = tel.snapshot().spans;
        assert_eq!(spans.len(), 1);
        assert!(spans[0].closed);
        assert_eq!(spans[0].parent, None);
        assert!(spans[0].dur_us >= 1_000, "dur {} us", spans[0].dur_us);
        // An instant before the registry epoch clamps to zero rather than
        // wrapping.
        let early = start.checked_sub(std::time::Duration::from_secs(3600));
        if let Some(early) = early {
            tel.record_span_at("service.job", "pre-epoch", early, start);
            let spans = tel.snapshot().spans;
            assert_eq!(spans[1].start_us, 0);
        }
    }

    #[test]
    fn counters_accumulate() {
        let tel = Telemetry::enabled();
        tel.incr("a", 1);
        tel.incr("a", 2);
        tel.incr("b", 7);
        let snap = tel.snapshot();
        assert_eq!(snap.counters.get("a"), Some(&3));
        assert_eq!(snap.counters.get("b"), Some(&7));
    }

    #[test]
    fn labeled_families_accumulate_per_label() {
        let tel = Telemetry::enabled();
        tel.incr_labeled("dispatch", "Cnot", 2);
        tel.incr_labeled("dispatch", "Cnot", 3);
        tel.incr_labeled("dispatch", "Cz", 1);
        let snap = tel.snapshot();
        let fam = snap.labeled.get("dispatch").unwrap();
        assert_eq!(fam.get("Cnot"), Some(&5));
        assert_eq!(fam.get("Cz"), Some(&1));
    }

    #[test]
    fn values_aggregate() {
        let tel = Telemetry::enabled();
        tel.record_value("v", 2.0);
        tel.record_value("v", -1.0);
        tel.record_value("v", 5.0);
        let s = tel.snapshot().values.get("v").copied().unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 6.0);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span("stack", "execute");
            {
                let _mid = tel.span("openql", "compile");
                let _inner = tel.span("openql", "decompose");
            }
            let _sibling = tel.span("qxsim", "run_shots");
        }
        let spans = tel.snapshot().spans;
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].parent, Some(1));
        assert_eq!(spans[2].depth, 2);
        assert_eq!(spans[3].parent, Some(0), "sibling re-parents to root");
        assert!(spans.iter().all(|s| s.closed));
        // A parent's window covers its child's.
        assert!(spans[1].start_us >= spans[0].start_us);
        assert!(spans[1].start_us + spans[1].dur_us <= spans[0].start_us + spans[0].dur_us);
    }

    #[test]
    fn spans_on_different_threads_do_not_nest() {
        let tel = Telemetry::enabled();
        let _outer = tel.span("stack", "execute");
        std::thread::scope(|s| {
            let t = tel.clone();
            s.spawn(move || {
                let _inner = t.span("qxsim", "worker");
            });
        });
        let spans = tel.snapshot().spans;
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, None, "cross-thread spans are roots");
        assert_ne!(spans[0].tid, spans[1].tid);
    }

    #[test]
    fn two_registries_do_not_interfere() {
        let a = Telemetry::enabled();
        let b = Telemetry::enabled();
        let _sa = a.span("x", "a_outer");
        let _sb = b.span("x", "b_outer");
        let _sa2 = a.span("x", "a_inner");
        drop(_sa2);
        let spans_a = a.snapshot().spans;
        let spans_b = b.snapshot().spans;
        assert_eq!(spans_a.len(), 2);
        assert_eq!(spans_a[1].parent, Some(0));
        assert_eq!(spans_b.len(), 1);
        assert_eq!(spans_b[0].parent, None);
    }

    #[test]
    fn open_spans_snapshot_with_partial_duration() {
        let tel = Telemetry::enabled();
        let _open = tel.span("stack", "running");
        let snap = tel.snapshot();
        assert!(!snap.spans[0].closed);
    }

    #[test]
    fn counter_sums_are_thread_order_independent() {
        // Simulates worker threads flushing partial counts: totals must be
        // identical however the work is split.
        let totals: Vec<u64> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let tel = Telemetry::enabled();
                // 1200 increments of 1200/i split across `threads` workers:
                // every split covers the same index set, so totals match.
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let tel = tel.clone();
                        s.spawn(move || {
                            let lo = 1200 * t / threads;
                            let hi = 1200 * (t + 1) / threads;
                            for i in lo..hi {
                                tel.incr("work", 1200 / (i as u64 + 1));
                                tel.incr_labeled("fam", if i % 2 == 0 { "even" } else { "odd" }, 1);
                            }
                        });
                    }
                });
                tel.counters_json();
                tel.snapshot().counters.get("work").copied().unwrap_or(0)
            })
            .collect();
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[1], totals[2]);
    }
}
