//! A minimal JSON parser — just enough to round-trip this crate's own
//! exporter output in tests and to validate Chrome traces in CI. No
//! external dependencies (the build is offline), no serde.
//!
//! Accepts standard JSON (RFC 8259). Numbers are parsed as `f64`, which
//! is exact for every integer this crate emits (u64 counters stay well
//! below 2^53 in practice; the exporters are the only producers).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value at `key` if this is an object, else `None`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Serialises back to compact (single-line) JSON — used to embed a
    /// parsed document inside another JSON message, e.g. the `metrics`
    /// wire response. `parse(v.to_compact()) == v` for every value this
    /// crate's exporters emit (numbers re-format via `f64`; integers are
    /// printed without a fractional part).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => {
                out.push('"');
                out.push_str(&crate::export::escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&crate::export::escape(k));
                    out.push_str("\":");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// A message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not emitted by our exporters;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Number(-150.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            JsonValue::String("a\n\"bA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\": [1, 2, {\"b\": null}], \"c\": \"d\"}").unwrap();
        let JsonValue::Object(o) = &v else { panic!() };
        let Some(JsonValue::Array(arr)) = o.get("a") else {
            panic!()
        };
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("d"));
    }

    #[test]
    fn handles_whitespace_and_unicode() {
        let v = parse(" {\n\t\"k\" : \"héllo✓\" } ").unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some("héllo✓"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(Vec::new()));
    }

    #[test]
    fn to_compact_round_trips() {
        let cases = [
            "null",
            "true",
            "{}",
            "[]",
            "{\"a\":[1,2.5,{\"b\":null}],\"c\":\"d\\ne\",\"n\":-150}",
        ];
        for text in cases {
            let v = parse(text).unwrap();
            let compact = v.to_compact();
            assert!(!compact.contains('\n'), "not single-line: {compact:?}");
            assert_eq!(parse(&compact).unwrap(), v, "round-trip of {text}");
        }
        // Integers print without a fractional part so u64-shaped counters
        // survive the f64 round-trip textually.
        assert_eq!(parse("{\"k\": 42}").unwrap().to_compact(), "{\"k\":42}");
    }
}
