//! [`LogHistogram`] — a fixed-footprint latency histogram in the HDR
//! style: base-2 logarithmic buckets subdivided into linear sub-buckets,
//! so every recorded `u64` lands in one of [`BUCKET_COUNT`] buckets with
//! a bounded relative error of `1/16` (6.25%).
//!
//! Properties the serving layer depends on:
//!
//! - **O(1) record** — one leading-zeros instruction and one array
//!   increment, no allocation after construction, no floating point.
//! - **Deterministic commutative merge** — bucket counts are plain sums,
//!   so any partition of the same value multiset across workers merges to
//!   bit-identical bucket counts regardless of thread count or order
//!   (the same invariant the shot-histogram merge relies on).
//! - **Quantile estimation** — [`LogHistogram::quantile`] walks the
//!   cumulative counts and reports the bucket's inclusive upper bound
//!   clamped to the observed `[min, max]`, which makes it exact for
//!   single-sample and extreme quantiles and monotone in `q` always.
//!
//! The value domain is unsigned integers (the stack records microseconds
//! and nanoseconds); `u64::MAX` saturates into the last bucket.

/// Number of low bits spent on linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;

/// Linear sub-buckets per base-2 bucket (`2^SUB_BITS`).
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total bucket count: values `0..16` get one bucket each, then every
/// power-of-two range `[2^m, 2^(m+1))` for `m` in `4..=63` is split into
/// 16 linear sub-buckets.
pub const BUCKET_COUNT: usize = SUB_COUNT as usize + (64 - SUB_BITS as usize) * SUB_COUNT as usize;

/// The quantiles the exporters report, as (label, q) pairs.
pub const REPORTED_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// A base-2 log-bucketed histogram with linear sub-buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKET_COUNT]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// The bucket index for a value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let group = (msb - SUB_BITS) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
        SUB_COUNT as usize + group * SUB_COUNT as usize + sub
    }
}

/// The smallest value that lands in bucket `i`.
#[inline]
fn bucket_lo(i: usize) -> u64 {
    if i < SUB_COUNT as usize {
        i as u64
    } else {
        let group = (i - SUB_COUNT as usize) / SUB_COUNT as usize;
        let sub = ((i - SUB_COUNT as usize) % SUB_COUNT as usize) as u64;
        (SUB_COUNT + sub) << group
    }
}

/// The width of bucket `i` (1 for the exact low buckets, `2^group`
/// above; the last bucket's nominal top saturates at `u64::MAX`).
#[inline]
fn bucket_width(i: usize) -> u64 {
    if i < SUB_COUNT as usize {
        1
    } else {
        1u64 << ((i - SUB_COUNT as usize) / SUB_COUNT as usize)
    }
}

impl LogHistogram {
    /// An empty histogram. Allocates its fixed bucket array once; every
    /// later operation is allocation-free.
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0u64; BUCKET_COUNT]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value. O(1), allocation-free, saturating on the
    /// running sum.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Records `n` occurrences of a value.
    #[inline]
    pub fn record_many(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Adds `other`'s buckets into this histogram. Commutative and
    /// associative: any merge order over any partition of the same
    /// recordings yields bit-identical bucket counts.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts (fixed length [`BUCKET_COUNT`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts[..]
    }

    /// The non-empty buckets as `(lo, hi_inclusive, count)` triples in
    /// ascending value order — the sparse form the exporters iterate.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(i, &c)| {
            if c == 0 {
                None
            } else {
                let lo = bucket_lo(i);
                let hi = lo.saturating_add(bucket_width(i) - 1);
                Some((lo, hi, c))
            }
        })
    }

    /// The estimated value at quantile `q` (clamped to `[0, 1]`): the
    /// inclusive upper bound of the bucket holding the rank-`ceil(q *
    /// count)` value, clamped to the observed `[min, max]`. Returns 0 for
    /// an empty histogram. Monotone non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in 1..=count; q = 0 maps to the first recorded value.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let hi = bucket_lo(i).saturating_add(bucket_width(i) - 1);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let mut h = LogHistogram::new();
        h.record(1234);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1234);
        assert_eq!(h.min(), 1234);
        assert_eq!(h.max(), 1234);
        for q in [0.0, 0.25, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 1234, "clamp to [min,max] makes q={q} exact");
        }
    }

    #[test]
    fn low_values_are_exact_buckets() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 16);
        for (i, (lo, hi, c)) in buckets.iter().enumerate() {
            assert_eq!((*lo, *hi, *c), (i as u64, i as u64, 1));
        }
    }

    #[test]
    fn bucket_boundaries_split_correctly() {
        // 15 is the last exact bucket; 16 starts the first sub-bucketed
        // group; 31/32 straddle a group boundary.
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_ne!(bucket_index(16), bucket_index(15));
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32, "width-2 bucket at [32, 34)");
        // Every value lies inside its own bucket's [lo, hi] window.
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            1023,
            1024,
            1025,
            u32::MAX as u64,
            1 << 62,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let lo = bucket_lo(i);
            let hi = lo.saturating_add(bucket_width(i) - 1);
            assert!(lo <= v && v <= hi, "{v} outside bucket {i} [{lo}, {hi}]");
        }
    }

    #[test]
    fn max_value_saturates_into_the_last_bucket() {
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        let (_, hi, c) = h.nonzero_buckets().last().unwrap();
        assert_eq!(c, 2);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded_by_one_sixteenth() {
        let mut h = LogHistogram::new();
        for v in [100u64, 1000, 10_000, 1_000_000, 123_456_789] {
            let mut single = LogHistogram::new();
            single.record(v);
            h.record(v);
            // Without the min/max clamp the bucket top is within 1/16.
            let i = bucket_index(v);
            let hi = bucket_lo(i) + bucket_width(i) - 1;
            assert!(
                hi >= v && hi - v <= v / 16 + 1,
                "bucket top too far from {v}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_within_range() {
        let mut h = LogHistogram::new();
        let mut z = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..5000 {
            z = z.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(z >> 40); // ~24-bit values
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= last, "quantile must be monotone in q");
            assert!(q >= h.min() && q <= h.max());
            last = q;
        }
    }

    #[test]
    fn merge_is_commutative_and_matches_combined_recording() {
        let values_a = [3u64, 17, 17, 900, 65_000];
        let values_b = [0u64, 5, 17, 1 << 40, u64::MAX];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut combined = LogHistogram::new();
        for &v in &values_a {
            a.record(v);
            combined.record(v);
        }
        for &v in &values_b {
            b.record(v);
            combined.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab, combined, "merge must equal recording everything");
        // Merging an empty histogram changes nothing.
        let mut with_empty = combined.clone();
        with_empty.merge(&LogHistogram::new());
        assert_eq!(with_empty, combined);
    }

    #[test]
    fn record_many_matches_repeated_record() {
        let mut many = LogHistogram::new();
        many.record_many(42, 7);
        many.record_many(42, 0);
        let mut repeated = LogHistogram::new();
        for _ in 0..7 {
            repeated.record(42);
        }
        assert_eq!(many, repeated);
    }
}
