//! Exporters: Chrome trace-event JSON, the JSON metrics report, and a
//! human-readable summary table — plus a schema validator for the Chrome
//! trace (used by the `qca-trace` bin and CI to fail on drift).
//!
//! # Chrome trace format
//!
//! The object form understood by Perfetto and `about:tracing`:
//!
//! ```json
//! {
//!   "traceEvents": [
//!     {"name": "compile", "cat": "openql", "ph": "X",
//!      "ts": 12, "dur": 340, "pid": 1, "tid": 1, "args": {"depth": 0}}
//!   ],
//!   "displayTimeUnit": "ms"
//! }
//! ```
//!
//! Every span becomes one `"X"` (complete) event; `ts`/`dur` are
//! microseconds, the unit the format specifies.
//!
//! # Metrics report
//!
//! ```json
//! {
//!   "version": 1,
//!   "counters": {"qxsim.shots.executed": 2000},
//!   "histograms": {"qxsim.kernel_dispatch": {"Cnot": 1000}},
//!   "values": {"...": {"count": 1, "sum": 2.0, "min": 2.0, "max": 2.0}},
//!   "hists": {"service.latency.e2e_us{priority=\"0\"}":
//!             {"count": 9, "sum": 1200, "min": 80, "max": 400,
//!              "p50": 130, "p90": 380, "p99": 400, "p999": 400}},
//!   "spans": [{"name": "...", "cat": "...", "start_us": 0, "dur_us": 3,
//!              "tid": 1, "depth": 0, "parent": null}]
//! }
//! ```
//!
//! `counters` and `histograms` are the deterministic part: for a fixed
//! seed they are bit-identical regardless of thread count
//! ([`counters_json`] exports exactly that subset). `hists` are
//! [`LogHistogram`](crate::LogHistogram) latency distributions — timing
//! data, so they are excluded from [`counters_json`] like spans.

use crate::json::{self, JsonValue};
use crate::Snapshot;
use std::collections::BTreeSet;
use std::fmt::Write as _;

// The Prometheus text-exposition exporter lives beside the JSON ones;
// re-exported here so `qca_telemetry::export::prometheus` works.
pub use crate::prometheus;

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as JSON (no NaN/Inf — those serialise as `null`,
/// which the format requires).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// The Chrome trace-event JSON for a snapshot (object form with a
/// `traceEvents` array of `"X"` complete events).
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"traceEvents\": [\n");
    for (i, s) in snap.spans.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"depth\": {}}}}}",
            escape(&s.name),
            escape(&s.cat),
            s.start_us,
            s.dur_us,
            s.tid,
            s.depth
        );
        out.push_str(if i + 1 < snap.spans.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
    out
}

fn write_counters_body(out: &mut String, snap: &Snapshot, indent: &str) {
    let _ = write!(out, "{indent}\"counters\": {{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n{indent}  \"{}\": {}", escape(k), v);
    }
    if !snap.counters.is_empty() {
        let _ = write!(out, "\n{indent}");
    }
    out.push_str("},\n");
    let _ = write!(out, "{indent}\"histograms\": {{");
    for (i, (fam, labels)) in snap.labeled.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n{indent}  \"{}\": {{", escape(fam));
        for (j, (label, v)) in labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n{indent}    \"{}\": {}", escape(label), v);
        }
        if !labels.is_empty() {
            let _ = write!(out, "\n{indent}  ");
        }
        out.push('}');
    }
    if !snap.labeled.is_empty() {
        let _ = write!(out, "\n{indent}");
    }
    out.push('}');
}

/// Only the deterministic subset of the metrics report: counters and
/// labelled histograms. For a fixed seed this is bit-identical across
/// thread counts.
pub fn counters_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n");
    write_counters_body(&mut out, snap, "  ");
    out.push_str("\n}\n");
    out
}

/// The full JSON metrics report (see module docs for the schema).
pub fn metrics_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    write_counters_body(&mut out, snap, "  ");
    out.push_str(",\n  \"values\": {");
    for (i, (k, v)) in snap.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
            escape(k),
            v.count,
            fmt_f64(v.sum),
            fmt_f64(v.min),
            fmt_f64(v.max)
        );
    }
    if !snap.values.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"hists\": {");
    let mut first_entry = true;
    for (fam, sets) in &snap.hists {
        for (set, h) in sets {
            if !first_entry {
                out.push(',');
            }
            first_entry = false;
            let key = if set.is_empty() {
                fam.clone()
            } else {
                format!("{fam}{{{set}}}")
            };
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}",
                escape(&key),
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            );
            for (suffix, q) in crate::hist::REPORTED_QUANTILES {
                let _ = write!(out, ", \"{}\": {}", suffix, h.quantile(q));
            }
            out.push('}');
        }
    }
    if !first_entry {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"spans\": [");
    for (i, s) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let parent = s
            .parent
            .map_or_else(|| "null".to_string(), |p| p.to_string());
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"cat\": \"{}\", \"start_us\": {}, \"dur_us\": {}, \"tid\": {}, \"depth\": {}, \"parent\": {}}}",
            escape(&s.name),
            escape(&s.cat),
            s.start_us,
            s.dur_us,
            s.tid,
            s.depth,
            parent
        );
    }
    if !snap.spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// The flamegraph collapsed-stack form of the span tree: one line per
/// distinct call stack, `frame;frame;...;frame weight`, where each frame
/// is `cat:name` and the weight is the stack's *self* time in microseconds
/// (own duration minus direct children), summed over all occurrences.
/// Lines are sorted, so the output is deterministic for a given snapshot
/// and feeds straight into `flamegraph.pl` / speedscope / inferno.
///
/// Frames are sanitised (`;`, whitespace and control characters become
/// `_`) because the format reserves `;` and the trailing space.
pub fn collapsed(snap: &Snapshot) -> String {
    let frame = |i: usize| -> String {
        let s = &snap.spans[i];
        format!("{}:{}", s.cat, s.name)
            .chars()
            .map(|c| {
                if c == ';' || c.is_whitespace() || (c as u32) < 0x20 {
                    '_'
                } else {
                    c
                }
            })
            .collect()
    };
    // Children's time is attributed to their own lines; a parent keeps
    // only what it spent outside its direct children.
    let mut child_time = vec![0u64; snap.spans.len()];
    for s in &snap.spans {
        if let Some(p) = s.parent {
            if p < child_time.len() {
                child_time[p] += s.dur_us;
            }
        }
    }
    let mut weights: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (i, s) in snap.spans.iter().enumerate() {
        let mut stack = vec![frame(i)];
        let mut cursor = s.parent;
        let mut hops = 0;
        while let Some(p) = cursor {
            if p >= snap.spans.len() || hops > snap.spans.len() {
                break;
            }
            stack.push(frame(p));
            cursor = snap.spans[p].parent;
            hops += 1;
        }
        stack.reverse();
        let self_time = s.dur_us.saturating_sub(child_time[i]);
        *weights.entry(stack.join(";")).or_insert(0) += self_time;
    }
    let mut out = String::new();
    for (stack, weight) in weights {
        let _ = writeln!(out, "{stack} {weight}");
    }
    out
}

/// A human-readable summary: the span tree (durations in microseconds),
/// then counters, histograms and value aggregates.
pub fn summary_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        out.push_str("spans (us):\n");
        for s in &snap.spans {
            let _ = writeln!(
                out,
                "  {:>9}  {}{} [{}]",
                s.dur_us,
                "  ".repeat(s.depth as usize),
                s.name,
                s.cat
            );
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        let width = snap.counters.keys().map(|k| k.len()).max().unwrap_or(0);
        for (k, v) in &snap.counters {
            let _ = writeln!(out, "  {k:<width$}  {v}");
        }
    }
    for (fam, labels) in &snap.labeled {
        let _ = writeln!(out, "{fam}:");
        let width = labels.keys().map(|k| k.len()).max().unwrap_or(0);
        for (label, v) in labels {
            let _ = writeln!(out, "  {label:<width$}  {v}");
        }
    }
    if !snap.values.is_empty() {
        out.push_str("values:\n");
        for (k, v) in &snap.values {
            let _ = writeln!(
                out,
                "  {k}  count={} sum={} min={} max={}",
                v.count, v.sum, v.min, v.max
            );
        }
    }
    if !snap.hists.is_empty() {
        out.push_str("latency histograms:\n");
        for (fam, sets) in &snap.hists {
            for (set, h) in sets {
                let label = if set.is_empty() {
                    fam.clone()
                } else {
                    format!("{fam}{{{set}}}")
                };
                let _ = writeln!(
                    out,
                    "  {label}  count={} p50={} p90={} p99={} p999={} max={}",
                    h.count(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.quantile(0.999),
                    h.max()
                );
            }
        }
    }
    out
}

/// What [`validate_chrome_trace`] learned about a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheck {
    /// Number of events in `traceEvents`.
    pub events: usize,
    /// Distinct `cat` values seen.
    pub categories: BTreeSet<String>,
    /// Distinct event names seen.
    pub names: BTreeSet<String>,
}

/// Validates Chrome trace-event JSON against the schema this crate emits:
/// a root object with a non-empty `traceEvents` array whose events carry
/// string `name`/`cat`/`ph` and numeric `ts`/`pid`/`tid`, with `"X"`
/// events also carrying a numeric `dur`.
///
/// # Errors
///
/// A description of the first schema violation found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let root = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let JsonValue::Object(obj) = &root else {
        return Err("root is not an object".to_string());
    };
    let Some(JsonValue::Array(events)) = obj.get("traceEvents") else {
        return Err("missing `traceEvents` array".to_string());
    };
    if events.is_empty() {
        return Err("`traceEvents` is empty".to_string());
    }
    let mut categories = BTreeSet::new();
    let mut names = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let JsonValue::Object(e) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let str_field = |key: &str| -> Result<String, String> {
            match e.get(key) {
                Some(JsonValue::String(s)) => Ok(s.clone()),
                _ => Err(format!("event {i}: missing string `{key}`")),
            }
        };
        let num_field = |key: &str| -> Result<f64, String> {
            match e.get(key) {
                Some(JsonValue::Number(n)) => Ok(*n),
                _ => Err(format!("event {i}: missing numeric `{key}`")),
            }
        };
        let name = str_field("name")?;
        let cat = str_field("cat")?;
        let ph = str_field("ph")?;
        num_field("ts")?;
        num_field("pid")?;
        num_field("tid")?;
        if ph == "X" {
            num_field("dur")?;
        }
        categories.insert(cat);
        names.insert(name);
    }
    Ok(TraceCheck {
        events: events.len(),
        categories,
        names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample() -> Telemetry {
        let tel = Telemetry::enabled();
        {
            let _a = tel.span("stack", "execute");
            let _b = tel.span("openql", "compile \"x\"\n");
        }
        tel.incr("shots", 100);
        tel.incr_labeled("dispatch", "Cnot", 4);
        tel.record_value("latency_ns", 120.0);
        tel
    }

    #[test]
    fn chrome_trace_validates_and_round_trips() {
        let tel = sample();
        let text = tel.export_chrome_trace();
        let check = validate_chrome_trace(&text).unwrap();
        assert_eq!(check.events, 2);
        assert!(check.categories.contains("stack"));
        assert!(check.categories.contains("openql"));
        // Round-trip: the parsed value re-parses after a parse→find cycle.
        let v = json::parse(&text).unwrap();
        let JsonValue::Object(o) = v else { panic!() };
        assert!(o.contains_key("displayTimeUnit"));
    }

    #[test]
    fn metrics_json_round_trips() {
        let tel = sample();
        let text = tel.export_json();
        let v = json::parse(&text).unwrap();
        let JsonValue::Object(o) = &v else { panic!() };
        assert!(matches!(o.get("version"), Some(JsonValue::Number(n)) if *n == 1.0));
        let Some(JsonValue::Object(counters)) = o.get("counters") else {
            panic!("no counters object")
        };
        assert!(matches!(counters.get("shots"), Some(JsonValue::Number(n)) if *n == 100.0));
        let Some(JsonValue::Object(h)) = o.get("histograms") else {
            panic!("no histograms object")
        };
        let Some(JsonValue::Object(dispatch)) = h.get("dispatch") else {
            panic!("no dispatch family")
        };
        assert!(matches!(dispatch.get("Cnot"), Some(JsonValue::Number(n)) if *n == 4.0));
        let Some(JsonValue::Array(spans)) = o.get("spans") else {
            panic!("no spans array")
        };
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn counters_json_is_subset_and_parses() {
        let tel = sample();
        tel.record_hist("service.latency.e2e_us", 120);
        let text = tel.counters_json();
        let v = json::parse(&text).unwrap();
        let JsonValue::Object(o) = &v else { panic!() };
        assert!(o.contains_key("counters"));
        assert!(o.contains_key("histograms"));
        assert!(!o.contains_key("spans"), "no timing data allowed");
        assert!(!o.contains_key("values"));
        assert!(!o.contains_key("hists"), "latency hists are timing data");
        assert!(!text.contains("latency"), "no hist leakage into {text}");
    }

    #[test]
    fn metrics_json_reports_hist_quantiles() {
        let tel = sample();
        for v in [100u64, 200, 400, 800, 1600] {
            tel.record_hist_labeled(
                "service.latency.e2e_us",
                &[("priority", "0"), ("outcome", "ok")],
                v,
            );
        }
        let text = tel.export_json();
        let v = json::parse(&text).unwrap();
        let hist = v
            .get("hists")
            .and_then(|h| h.get("service.latency.e2e_us{priority=\"0\",outcome=\"ok\"}"))
            .cloned()
            .unwrap();
        assert_eq!(hist.get("count").and_then(JsonValue::as_f64), Some(5.0));
        let p50 = hist.get("p50").and_then(JsonValue::as_f64).unwrap();
        let p999 = hist.get("p999").and_then(JsonValue::as_f64).unwrap();
        assert!((400.0..=430.0).contains(&p50), "p50 = {p50}");
        assert_eq!(p999, 1600.0, "max-clamped upper quantile");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_snapshot_exports_parse() {
        let tel = Telemetry::enabled();
        assert!(json::parse(&tel.export_json()).is_ok());
        assert!(json::parse(&tel.counters_json()).is_ok());
        // An empty trace is *invalid* per the validator (no events).
        assert!(validate_chrome_trace(&tel.export_chrome_trace()).is_err());
    }

    #[test]
    fn validator_rejects_drift() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": []}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{\"name\": \"x\"}]}").is_err());
        assert!(
            validate_chrome_trace(
                "{\"traceEvents\": [{\"name\": \"x\", \"cat\": \"c\", \"ph\": \"X\", \"ts\": 0, \"pid\": 1, \"tid\": 1}]}"
            )
            .is_err(),
            "X event without dur must fail"
        );
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn collapsed_round_trips_a_nested_span_tree() {
        use crate::{Snapshot, SpanRecord};
        let span =
            |name: &str, cat: &str, dur: u64, parent: Option<usize>, depth: u32| SpanRecord {
                name: name.to_string(),
                cat: cat.to_string(),
                start_us: 0,
                dur_us: dur,
                tid: 1,
                parent,
                depth,
                closed: true,
            };
        // serve (100us) -> compile (30us) -> passes (10us); serve -> run (50us)
        let snap = Snapshot {
            spans: vec![
                span("serve", "service", 100, None, 0),
                span("compile", "openql", 30, Some(0), 1),
                span("passes", "openql", 10, Some(1), 2),
                span("run", "qxsim", 50, Some(0), 1),
            ],
            counters: Default::default(),
            labeled: Default::default(),
            values: Default::default(),
            hists: Default::default(),
        };
        let text = collapsed(&snap);
        // Parse the collapsed lines back into (stack, weight) pairs.
        let mut parsed = std::collections::BTreeMap::new();
        for line in text.lines() {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            let frames: Vec<&str> = stack.split(';').collect();
            parsed.insert(frames.join(";"), weight.parse::<u64>().unwrap());
        }
        // Self times: serve = 100 - (30 + 50); compile = 30 - 10.
        assert_eq!(parsed["service:serve"], 20);
        assert_eq!(parsed["service:serve;openql:compile"], 20);
        assert_eq!(parsed["service:serve;openql:compile;openql:passes"], 10);
        assert_eq!(parsed["service:serve;qxsim:run"], 50);
        // The tree's total weight equals the root's duration: collapsed
        // output partitions exactly the time the spans measured.
        assert_eq!(parsed.values().sum::<u64>(), 100);
    }

    #[test]
    fn collapsed_sanitises_reserved_characters() {
        let tel = Telemetry::enabled();
        {
            let _a = tel.span("stack", "execute");
            let _b = tel.span("openql", "compile \"x;y\"\n");
        }
        let text = collapsed(&tel.snapshot());
        for line in text.lines() {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert!(weight.parse::<u64>().is_ok(), "bad weight in {line:?}");
            assert!(!stack.contains(' '), "unsanitised space in {line:?}");
        }
        assert!(text.contains("stack:execute;openql:compile_\"x_y\"_"));
    }

    #[test]
    fn summary_table_mentions_everything() {
        let tel = sample();
        let table = tel.summary_table();
        assert!(table.contains("spans (us):"));
        assert!(table.contains("counters:"));
        assert!(table.contains("dispatch:"));
        assert!(table.contains("Cnot"));
        assert!(table.contains("latency_ns"));
    }
}
