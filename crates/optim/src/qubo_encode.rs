//! TSP → QUBO encoding (§3.3 of the paper).
//!
//! One binary variable per `(city, time)` pair — `N^2` qubits for `N`
//! cities ("we need 16 qubits to encode the example TSP into a QUBO").
//! The interactions follow the paper's four categories:
//!
//! 1. every node must be assigned (reward for using a variable);
//! 2. the same node in two different time slots is penalised;
//! 3. the same time slot for two different nodes is penalised;
//! 4. the travel cost of consecutive time slots is the edge weight.

use crate::tsp::TspInstance;
use annealer::Qubo;

/// A TSP instance encoded as a QUBO.
#[derive(Debug, Clone)]
pub struct TspQubo {
    /// The QUBO model over `n^2` variables.
    pub qubo: Qubo,
    /// Number of cities.
    pub cities: usize,
    /// The constraint penalty weight used.
    pub penalty: f64,
}

impl TspQubo {
    /// Encodes `tsp` with the given constraint penalty (must exceed the
    /// longest possible tour to make constraint violations never pay).
    pub fn encode(tsp: &TspInstance, penalty: f64) -> Self {
        let n = tsp.len();
        let var = |city: usize, time: usize| city * n + time;
        let mut q = Qubo::new(n * n);

        for city in 0..n {
            // (1) + (2): (1 - sum_t x_{c,t})^2 expands to
            // -sum_t x + 2 sum_{t<t'} x x' (+ constant), scaled by penalty.
            for t1 in 0..n {
                q.add(var(city, t1), var(city, t1), -penalty);
                for t2 in t1 + 1..n {
                    q.add(var(city, t1), var(city, t2), 2.0 * penalty);
                }
            }
        }
        for time in 0..n {
            // (3): one node per time slot.
            for c1 in 0..n {
                q.add(var(c1, time), var(c1, time), -penalty);
                for c2 in c1 + 1..n {
                    q.add(var(c1, time), var(c2, time), 2.0 * penalty);
                }
            }
        }
        // (4): tour cost between consecutive time slots (cyclic).
        for t in 0..n {
            let t_next = (t + 1) % n;
            for c1 in 0..n {
                for c2 in 0..n {
                    if c1 == c2 {
                        continue;
                    }
                    q.add(var(c1, t), var(c2, t_next), tsp.distance(c1, c2));
                }
            }
        }
        TspQubo {
            qubo: q,
            cities: n,
            penalty,
        }
    }

    /// A penalty that provably dominates any tour-cost saving: the total
    /// weight of the `n` largest edges plus one.
    pub fn default_penalty(tsp: &TspInstance) -> f64 {
        let n = tsp.len();
        let mut max_d = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                max_d = max_d.max(tsp.distance(i, j));
            }
        }
        max_d * n as f64 + 1.0
    }

    /// Number of binary variables / qubits (`n^2`).
    pub fn variables(&self) -> usize {
        self.cities * self.cities
    }

    /// The constant offset of the encoding: both constraint families
    /// contribute `penalty` per row, i.e. `2 n * penalty` total, so
    /// `tour_cost = qubo_energy + 2 n penalty` for feasible assignments.
    pub fn constant_offset(&self) -> f64 {
        2.0 * self.cities as f64 * self.penalty
    }

    /// Decodes a bit assignment into a tour, or `None` if infeasible.
    pub fn decode(&self, bits: &[bool]) -> Option<Vec<usize>> {
        let n = self.cities;
        if bits.len() != n * n {
            return None;
        }
        let mut tour = vec![usize::MAX; n];
        for time in 0..n {
            let mut assigned = None;
            for city in 0..n {
                if bits[city * n + time] {
                    if assigned.is_some() {
                        return None; // two cities in one slot
                    }
                    assigned = Some(city);
                }
            }
            tour[time] = assigned?;
        }
        // Each city exactly once.
        let mut seen = vec![false; n];
        for &c in &tour {
            if seen[c] {
                return None;
            }
            seen[c] = true;
        }
        Some(tour)
    }

    /// Encodes a tour into the corresponding feasible bit assignment.
    pub fn encode_tour(&self, tour: &[usize]) -> Vec<bool> {
        let n = self.cities;
        let mut bits = vec![false; n * n];
        for (time, &city) in tour.iter().enumerate() {
            bits[city * n + time] = true;
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_instance() -> (TspInstance, TspQubo) {
        let tsp = TspInstance::nl_four_cities();
        let penalty = TspQubo::default_penalty(&tsp);
        let enc = TspQubo::encode(&tsp, penalty);
        (tsp, enc)
    }

    #[test]
    fn four_cities_need_sixteen_qubits() {
        let (_, enc) = paper_instance();
        assert_eq!(enc.variables(), 16, "paper: 16 qubits for 4 cities");
    }

    #[test]
    fn feasible_energy_equals_tour_cost_plus_offset() {
        let (tsp, enc) = paper_instance();
        for tour in [[0usize, 1, 2, 3], [2, 0, 3, 1], [3, 2, 1, 0]] {
            let bits = enc.encode_tour(&tour);
            let e = enc.qubo.energy(&bits) + enc.constant_offset();
            let cost = tsp.tour_cost(&tour);
            assert!(
                (e - cost).abs() < 1e-9,
                "tour {tour:?}: energy {e} vs cost {cost}"
            );
        }
    }

    #[test]
    fn qubo_minimum_is_optimal_tour() {
        let (tsp, enc) = paper_instance();
        let (bits, energy) = enc.qubo.brute_force_minimum();
        let tour = enc.decode(&bits).expect("minimum must be feasible");
        let cost = tsp.tour_cost(&tour);
        assert!((cost - 1.42).abs() < 1e-9, "decoded cost {cost}");
        assert!((energy + enc.constant_offset() - 1.42).abs() < 1e-9);
    }

    #[test]
    fn infeasible_assignments_cost_more_than_any_tour() {
        let (tsp, enc) = paper_instance();
        let worst_tour = {
            let mut worst = 0.0f64;
            let (_, best) = tsp.brute_force();
            let _ = best;
            for tour in [[0usize, 1, 2, 3], [0, 2, 1, 3], [0, 1, 3, 2]] {
                worst = worst.max(tsp.tour_cost(&tour));
            }
            worst
        };
        // Empty assignment violates everything.
        let empty = vec![false; 16];
        let e_empty = enc.qubo.energy(&empty) + enc.constant_offset();
        assert!(
            e_empty > worst_tour,
            "empty {e_empty} vs worst {worst_tour}"
        );
        // Duplicate city.
        let mut dup = enc.encode_tour(&[0, 1, 2, 3]);
        dup[3 * 4 + 3] = false; // drop city 3 at t3
        dup[4 + 3] = true; // city 1 again at t3
        assert!(enc.decode(&dup).is_none());
        let e_dup = enc.qubo.energy(&dup) + enc.constant_offset();
        assert!(e_dup > worst_tour);
    }

    #[test]
    fn decode_rejects_malformed() {
        let (_, enc) = paper_instance();
        assert!(enc.decode(&[false; 16]).is_none());
        assert!(enc.decode(&[true; 16]).is_none());
        assert!(enc.decode(&[false; 9]).is_none());
        let good = enc.encode_tour(&[1, 3, 0, 2]);
        assert_eq!(enc.decode(&good), Some(vec![1, 3, 0, 2]));
    }

    #[test]
    fn qubit_count_grows_quadratically() {
        // The paper: "the amount of qubits needed to solve the problem
        // grows as N^2".
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for n in [3usize, 5, 8] {
            let tsp = TspInstance::random(n, &mut rng);
            let enc = TspQubo::encode(&tsp, 10.0);
            assert_eq!(enc.variables(), n * n);
        }
    }
}
