//! # optim — the quantum optimisation accelerator
//!
//! The third full-stack example of Bertels et al. (DATE 2020, §3.3):
//! near-term quantum acceleration of optimisation problems, with the
//! travelling salesman as the use case (Fig 9: four Dutch cities, 16 QUBO
//! qubits, optimal tour cost 1.42).
//!
//! The problem is modelled as a QUBO ([`TspQubo`]), isomorphic to the
//! Ising model, and solved on **both** quantum computation models the
//! paper considers:
//!
//! - the annealing model, through any [`annealer::Sampler`]
//!   (simulated annealing, the Chimera-embedded D-Wave-style flow, or the
//!   fully-connected digital annealer);
//! - the gate model, through [`Qaoa`] driven by the hybrid
//!   quantum-classical loop ([`HybridOptimizer`], Fig 8).
//!
//! Classical comparators (brute force, branch and bound, 2-opt,
//! Monte-Carlo) live in [`tsp`].
//!
//! # Example
//!
//! ```
//! use optim::{TspInstance, solve_tsp_with_sampler};
//! use annealer::SimulatedAnnealer;
//!
//! let tsp = TspInstance::nl_four_cities();
//! let sol = solve_tsp_with_sampler(&tsp, &SimulatedAnnealer::new(), 30).unwrap();
//! assert!((sol.cost - 1.42).abs() < 1e-9); // the paper's optimum
//! ```

pub mod hybrid;
pub mod maxcut;
pub mod qaoa;
pub mod qubo_encode;
pub mod solve;
pub mod tsp;
pub mod vqe;

pub use hybrid::{HybridOptimizer, HybridRun};
pub use maxcut::MaxCut;
pub use qaoa::{Qaoa, QaoaEvaluation};
pub use qubo_encode::TspQubo;
pub use solve::{solve_tsp_qaoa, solve_tsp_with_sampler, TspSolution};
pub use tsp::TspInstance;
pub use vqe::{Vqe, VqeRun};
