//! The Quantum Approximate Optimisation Algorithm on the gate-based
//! simulator.
//!
//! §3.3 of the paper: "QUBO models can also be solved on gate-based
//! quantum systems using QAOA ... a variational algorithm where the
//! classical optimiser specifies a low-depth quantum circuit to find the
//! lowest energy configuration of a problem Hamiltonian."
//!
//! The phase-separation layer `exp(-i gamma H_C)` is applied exactly (the
//! cost Hamiltonian is diagonal); the mixer is `Rx(2 beta)` on every
//! qubit. Parameters are trained by the hybrid loop in
//! [`crate::hybrid`].

use annealer::{spins_to_bits, Ising};
use cqasm::GateKind;
use qxsim::StateVector;
use rand::Rng;

/// A QAOA circuit executor for a fixed diagonal cost model.
#[derive(Debug, Clone)]
pub struct Qaoa {
    ising: Ising,
    layers: usize,
}

/// The outcome of evaluating QAOA at a parameter point.
#[derive(Debug, Clone)]
pub struct QaoaEvaluation {
    /// Expected cost `<H_C>` over the output distribution.
    pub expected_energy: f64,
    /// The prepared state (for sampling).
    pub state: StateVector,
}

impl Qaoa {
    /// Creates a `layers`-deep QAOA over the given Ising cost model.
    ///
    /// # Panics
    ///
    /// Panics if the model exceeds 22 spins (simulation limit) or has no
    /// spins.
    pub fn new(ising: Ising, layers: usize) -> Self {
        assert!(!ising.is_empty(), "empty cost model");
        assert!(ising.len() <= 22, "too many spins to simulate");
        Qaoa { ising, layers }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.ising.len()
    }

    /// Circuit depth (QAOA `p`).
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// The cost model.
    pub fn ising(&self) -> &Ising {
        &self.ising
    }

    /// The Ising energy of a computational basis state (bit `i` set means
    /// spin `i` is down / `-1`).
    pub fn basis_energy(&self, basis: u64) -> f64 {
        let n = self.ising.len();
        let spins: Vec<i8> = (0..n)
            .map(|i| if (basis >> i) & 1 == 1 { -1 } else { 1 })
            .collect();
        self.ising.energy(&spins)
    }

    /// Prepares the QAOA state for parameters
    /// `(gamma_1, beta_1, ..., gamma_p, beta_p)` and returns the expected
    /// energy and the state.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != 2 * layers`.
    pub fn evaluate(&self, params: &[f64]) -> QaoaEvaluation {
        assert_eq!(
            params.len(),
            2 * self.layers,
            "need (gamma, beta) per layer"
        );
        let n = self.ising.len();
        let mut state = StateVector::zero_state(n);
        for q in 0..n {
            state.apply_gate(&GateKind::H, &[q]);
        }
        for layer in 0..self.layers {
            let gamma = params[2 * layer];
            let beta = params[2 * layer + 1];
            // Phase separation: exp(-i gamma H_C), exact diagonal apply.
            state.apply_diagonal_phase(|b| gamma * self.basis_energy(b));
            // Mixer: Rx(2 beta) on each qubit.
            for q in 0..n {
                state.apply_gate(&GateKind::Rx(2.0 * beta), &[q]);
            }
        }
        let expected_energy = state.expectation_diagonal(|b| self.basis_energy(b));
        QaoaEvaluation {
            expected_energy,
            state,
        }
    }

    /// Samples `shots` bitstrings from the state at `params`, returning
    /// `(spins, energy)` pairs.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        params: &[f64],
        shots: u64,
        rng: &mut R,
    ) -> Vec<(Vec<i8>, f64)> {
        let eval = self.evaluate(params);
        let n = self.ising.len();
        (0..shots)
            .map(|_| {
                let basis = eval.state.sample_all(rng);
                let spins: Vec<i8> = (0..n)
                    .map(|i| if (basis >> i) & 1 == 1 { -1 } else { 1 })
                    .collect();
                let e = self.ising.energy(&spins);
                (spins, e)
            })
            .collect()
    }

    /// The best sampled solution at `params` as `(bits, energy)`.
    pub fn best_sample<R: Rng + ?Sized>(
        &self,
        params: &[f64],
        shots: u64,
        rng: &mut R,
    ) -> (Vec<bool>, f64) {
        let samples = self.sample(params, shots, rng);
        match samples.into_iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
            Some(best) => (spins_to_bits(&best.0), best.1),
            // Zero shots: degrade to the all-zero assignment.
            None => (vec![false; self.qubit_count()], f64::INFINITY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_spin_ferromagnet() -> Ising {
        let mut m = Ising::new(2);
        m.add_coupling(0, 1, -1.0);
        m
    }

    #[test]
    fn zero_parameters_give_uniform_expectation() {
        let q = Qaoa::new(two_spin_ferromagnet(), 1);
        let eval = q.evaluate(&[0.0, 0.0]);
        // Uniform distribution over 4 states: energies -1,-1,1,1 -> mean 0.
        assert!(eval.expected_energy.abs() < 1e-10);
    }

    #[test]
    fn basis_energy_convention() {
        let q = Qaoa::new(two_spin_ferromagnet(), 1);
        // |00> = both spins +1 -> E = -1.
        assert!((q.basis_energy(0b00) + 1.0).abs() < 1e-12);
        // |01> = spin0 down -> E = +1.
        assert!((q.basis_energy(0b01) - 1.0).abs() < 1e-12);
        assert!((q.basis_energy(0b11) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tuned_layer_beats_random_guessing() {
        let q = Qaoa::new(two_spin_ferromagnet(), 1);
        // Scan a coarse grid; the best point must push <E> well below 0.
        let mut best = f64::INFINITY;
        for gi in 0..12 {
            for bi in 0..12 {
                let gamma = gi as f64 * 0.26;
                let beta = bi as f64 * 0.26;
                best = best.min(q.evaluate(&[gamma, beta]).expected_energy);
            }
        }
        assert!(best < -0.7, "best <E> {best}");
    }

    #[test]
    fn more_layers_do_not_hurt_optimum() {
        let q1 = Qaoa::new(two_spin_ferromagnet(), 1);
        let q2 = Qaoa::new(two_spin_ferromagnet(), 2);
        let grid = |q: &Qaoa, layers: usize| {
            let mut best = f64::INFINITY;
            let steps = if layers == 1 { 12 } else { 6 };
            let mut params = vec![0.0; 2 * layers];
            // Coarse exhaustive grid (small dimensions only).
            fn rec(q: &Qaoa, params: &mut Vec<f64>, idx: usize, steps: usize, best: &mut f64) {
                if idx == params.len() {
                    *best = best.min(q.evaluate(params).expected_energy);
                    return;
                }
                for s in 0..steps {
                    params[idx] = s as f64 * (std::f64::consts::PI / steps as f64);
                    rec(q, params, idx + 1, steps, best);
                }
            }
            rec(q, &mut params, 0, steps, &mut best);
            best
        };
        let b1 = grid(&q1, 1);
        let b2 = grid(&q2, 2);
        assert!(b2 <= b1 + 0.05, "p=2 ({b2}) worse than p=1 ({b1})");
    }

    #[test]
    fn sampling_matches_expectation() {
        let q = Qaoa::new(two_spin_ferromagnet(), 1);
        let params = [0.6, 0.4];
        let exact = q.evaluate(&params).expected_energy;
        let mut rng = StdRng::seed_from_u64(31);
        let samples = q.sample(&params, 4000, &mut rng);
        let mean: f64 = samples.iter().map(|(_, e)| e).sum::<f64>() / 4000.0;
        assert!(
            (mean - exact).abs() < 0.08,
            "sampled {mean} vs exact {exact}"
        );
    }

    #[test]
    fn best_sample_finds_ground_state_of_chain() {
        let mut m = Ising::new(5);
        for i in 0..4 {
            m.add_coupling(i, i + 1, -1.0);
        }
        let q = Qaoa::new(m, 1);
        let mut rng = StdRng::seed_from_u64(32);
        // Enough shots that even a residually-uniform distribution hits
        // one of the two ground states (|00000>, |11111>).
        let (_, e) = q.best_sample(&[0.5, 0.4], 3_000, &mut rng);
        assert!((e + 4.0).abs() < 1e-9, "best energy {e}");
    }

    #[test]
    #[should_panic(expected = "need (gamma, beta)")]
    fn wrong_parameter_count_rejected() {
        let q = Qaoa::new(two_spin_ferromagnet(), 2);
        let _ = q.evaluate(&[0.1, 0.2]);
    }
}
