//! The Variational Quantum Eigensolver (VQE).
//!
//! The paper lists "physical system simulation" (chemistry, materials)
//! among the candidate killer applications (§2.3) and describes the
//! hybrid pattern driving near-term algorithms (§3.2/§3.3): "a shallow
//! parameterised quantum circuit is iterated multiple times while the
//! parameters are optimised by a classical optimiser in the Host-CPU".
//! QAOA is that pattern for diagonal Hamiltonians; VQE is the general
//! form for arbitrary Pauli-sum Hamiltonians — implemented here with a
//! hardware-efficient `Ry + CNOT-chain` ansatz.

use cqasm::GateKind;
use qxsim::{PauliSum, StateVector};

/// A hardware-efficient VQE ansatz: `layers` rounds of per-qubit `Ry`
/// rotations followed by a CNOT entangling chain, plus a final rotation
/// round.
#[derive(Debug, Clone)]
pub struct Vqe {
    hamiltonian: PauliSum,
    qubits: usize,
    layers: usize,
}

/// A completed VQE run.
#[derive(Debug, Clone)]
pub struct VqeRun {
    /// Optimal parameters found.
    pub parameters: Vec<f64>,
    /// The variational energy at the optimum.
    pub energy: f64,
    /// Energy after each optimiser round (best-so-far).
    pub history: Vec<f64>,
    /// Quantum circuit evaluations consumed.
    pub evaluations: u64,
}

impl Vqe {
    /// Creates a VQE problem.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is 0 or greater than 20.
    pub fn new(hamiltonian: PauliSum, qubits: usize, layers: usize) -> Self {
        assert!((1..=20).contains(&qubits), "unsupported register size");
        Vqe {
            hamiltonian,
            qubits,
            layers,
        }
    }

    /// Number of variational parameters: one `Ry` angle per qubit per
    /// rotation round (`layers + 1` rounds).
    pub fn parameter_count(&self) -> usize {
        self.qubits * (self.layers + 1)
    }

    /// Prepares the ansatz state for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.parameter_count()`.
    pub fn prepare(&self, params: &[f64]) -> StateVector {
        assert_eq!(params.len(), self.parameter_count(), "parameter count");
        let mut state = StateVector::zero_state(self.qubits);
        let mut idx = 0;
        for layer in 0..=self.layers {
            for q in 0..self.qubits {
                state.apply_gate(&GateKind::Ry(params[idx]), &[q]);
                idx += 1;
            }
            if layer < self.layers {
                for q in 0..self.qubits - 1 {
                    state.apply_gate(&GateKind::Cnot, &[q, q + 1]);
                }
            }
        }
        state
    }

    /// The variational energy at the given parameters.
    pub fn energy(&self, params: &[f64]) -> f64 {
        self.hamiltonian.expectation(&self.prepare(params))
    }

    /// Runs coordinate descent from a fixed start, the classical half of
    /// the hybrid loop.
    pub fn minimize(&self, max_rounds: usize) -> VqeRun {
        let dim = self.parameter_count();
        let mut params = vec![0.1; dim];
        let mut evaluations = 0u64;
        let mut best = {
            evaluations += 1;
            self.energy(&params)
        };
        let mut history = Vec::new();
        let mut step = 0.5f64;
        for _ in 0..max_rounds {
            let mut improved = false;
            for i in 0..dim {
                for dir in [1.0, -1.0] {
                    let mut trial = params.clone();
                    trial[i] += dir * step;
                    evaluations += 1;
                    let e = self.energy(&trial);
                    if e < best - 1e-12 {
                        best = e;
                        params = trial;
                        improved = true;
                        break;
                    }
                }
            }
            history.push(best);
            if !improved {
                step *= 0.5;
                if step < 1e-4 {
                    break;
                }
            }
        }
        VqeRun {
            parameters: params,
            energy: best,
            history,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxsim::{Pauli, PauliString};

    /// A minimal-basis H2-like two-qubit Hamiltonian (O'Malley-style
    /// coefficients near the equilibrium bond length).
    fn h2_hamiltonian() -> PauliSum {
        let mut h = PauliSum::new();
        h.add(-0.4804, PauliString::identity())
            .add(0.3435, PauliString::z(0))
            .add(-0.4347, PauliString::z(1))
            .add(0.5716, PauliString::new(vec![(0, Pauli::Z), (1, Pauli::Z)]))
            .add(0.0910, PauliString::new(vec![(0, Pauli::X), (1, Pauli::X)]))
            .add(0.0910, PauliString::new(vec![(0, Pauli::Y), (1, Pauli::Y)]));
        h
    }

    /// Exact ground energy of the two-qubit Hamiltonian, from the block
    /// structure: ZZ-diagonal terms plus the (XX+YY) coupling acting only
    /// inside the {|01>, |10>} sector.
    fn exact_ground(h: &PauliSum) -> f64 {
        // Diagonal entries <b|H|b> for b in 00,01,10,11 — evaluate via
        // basis-state expectations.
        let diag: Vec<f64> = (0..4u64)
            .map(|b| h.expectation(&StateVector::basis_state(2, b)))
            .collect();
        // Off-diagonal <01|H|10> = (xx + yy coefficients) -> from terms.
        let mut c = 0.0;
        for (w, p) in h.terms() {
            let ops = p.ops();
            if ops.len() == 2 {
                let both_x = ops.iter().all(|(_, o)| *o == Pauli::X);
                let both_y = ops.iter().all(|(_, o)| *o == Pauli::Y);
                if both_x {
                    c += w;
                }
                if both_y {
                    c += w; // <01|YY|10> = +1
                }
            }
        }
        let (a, b) = (diag[1], diag[2]);
        let sector_min = 0.5 * (a + b) - (0.25 * (a - b) * (a - b) + c * c).sqrt();
        sector_min.min(diag[0]).min(diag[3])
    }

    #[test]
    fn vqe_reaches_the_exact_ground_energy_of_h2() {
        let h = h2_hamiltonian();
        let exact = exact_ground(&h);
        let vqe = Vqe::new(h, 2, 1);
        let run = vqe.minimize(200);
        assert!(
            (run.energy - exact).abs() < 1e-3,
            "VQE {} vs exact {exact}",
            run.energy
        );
        assert!(run.evaluations > 10);
    }

    #[test]
    fn history_is_monotone() {
        let vqe = Vqe::new(h2_hamiltonian(), 2, 1);
        let run = vqe.minimize(50);
        for w in run.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn more_layers_never_hurt() {
        let h = h2_hamiltonian();
        let e1 = Vqe::new(h.clone(), 2, 1).minimize(150).energy;
        let e2 = Vqe::new(h, 2, 2).minimize(150).energy;
        assert!(e2 <= e1 + 1e-3, "2 layers {e2} vs 1 layer {e1}");
    }

    #[test]
    fn single_qubit_field_problem() {
        // H = Z: ground energy -1 at |1>.
        let mut h = PauliSum::new();
        h.add(1.0, PauliString::z(0));
        let run = Vqe::new(h, 1, 0).minimize(100);
        assert!((run.energy + 1.0).abs() < 1e-6, "energy {}", run.energy);
    }

    #[test]
    fn parameter_counting() {
        let vqe = Vqe::new(h2_hamiltonian(), 2, 3);
        assert_eq!(vqe.parameter_count(), 8);
    }

    #[test]
    #[should_panic(expected = "parameter count")]
    fn wrong_parameter_length_rejected() {
        let vqe = Vqe::new(h2_hamiltonian(), 2, 1);
        let _ = vqe.prepare(&[0.0; 3]);
    }
}
