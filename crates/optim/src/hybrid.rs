//! The hybrid quantum-classical execution loop (Fig 8 of the paper).
//!
//! "Since near-term quantum processors cannot run a long computation, the
//! entire process is generally split into small chunks of quantum
//! circuits/anneals that can be carried out in burst, measured, and
//! restarted based on the obtained results. The Classical Logic keeps
//! track of this progress and suggests the quantum logic the parameters
//! for the next trial run."
//!
//! The classical logic here is a derivative-free coordinate descent; the
//! quantum logic is a [`crate::Qaoa`] evaluation burst.

use crate::qaoa::Qaoa;

/// Classical-side optimiser configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridOptimizer {
    /// Maximum optimisation rounds (full coordinate sweeps).
    pub max_rounds: usize,
    /// Initial coordinate step size.
    pub initial_step: f64,
    /// Step shrink factor applied when a sweep yields no improvement.
    pub shrink: f64,
    /// Convergence threshold on the step size.
    pub min_step: f64,
}

impl Default for HybridOptimizer {
    fn default() -> Self {
        HybridOptimizer {
            max_rounds: 60,
            initial_step: 0.4,
            shrink: 0.5,
            min_step: 1e-3,
        }
    }
}

/// The record of one hybrid optimisation run.
#[derive(Debug, Clone)]
pub struct HybridRun {
    /// Best parameters found (`gamma, beta` per layer).
    pub best_params: Vec<f64>,
    /// Best expected energy.
    pub best_energy: f64,
    /// Best-so-far energy after each round (the convergence curve).
    pub history: Vec<f64>,
    /// Number of quantum bursts (circuit preparations) consumed.
    pub quantum_bursts: u64,
}

impl HybridOptimizer {
    /// A default-configured optimiser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the hybrid loop on a QAOA instance, starting from mid-range
    /// parameters.
    pub fn run(&self, qaoa: &Qaoa) -> HybridRun {
        let dim = 2 * qaoa.layers();
        let mut params = vec![0.4; dim];
        let mut bursts = 0u64;
        let mut best = {
            bursts += 1;
            qaoa.evaluate(&params).expected_energy
        };
        let mut history = Vec::with_capacity(self.max_rounds);
        let mut step = self.initial_step;
        for _round in 0..self.max_rounds {
            let mut improved = false;
            for i in 0..dim {
                for dir in [1.0, -1.0] {
                    let mut trial = params.clone();
                    trial[i] += dir * step;
                    bursts += 1;
                    let e = qaoa.evaluate(&trial).expected_energy;
                    if e < best - 1e-12 {
                        best = e;
                        params = trial;
                        improved = true;
                        break;
                    }
                }
            }
            history.push(best);
            if !improved {
                step *= self.shrink;
                if step < self.min_step {
                    break;
                }
            }
        }
        HybridRun {
            best_params: params,
            best_energy: best,
            history,
            quantum_bursts: bursts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annealer::Ising;

    fn chain(n: usize) -> Ising {
        let mut m = Ising::new(n);
        for i in 0..n - 1 {
            m.add_coupling(i, i + 1, -1.0);
        }
        m
    }

    #[test]
    fn converges_on_small_ferromagnet() {
        let qaoa = Qaoa::new(chain(3), 1);
        let run = HybridOptimizer::new().run(&qaoa);
        // Ground energy is -2; p=1 QAOA should reach well below the
        // uniform mean of 0.
        assert!(run.best_energy < -1.0, "best {}", run.best_energy);
        assert!(run.quantum_bursts > 5);
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let qaoa = Qaoa::new(chain(4), 1);
        let run = HybridOptimizer::new().run(&qaoa);
        for w in run.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(!run.history.is_empty());
    }

    #[test]
    fn deeper_circuits_reach_lower_energy() {
        let run1 = HybridOptimizer::new().run(&Qaoa::new(chain(4), 1));
        let run2 = HybridOptimizer::new().run(&Qaoa::new(chain(4), 2));
        assert!(
            run2.best_energy <= run1.best_energy + 0.05,
            "p=2 {} vs p=1 {}",
            run2.best_energy,
            run1.best_energy
        );
    }

    #[test]
    fn bursts_are_counted() {
        let qaoa = Qaoa::new(chain(3), 1);
        let opt = HybridOptimizer {
            max_rounds: 3,
            ..Default::default()
        };
        let run = opt.run(&qaoa);
        // 1 initial + at most 4 per round * 3 rounds.
        assert!(run.quantum_bursts <= 1 + 4 * 3);
    }
}
