//! End-to-end TSP solvers over the two quantum computation models
//! (gate-based QAOA and annealing) plus decode/repair plumbing.
//!
//! This is the "Hybrid Quantum Accelerator" of Fig 8(a): the host encodes
//! the problem as a QUBO, offloads it to either accelerator class, and
//! post-processes the measured samples back into tours.

use crate::hybrid::HybridOptimizer;
use crate::qaoa::Qaoa;
use crate::qubo_encode::TspQubo;
use crate::tsp::TspInstance;
use annealer::{spins_to_bits, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A solved tour with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TspSolution {
    /// Visiting order (time slot -> city).
    pub tour: Vec<usize>,
    /// Tour cost.
    pub cost: f64,
    /// Solver name.
    pub method: String,
    /// Fraction of samples that decoded to feasible tours.
    pub feasible_fraction: f64,
}

/// Solves a TSP by QUBO-encoding it and drawing `reads` samples from an
/// annealing-style sampler. Returns `None` if no sample was feasible.
pub fn solve_tsp_with_sampler<S: Sampler + ?Sized>(
    tsp: &TspInstance,
    sampler: &S,
    reads: u64,
) -> Option<TspSolution> {
    let enc = TspQubo::encode(tsp, TspQubo::default_penalty(tsp));
    let (ising, _offset) = enc.qubo.to_ising();
    let samples = sampler.sample(&ising, reads);
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut feasible = 0u64;
    let mut total = 0u64;
    for s in samples.iter() {
        total += s.occurrences;
        let bits = spins_to_bits(&s.spins);
        if let Some(tour) = enc.decode(&bits) {
            feasible += s.occurrences;
            let cost = tsp.tour_cost(&tour);
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((tour, cost));
            }
        }
    }
    best.map(|(tour, cost)| TspSolution {
        tour,
        cost,
        method: sampler.name().to_owned(),
        feasible_fraction: feasible as f64 / total.max(1) as f64,
    })
}

/// Solves a TSP with QAOA: encode to QUBO/Ising, train parameters with
/// the hybrid loop, then sample the trained circuit.
///
/// Only practical for very small instances (`n^2` qubits); `n = 3` is 9
/// qubits, `n = 4` the paper's 16.
pub fn solve_tsp_qaoa(
    tsp: &TspInstance,
    layers: usize,
    shots: u64,
    seed: u64,
) -> Option<TspSolution> {
    let enc = TspQubo::encode(tsp, TspQubo::default_penalty(tsp));
    let (ising, _offset) = enc.qubo.to_ising();
    let qaoa = Qaoa::new(ising, layers);
    let run = HybridOptimizer::new().run(&qaoa);
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = qaoa.sample(&run.best_params, shots, &mut rng);
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut feasible = 0u64;
    for (spins, _) in &samples {
        let bits = spins_to_bits(spins);
        if let Some(tour) = enc.decode(&bits) {
            feasible += 1;
            let cost = tsp.tour_cost(&tour);
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((tour, cost));
            }
        }
    }
    best.map(|(tour, cost)| TspSolution {
        tour,
        cost,
        method: format!("qaoa-p{layers}"),
        feasible_fraction: feasible as f64 / shots.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use annealer::{DigitalAnnealer, SimulatedAnnealer};

    fn three_city() -> TspInstance {
        TspInstance::from_coords(
            vec!["a".into(), "b".into(), "c".into()],
            &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)],
        )
    }

    #[test]
    fn sa_solves_paper_instance_optimally() {
        let tsp = TspInstance::nl_four_cities();
        let sol =
            solve_tsp_with_sampler(&tsp, &SimulatedAnnealer::new(), 40).expect("feasible sample");
        assert!((sol.cost - 1.42).abs() < 1e-9, "cost {}", sol.cost);
        assert!(sol.feasible_fraction > 0.0);
        assert_eq!(sol.method, "simulated-annealing");
    }

    #[test]
    fn digital_annealer_solves_paper_instance() {
        let tsp = TspInstance::nl_four_cities();
        let sol =
            solve_tsp_with_sampler(&tsp, &DigitalAnnealer::new(), 20).expect("feasible sample");
        assert!((sol.cost - 1.42).abs() < 1e-9, "cost {}", sol.cost);
    }

    #[test]
    fn qaoa_finds_a_feasible_tour_on_three_cities() {
        let tsp = three_city();
        let (_, opt) = tsp.brute_force();
        let sol = solve_tsp_qaoa(&tsp, 1, 600, 7).expect("feasible sample");
        assert_eq!(sol.tour.len(), 3);
        // All 3-city tours are optimal (cycle is symmetric), so cost must
        // match the optimum.
        assert!((sol.cost - opt).abs() < 1e-9, "cost {}", sol.cost);
        assert!(sol.feasible_fraction > 0.0);
    }

    #[test]
    fn solution_tours_are_valid_permutations() {
        let tsp = TspInstance::nl_four_cities();
        let sol = solve_tsp_with_sampler(&tsp, &SimulatedAnnealer::new(), 30).unwrap();
        let mut sorted = sol.tour.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
