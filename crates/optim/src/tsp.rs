//! Travelling Salesman Problem instances and classical solvers.
//!
//! §3.3 of the paper uses route planning between four cities in the
//! Netherlands reduced to a TSP graph built from scaled Euclidean
//! distances; enumerating all solutions gives an optimal tour of cost
//! **1.42**. That exact instance is [`TspInstance::nl_four_cities`].
//! Classical comparators include exhaustive enumeration, branch and
//! bound (the method behind the 85 900-city exact record the paper cites)
//! and Monte-Carlo / 2-opt heuristics ("used for larger inputs").

use rand::Rng;
use std::fmt;

/// A symmetric TSP instance over a complete graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TspInstance {
    names: Vec<String>,
    /// Dense symmetric distance matrix.
    dist: Vec<f64>,
}

impl TspInstance {
    /// Builds an instance from city coordinates (Euclidean distances).
    pub fn from_coords(names: Vec<String>, coords: &[(f64, f64)]) -> Self {
        let n = coords.len();
        assert_eq!(names.len(), n, "one name per city");
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = coords[i].0 - coords[j].0;
                let dy = coords[i].1 - coords[j].1;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt();
            }
        }
        TspInstance { names, dist }
    }

    /// Builds an instance from an explicit distance matrix (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or not symmetric.
    pub fn from_matrix(names: Vec<String>, dist: Vec<f64>) -> Self {
        let n = names.len();
        assert_eq!(dist.len(), n * n, "matrix must be n x n");
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (dist[i * n + j] - dist[j * n + i]).abs() < 1e-9,
                    "matrix must be symmetric"
                );
            }
        }
        TspInstance { names, dist }
    }

    /// Scales all distances by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for d in &mut self.dist {
            *d *= factor;
        }
    }

    /// The paper's four-city Netherlands example (Fig 9): scaled Euclidean
    /// distances normalised so that the optimal tour costs exactly 1.42,
    /// the value the paper reports from exhaustive enumeration.
    pub fn nl_four_cities() -> Self {
        // Approximate lon/lat of Amsterdam, Utrecht, Rotterdam, Eindhoven.
        let names = vec![
            "Amsterdam".to_owned(),
            "Utrecht".to_owned(),
            "Rotterdam".to_owned(),
            "Eindhoven".to_owned(),
        ];
        let coords = [(4.90, 52.37), (5.12, 52.09), (4.48, 51.92), (5.47, 51.44)];
        let mut inst = TspInstance::from_coords(names, &coords);
        // Scale so the optimal tour costs exactly 1.42 (paper's reported
        // optimum for its scaled-Euclidean graph).
        let (_, raw_opt) = inst.brute_force();
        inst.scale(1.42 / raw_opt);
        inst
    }

    /// A pseudo-random Euclidean instance in the unit square.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let coords: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let names = (0..n).map(|i| format!("city{i}")).collect();
        TspInstance::from_coords(names, &coords)
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the instance has no cities.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// City names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Distance between two cities.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.dist[i * self.len() + j]
    }

    /// Cost of a tour given as a permutation of all city indices
    /// (returns to the start at the end).
    ///
    /// # Panics
    ///
    /// Panics if `tour` is not a permutation of `0..n`.
    pub fn tour_cost(&self, tour: &[usize]) -> f64 {
        let n = self.len();
        assert_eq!(tour.len(), n, "tour must visit every city once");
        let mut seen = vec![false; n];
        for &c in tour {
            assert!(!seen[c], "tour repeats city {c}");
            seen[c] = true;
        }
        let mut cost = 0.0;
        for k in 0..n {
            cost += self.distance(tour[k], tour[(k + 1) % n]);
        }
        cost
    }

    /// Exhaustive enumeration (fix city 0, permute the rest).
    ///
    /// # Panics
    ///
    /// Panics if `n > 12` (factorial blow-up).
    pub fn brute_force(&self) -> (Vec<usize>, f64) {
        let n = self.len();
        assert!(n <= 12, "brute force limited to 12 cities");
        if n <= 1 {
            return ((0..n).collect(), 0.0);
        }
        let mut rest: Vec<usize> = (1..n).collect();
        let mut best_tour = Vec::new();
        let mut best = f64::INFINITY;
        permute(&mut rest, 0, &mut |perm| {
            let mut tour = Vec::with_capacity(n);
            tour.push(0);
            tour.extend_from_slice(perm);
            let cost = self.tour_cost(&tour);
            if cost < best {
                best = cost;
                best_tour = tour;
            }
        });
        (best_tour, best)
    }

    /// Branch and bound exact solver (prunes on partial cost).
    ///
    /// Returns the optimal tour, its cost, and the number of search nodes
    /// expanded (the work metric).
    pub fn branch_and_bound(&self) -> (Vec<usize>, f64, u64) {
        let n = self.len();
        if n <= 1 {
            return ((0..n).collect(), 0.0, 1);
        }
        // Seed the bound with a quick heuristic.
        let (heur_tour, heur_cost) = self.nearest_neighbor(0);
        let mut best = heur_cost + 1e-12;
        let mut best_tour = heur_tour;
        let mut nodes = 0u64;
        let mut path = vec![0usize];
        let mut used = vec![false; n];
        used[0] = true;
        self.bnb_recurse(
            &mut path,
            &mut used,
            0.0,
            &mut best,
            &mut best_tour,
            &mut nodes,
        );
        (best_tour, best, nodes)
    }

    fn bnb_recurse(
        &self,
        path: &mut Vec<usize>,
        used: &mut [bool],
        cost: f64,
        best: &mut f64,
        best_tour: &mut Vec<usize>,
        nodes: &mut u64,
    ) {
        *nodes += 1;
        let n = self.len();
        if path.len() == n {
            let total = cost + self.distance(path[n - 1], path[0]);
            if total < *best {
                *best = total;
                *best_tour = path.clone();
            }
            return;
        }
        let Some(&last) = path.last() else { return };
        for next in 1..n {
            if used[next] {
                continue;
            }
            let extended = cost + self.distance(last, next);
            if extended >= *best {
                continue; // prune
            }
            used[next] = true;
            path.push(next);
            self.bnb_recurse(path, used, extended, best, best_tour, nodes);
            path.pop();
            used[next] = false;
        }
    }

    /// Nearest-neighbour construction heuristic from a start city.
    pub fn nearest_neighbor(&self, start: usize) -> (Vec<usize>, f64) {
        let n = self.len();
        let mut tour = vec![start];
        let mut used = vec![false; n];
        used[start] = true;
        while tour.len() < n {
            let Some(&last) = tour.last() else { break };
            let Some(next) = (0..n)
                .filter(|&c| !used[c])
                .min_by(|&a, &b| self.distance(last, a).total_cmp(&self.distance(last, b)))
            else {
                break;
            };
            used[next] = true;
            tour.push(next);
        }
        let cost = self.tour_cost(&tour);
        (tour, cost)
    }

    /// 2-opt local improvement until no improving swap exists.
    pub fn two_opt(&self, tour: &[usize]) -> (Vec<usize>, f64) {
        let n = self.len();
        let mut t = tour.to_vec();
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..n - 1 {
                for j in i + 2..n {
                    if i == 0 && j == n - 1 {
                        continue; // same edge
                    }
                    let a = t[i];
                    let b = t[i + 1];
                    let c = t[j];
                    let d = t[(j + 1) % n];
                    let delta = self.distance(a, c) + self.distance(b, d)
                        - self.distance(a, b)
                        - self.distance(c, d);
                    if delta < -1e-12 {
                        t[i + 1..=j].reverse();
                        improved = true;
                    }
                }
            }
        }
        let cost = self.tour_cost(&t);
        (t, cost)
    }

    /// Monte-Carlo search: best of `samples` random tours (the heuristic
    /// the paper notes is "used for larger inputs").
    pub fn monte_carlo<R: Rng + ?Sized>(&self, samples: u64, rng: &mut R) -> (Vec<usize>, f64) {
        let n = self.len();
        let mut best_tour: Vec<usize> = (0..n).collect();
        let mut best = self.tour_cost(&best_tour);
        let mut tour: Vec<usize> = (0..n).collect();
        for _ in 0..samples {
            // Fisher-Yates shuffle.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                tour.swap(i, j);
            }
            let cost = self.tour_cost(&tour);
            if cost < best {
                best = cost;
                best_tour = tour.clone();
            }
        }
        (best_tour, best)
    }
}

fn permute<F: FnMut(&[usize])>(items: &mut Vec<usize>, k: usize, f: &mut F) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

impl fmt::Display for TspInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "tsp over {} cities: {:?}", self.len(), self.names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nl_four_cities_optimum_is_1_42() {
        let tsp = TspInstance::nl_four_cities();
        let (tour, cost) = tsp.brute_force();
        assert!((cost - 1.42).abs() < 1e-9, "optimal cost {cost}");
        assert_eq!(tour.len(), 4);
        assert_eq!(tsp.len(), 4);
    }

    #[test]
    fn tour_cost_of_square() {
        let tsp = TspInstance::from_coords(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            &[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)],
        );
        assert!((tsp.tour_cost(&[0, 1, 2, 3]) - 4.0).abs() < 1e-12);
        // Crossing diagonal tour is longer.
        assert!(tsp.tour_cost(&[0, 2, 1, 3]) > 4.0);
    }

    #[test]
    fn branch_and_bound_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..5 {
            let tsp = TspInstance::random(7, &mut rng);
            let (_, bf) = tsp.brute_force();
            let (_, bb, nodes) = tsp.branch_and_bound();
            assert!((bf - bb).abs() < 1e-9, "bnb {bb} vs brute {bf}");
            // Pruning: fewer nodes than the full 6! * partial tree.
            assert!(nodes < 2000, "nodes {nodes}");
        }
    }

    #[test]
    fn two_opt_improves_nearest_neighbor() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut improved_any = false;
        for _ in 0..10 {
            let tsp = TspInstance::random(10, &mut rng);
            let (nn_tour, nn) = tsp.nearest_neighbor(0);
            let (_, opt2) = tsp.two_opt(&nn_tour);
            assert!(opt2 <= nn + 1e-12);
            if opt2 < nn - 1e-9 {
                improved_any = true;
            }
        }
        assert!(improved_any, "2-opt should improve at least one instance");
    }

    #[test]
    fn monte_carlo_finds_small_instance_optimum() {
        let tsp = TspInstance::nl_four_cities();
        let mut rng = StdRng::seed_from_u64(23);
        let (_, mc) = tsp.monte_carlo(200, &mut rng);
        assert!((mc - 1.42).abs() < 1e-9, "mc best {mc}");
    }

    #[test]
    fn heuristics_bounded_below_by_optimum() {
        let mut rng = StdRng::seed_from_u64(24);
        let tsp = TspInstance::random(8, &mut rng);
        let (_, opt) = tsp.brute_force();
        let (_, nn) = tsp.nearest_neighbor(0);
        let (_, mc) = tsp.monte_carlo(50, &mut rng);
        assert!(nn >= opt - 1e-12);
        assert!(mc >= opt - 1e-12);
    }

    #[test]
    #[should_panic(expected = "repeats city")]
    fn invalid_tour_rejected() {
        let tsp = TspInstance::nl_four_cities();
        let _ = tsp.tour_cost(&[0, 1, 1, 3]);
    }

    #[test]
    fn matrix_constructor_checks_symmetry() {
        let names = vec!["a".into(), "b".into()];
        let ok = TspInstance::from_matrix(names.clone(), vec![0.0, 2.0, 2.0, 0.0]);
        assert_eq!(ok.distance(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        let names = vec!["a".into(), "b".into()];
        let _ = TspInstance::from_matrix(names, vec![0.0, 2.0, 3.0, 0.0]);
    }
}
