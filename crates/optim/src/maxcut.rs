//! Max-Cut: the second optimisation workload.
//!
//! §3.3 of the paper frames QUBO as the lingua franca of near-term
//! quantum optimisation; Max-Cut is its canonical instance (the
//! Hamiltonian is pure Ising couplings, no penalty terms — the friendly
//! end of the QAOA spectrum, in contrast to the heavily-constrained TSP).
//! Maximising the cut weight equals minimising `sum w_ij s_i s_j`.

use annealer::{Ising, Sampler};
use rand::Rng;

/// A weighted undirected graph for Max-Cut.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxCut {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl MaxCut {
    /// Creates an instance from weighted edges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or self-loop edges.
    pub fn new(n: usize, edges: Vec<(usize, usize, f64)>) -> Self {
        for &(a, b, _) in &edges {
            assert!(a < n && b < n, "edge out of range");
            assert_ne!(a, b, "self-loop");
        }
        MaxCut { n, edges }
    }

    /// An Erdős–Rényi random graph with unit weights.
    pub fn random<R: Rng + ?Sized>(n: usize, edge_prob: f64, rng: &mut R) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                if rng.gen_bool(edge_prob) {
                    edges.push((a, b, 1.0));
                }
            }
        }
        MaxCut { n, edges }
    }

    /// The unweighted ring graph `C_n` (max cut = n for even n, n-1 odd).
    pub fn ring(n: usize) -> Self {
        let edges = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        MaxCut { n, edges }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The edges.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Cut weight of a partition (`true` = side A).
    pub fn cut_weight(&self, partition: &[bool]) -> f64 {
        self.edges
            .iter()
            .filter(|&&(a, b, _)| partition[a] != partition[b])
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// The Ising encoding: minimising `sum (w/2) s_i s_j` maximises the
    /// cut; returns the model and the constant so that
    /// `cut = offset - energy`.
    pub fn to_ising(&self) -> (Ising, f64) {
        let mut ising = Ising::new(self.n);
        let mut offset = 0.0;
        for &(a, b, w) in &self.edges {
            ising.add_coupling(a, b, w / 2.0);
            offset += w / 2.0;
        }
        (ising, offset)
    }

    /// Exhaustive optimum (for `n <= 24`).
    ///
    /// # Panics
    ///
    /// Panics above 24 vertices.
    pub fn brute_force(&self) -> (Vec<bool>, f64) {
        assert!(self.n <= 24, "brute force limited to 24 vertices");
        let mut best = (vec![false; self.n], 0.0f64);
        for bits in 0..(1u64 << self.n) {
            let p: Vec<bool> = (0..self.n).map(|i| (bits >> i) & 1 == 1).collect();
            let w = self.cut_weight(&p);
            if w > best.1 {
                best = (p, w);
            }
        }
        best
    }

    /// Greedy local search: flip any vertex that improves the cut, until
    /// a local optimum.
    pub fn local_search(&self, start: Vec<bool>) -> (Vec<bool>, f64) {
        let mut p = start;
        let mut improved = true;
        while improved {
            improved = false;
            for v in 0..self.n {
                let before = self.cut_weight(&p);
                p[v] = !p[v];
                if self.cut_weight(&p) > before {
                    improved = true;
                } else {
                    p[v] = !p[v];
                }
            }
        }
        let w = self.cut_weight(&p);
        (p, w)
    }

    /// Solves via any annealing-style sampler; returns the best partition
    /// and cut weight.
    pub fn solve_with<S: Sampler + ?Sized>(&self, sampler: &S, reads: u64) -> (Vec<bool>, f64) {
        let (ising, _) = self.to_ising();
        let set = sampler.sample(&ising, reads);
        let Some(best) = set.best() else {
            // Zero reads: the empty sampler run degrades to the trivial cut.
            return (vec![false; self.len()], 0.0);
        };
        let partition: Vec<bool> = best.spins.iter().map(|&s| s < 0).collect();
        let w = self.cut_weight(&partition);
        (partition, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridOptimizer;
    use crate::qaoa::Qaoa;
    use annealer::{QuantumAnnealer, SimulatedAnnealer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_cut_values() {
        let even = MaxCut::ring(6);
        let (_, w) = even.brute_force();
        assert_eq!(w, 6.0);
        let odd = MaxCut::ring(5);
        let (_, w) = odd.brute_force();
        assert_eq!(w, 4.0);
    }

    #[test]
    fn ising_encoding_preserves_cut_ordering() {
        let mut rng = StdRng::seed_from_u64(70);
        let g = MaxCut::random(6, 0.6, &mut rng);
        let (ising, offset) = g.to_ising();
        for bits in 0..64u64 {
            let p: Vec<bool> = (0..6).map(|i| (bits >> i) & 1 == 1).collect();
            let spins: Vec<i8> = p.iter().map(|&b| if b { -1 } else { 1 }).collect();
            let cut = g.cut_weight(&p);
            let from_ising = offset - ising.energy(&spins);
            assert!((cut - from_ising).abs() < 1e-9);
        }
    }

    #[test]
    fn sa_and_sqa_find_the_optimum() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = MaxCut::random(10, 0.5, &mut rng);
        let (_, exact) = g.brute_force();
        let (_, sa) = g.solve_with(&SimulatedAnnealer::new(), 15);
        let (_, sqa) = g.solve_with(&QuantumAnnealer::new(), 10);
        assert!((sa - exact).abs() < 1e-9, "SA {sa} vs {exact}");
        assert!((sqa - exact).abs() < 1e-9, "SQA {sqa} vs {exact}");
    }

    #[test]
    fn local_search_reaches_at_least_half_optimal() {
        // Classic guarantee: any local optimum cuts >= half the edges.
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..5 {
            let g = MaxCut::random(12, 0.4, &mut rng);
            let total: f64 = g.edges().iter().map(|e| e.2).sum();
            let (_, w) = g.local_search(vec![false; 12]);
            assert!(w * 2.0 >= total - 1e-9, "cut {w} of total {total}");
        }
    }

    #[test]
    fn qaoa_beats_random_assignment_on_the_ring() {
        let g = MaxCut::ring(6);
        let (ising, offset) = g.to_ising();
        let qaoa = Qaoa::new(ising, 1);
        let run = HybridOptimizer::new().run(&qaoa);
        // Expected cut from QAOA = offset - <E>; random guessing gives
        // half the edges (3.0).
        let expected_cut = offset - run.best_energy;
        assert!(
            expected_cut > 4.0,
            "QAOA expected cut {expected_cut} should beat random 3.0"
        );
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g = MaxCut::new(3, vec![]);
        let (_, w) = g.brute_force();
        assert_eq!(w, 0.0);
        assert_eq!(g.cut_weight(&[true, false, true]), 0.0);
    }
}
