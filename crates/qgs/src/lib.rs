//! # qgs — the quantum genome sequencing accelerator
//!
//! The second full-stack example of Bertels et al. (DATE 2020, §3.2): read
//! alignment accelerated by quantum search. The pipeline combines
//! "domain-specific modification on Grover's search and quantum
//! associative memory": the reference is sliced into indexed k-mers stored
//! in a superposed database, and amplitude amplification raises the
//! probability of the entry nearest the (error-carrying) read, index
//! included — so measuring yields the alignment position.
//!
//! Components:
//!
//! - [`dna`] — sequences plus order-k Markov artificial genome generation
//!   (the paper's prescription for simulator-scale test data);
//! - [`reads`] — sequencing-read simulation with substitution errors;
//! - [`classical`] — exact and best-Hamming scan baselines;
//! - [`grover`] — the search primitive, state-level and gate-level;
//! - [`qam`] — quantum associative memory with approximate recall;
//! - [`aligner`] — the full index-entangled alignment pipeline;
//! - [`capacity`] — the ~150-logical-qubit human-genome estimate.
//!
//! # Example
//!
//! ```
//! use qgs::aligner::QuantumAligner;
//! use qgs::dna::Sequence;
//!
//! let reference = Sequence::parse("ACGTGGCAATTCCGA").unwrap();
//! let aligner = QuantumAligner::new(reference.clone(), 4);
//! let read = reference.subsequence(7, 4);
//! let hit = aligner.align(&read, 0);
//! assert_eq!(hit.position, 7);
//! ```

pub mod aligner;
pub mod assembly;
pub mod capacity;
pub mod classical;
pub mod dna;
pub mod grover;
pub mod qam;
pub mod reads;

pub use aligner::{AlignmentOutcome, QuantumAligner};
pub use assembly::{fragment, suffix_prefix_overlap, OverlapGraph};
pub use capacity::CapacityModel;
pub use dna::{Base, MarkovModel, Sequence};
pub use grover::{grover_circuit, grover_search, optimal_iterations, GroverResult};
pub use qam::{QuantumAssociativeMemory, RecallResult};
pub use reads::{Read, ReadGenerator};
