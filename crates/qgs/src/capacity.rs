//! Qubit-capacity model for genome-scale search.
//!
//! The paper estimates (§2.3, footnote 2): "given the size of the human
//! genome and currently available sequencers, the number of qubits
//! required will be around 150 logical qubits". This module makes that
//! estimate reproducible: index register + data register + the distance
//! comparator workspace of the error-tolerant oracle.

/// Capacity model for an indexed k-mer search database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityModel {
    /// Reference length in bases.
    pub reference_len: u64,
    /// Read (k-mer) length in bases.
    pub read_len: u64,
}

impl CapacityModel {
    /// Creates a model.
    pub fn new(reference_len: u64, read_len: u64) -> Self {
        CapacityModel {
            reference_len,
            read_len,
        }
    }

    /// The human-genome / short-read scenario of the paper: ~3.1 Gbase
    /// reference, 50-base reads from current sequencers.
    pub fn human_genome() -> Self {
        CapacityModel::new(3_100_000_000, 50)
    }

    /// Index qubits: `ceil(log2(#positions))`.
    pub fn index_qubits(&self) -> u64 {
        let positions = self.reference_len - self.read_len + 1;
        64 - (positions - 1).leading_zeros() as u64
    }

    /// Data qubits: two per base.
    pub fn data_qubits(&self) -> u64 {
        2 * self.read_len
    }

    /// Oracle workspace: a distance accumulator able to count up to the
    /// read length, duplicated for comparator carries, plus a result
    /// qubit and a phase ancilla.
    pub fn ancilla_qubits(&self) -> u64 {
        let counter = 64 - (2 * self.read_len - 1).leading_zeros() as u64;
        2 * counter + 2
    }

    /// Total logical qubits.
    pub fn total_logical_qubits(&self) -> u64 {
        self.index_qubits() + self.data_qubits() + self.ancilla_qubits()
    }

    /// Physical qubits when each logical qubit is a distance-`d` planar
    /// surface-code patch (`(2d-1)^2` physical per logical).
    pub fn physical_qubits(&self, code_distance: u64) -> u64 {
        let per_logical = (2 * code_distance - 1).pow(2);
        self.total_logical_qubits() * per_logical
    }

    /// Grover iterations to search the database (`pi/4 sqrt(N)`).
    pub fn grover_iterations(&self) -> u64 {
        let n = (self.reference_len - self.read_len + 1) as f64;
        (std::f64::consts::FRAC_PI_4 * n.sqrt()).ceil() as u64
    }

    /// Classical comparisons for a linear scan (`N * read_len`).
    pub fn classical_comparisons(&self) -> u64 {
        (self.reference_len - self.read_len + 1) * self.read_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_genome_matches_paper_estimate() {
        let m = CapacityModel::human_genome();
        assert_eq!(m.index_qubits(), 32);
        assert_eq!(m.data_qubits(), 100);
        let total = m.total_logical_qubits();
        // The paper says "around 150 logical qubits".
        assert!(
            (140..=160).contains(&total),
            "estimate {total} strays from ~150"
        );
    }

    #[test]
    fn small_model_counts() {
        let m = CapacityModel::new(16 + 3, 4); // 16 positions
        assert_eq!(m.index_qubits(), 4);
        assert_eq!(m.data_qubits(), 8);
    }

    #[test]
    fn quadratic_speedup_in_queries() {
        let m = CapacityModel::human_genome();
        let grover = m.grover_iterations() as f64;
        let classical = m.classical_comparisons() as f64 / m.read_len as f64;
        // sqrt scaling: grover ~ sqrt(classical) * pi/4.
        let expected = std::f64::consts::FRAC_PI_4 * classical.sqrt();
        assert!((grover / expected - 1.0).abs() < 0.01);
        assert!(grover < classical / 10_000.0, "speedup should be enormous");
    }

    #[test]
    fn physical_overhead_grows_quadratically_in_distance() {
        let m = CapacityModel::human_genome();
        let d5 = m.physical_qubits(5);
        let d10 = m.physical_qubits(10);
        assert_eq!(d5, m.total_logical_qubits() * 81);
        assert!(d10 > d5 * 4 - m.total_logical_qubits() * 10);
    }

    #[test]
    fn index_grows_logarithmically() {
        let small = CapacityModel::new(1_000_000, 50);
        let big = CapacityModel::new(1_000_000_000, 50);
        assert!(big.index_qubits() - small.index_qubits() <= 10);
    }
}
