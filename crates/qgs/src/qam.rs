//! Quantum associative memory (QAM).
//!
//! §3.2 of the paper: "the reference DNA is sliced and stored as indexed
//! entries in a superposed quantum database giving exponential increase in
//! capacity", recalled through amplitude amplification so that "a quantum
//! search on the database amplifies the measurement probability of the
//! nearest match to the query".
//!
//! The memory state is an equal superposition over the stored patterns;
//! recall uses generalised amplitude amplification: the reflection about
//! the *memory state* replaces Grover's uniform diffuser, so amplification
//! acts within the stored set only.

use cqasm::math::C64;
use qxsim::StateVector;

/// A quantum associative memory over `n_qubits`-bit patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumAssociativeMemory {
    n_qubits: usize,
    patterns: Vec<u64>,
}

/// Result of a recall operation.
#[derive(Debug, Clone)]
pub struct RecallResult {
    /// The post-amplification state.
    pub state: StateVector,
    /// Amplitude-amplification iterations applied.
    pub iterations: usize,
    /// Probability mass on the marked (matching) patterns.
    pub success_probability: f64,
    /// The most probable basis state (the recalled pattern).
    pub recalled: u64,
}

impl QuantumAssociativeMemory {
    /// An empty memory over `n_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` exceeds 24 (state too large to simulate here).
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits <= 24, "memory register too large to simulate");
        QuantumAssociativeMemory {
            n_qubits,
            patterns: Vec::new(),
        }
    }

    /// Register width.
    pub fn qubit_count(&self) -> usize {
        self.n_qubits
    }

    /// Stores a pattern (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if the pattern does not fit the register.
    pub fn store(&mut self, pattern: u64) {
        assert!(
            pattern < (1u64 << self.n_qubits),
            "pattern wider than register"
        );
        if !self.patterns.contains(&pattern) {
            self.patterns.push(pattern);
        }
    }

    /// Stored patterns.
    pub fn patterns(&self) -> &[u64] {
        &self.patterns
    }

    /// The capacity in patterns: `2^n`, exponential in qubits — the
    /// "exponential increase in capacity" the paper claims versus the
    /// linear scaling of classical memory.
    pub fn capacity(&self) -> u64 {
        1u64 << self.n_qubits
    }

    /// The memory state: an equal superposition of the stored patterns.
    ///
    /// # Panics
    ///
    /// Panics if the memory is empty.
    pub fn memory_state(&self) -> StateVector {
        assert!(!self.patterns.is_empty(), "memory is empty");
        let dim = 1usize << self.n_qubits;
        let amp = C64::real(1.0 / (self.patterns.len() as f64).sqrt());
        let mut amps = vec![C64::ZERO; dim];
        for &p in &self.patterns {
            amps[p as usize] = amp;
        }
        StateVector::from_amplitudes(amps)
    }

    /// Recalls the stored pattern(s) satisfying `matches`, by amplitude
    /// amplification started from (and reflecting about) the memory state.
    ///
    /// `iterations = None` uses the optimum `floor(pi/4 sqrt(P/M))` where
    /// `P` is the stored count and `M` the matching count.
    ///
    /// # Panics
    ///
    /// Panics if the memory is empty.
    pub fn recall<F: Fn(u64) -> bool>(
        &self,
        matches: F,
        iterations: Option<usize>,
    ) -> RecallResult {
        let psi0 = self.memory_state();
        let marked: Vec<u64> = self
            .patterns
            .iter()
            .copied()
            .filter(|&p| matches(p))
            .collect();
        let iters = iterations.unwrap_or_else(|| {
            if marked.is_empty() {
                0
            } else {
                ((std::f64::consts::FRAC_PI_4)
                    * (self.patterns.len() as f64 / marked.len() as f64).sqrt())
                .floor() as usize
            }
        });
        let mut state = psi0.clone();
        for _ in 0..iters {
            state.apply_phase_if(C64::real(-1.0), &matches);
            reflect_about(&mut state, &psi0);
        }
        let success_probability = state
            .amplitudes()
            .iter()
            .enumerate()
            .filter(|(i, _)| matches(*i as u64))
            .map(|(_, a)| a.norm_sqr())
            .sum();
        let recalled = state
            .amplitudes()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            .map(|(i, _)| i as u64)
            .unwrap_or(0);
        RecallResult {
            state,
            iterations: iters,
            success_probability,
            recalled,
        }
    }
}

/// The reflection `2|psi0><psi0| - I`.
fn reflect_about(state: &mut StateVector, psi0: &StateVector) {
    let mut inner = C64::ZERO;
    for (a, b) in psi0.amplitudes().iter().zip(state.amplitudes()) {
        inner += a.conj() * *b;
    }
    let new: Vec<C64> = psi0
        .amplitudes()
        .iter()
        .zip(state.amplitudes())
        .map(|(p, s)| *p * inner * 2.0 - *s)
        .collect();
    *state = StateVector::from_amplitudes(new);
}

/// Hamming distance between bit-strings.
pub fn bit_hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> QuantumAssociativeMemory {
        let mut m = QuantumAssociativeMemory::new(6);
        for p in [
            0b000011u64,
            0b010101,
            0b101010,
            0b111100,
            0b001100,
            0b110011,
        ] {
            m.store(p);
        }
        m
    }

    #[test]
    fn memory_state_is_uniform_over_patterns() {
        let m = memory();
        let s = m.memory_state();
        for &p in m.patterns() {
            assert!((s.probability_of(p) - 1.0 / 6.0).abs() < 1e-10);
        }
        assert!(s.probability_of(0b111111) < 1e-12);
    }

    #[test]
    fn exact_recall_amplifies_single_pattern() {
        let m = memory();
        let r = m.recall(|p| p == 0b101010, None);
        assert!(
            r.success_probability > 0.9,
            "success {}",
            r.success_probability
        );
        assert_eq!(r.recalled, 0b101010);
    }

    #[test]
    fn approximate_recall_finds_nearest() {
        let m = memory();
        // Query 0b101011 is distance 1 from stored 0b101010; every other
        // stored pattern is further.
        let query = 0b101011u64;
        let r = m.recall(|p| bit_hamming(p, query) <= 1, None);
        assert_eq!(r.recalled, 0b101010);
        assert!(r.success_probability > 0.85);
    }

    #[test]
    fn recall_with_no_match_changes_nothing() {
        let m = memory();
        let r = m.recall(|p| p == 0b111111, None);
        assert_eq!(r.iterations, 0);
        assert!(r.success_probability < 1e-12);
    }

    #[test]
    fn amplification_stays_within_stored_set() {
        let m = memory();
        let r = m.recall(|p| bit_hamming(p, 0b010101) <= 1, None);
        // No amplitude leaks to unstored basis states.
        let unstored_mass: f64 = (0..64u64)
            .filter(|b| !m.patterns().contains(b))
            .map(|b| r.state.probability_of(b))
            .sum();
        assert!(unstored_mass < 1e-9, "leaked {unstored_mass}");
    }

    #[test]
    fn capacity_is_exponential() {
        assert_eq!(QuantumAssociativeMemory::new(10).capacity(), 1024);
        assert_eq!(QuantumAssociativeMemory::new(20).capacity(), 1 << 20);
    }

    #[test]
    fn store_is_idempotent() {
        let mut m = QuantumAssociativeMemory::new(4);
        m.store(3);
        m.store(3);
        assert_eq!(m.patterns().len(), 1);
    }

    #[test]
    #[should_panic(expected = "wider than register")]
    fn oversized_pattern_rejected() {
        QuantumAssociativeMemory::new(3).store(8);
    }
}
