//! DNA sequences and artificial genome generation.
//!
//! §3.2 of the paper: "for testing the functionality of the algorithm, we
//! use artificial DNA sequences that preserve the statistical and entropic
//! complexity of the base pairs in biological genomes; yet in a reduced
//! size so that they can be efficiently simulated". The generator here is
//! an order-k Markov chain whose transition statistics are either supplied
//! or estimated from a template sequence.

use rand::Rng;
use std::fmt;

/// A nucleotide base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Base {
    /// Adenine.
    A,
    /// Cytosine.
    C,
    /// Guanine.
    G,
    /// Thymine.
    T,
}

impl Base {
    /// All four bases in encoding order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Two-bit encoding (`A=00, C=01, G=10, T=11`).
    pub fn to_bits(self) -> u64 {
        match self {
            Base::A => 0,
            Base::C => 1,
            Base::G => 2,
            Base::T => 3,
        }
    }

    /// Decodes a two-bit code (only the low two bits are read).
    pub fn from_bits(bits: u64) -> Base {
        match bits & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// Parses a character (case-insensitive).
    pub fn from_char(c: char) -> Option<Base> {
        match c.to_ascii_uppercase() {
            'A' => Some(Base::A),
            'C' => Some(Base::C),
            'G' => Some(Base::G),
            'T' => Some(Base::T),
            _ => None,
        }
    }

    /// The display character.
    pub fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
        }
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A DNA sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Sequence(Vec<Base>);

impl Sequence {
    /// An empty sequence.
    pub fn new() -> Self {
        Sequence(Vec::new())
    }

    /// Parses from a string of `ACGT` characters.
    ///
    /// Returns `None` if any character is not a base.
    pub fn parse(s: &str) -> Option<Self> {
        s.chars()
            .map(Base::from_char)
            .collect::<Option<Vec<_>>>()
            .map(Sequence)
    }

    /// Length in bases.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bases.
    pub fn bases(&self) -> &[Base] {
        &self.0
    }

    /// The subsequence `[start, start+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn subsequence(&self, start: usize, len: usize) -> Sequence {
        Sequence(self.0[start..start + len].to_vec())
    }

    /// Packs the sequence into an integer, first base in the *most*
    /// significant position (so lexicographic order matches numeric).
    ///
    /// # Panics
    ///
    /// Panics if the sequence exceeds 32 bases (64 bits).
    pub fn encode(&self) -> u64 {
        assert!(self.len() <= 32, "sequence too long to pack");
        self.0.iter().fold(0u64, |acc, b| (acc << 2) | b.to_bits())
    }

    /// Unpacks `len` bases from an integer (inverse of [`Sequence::encode`]).
    pub fn decode(mut code: u64, len: usize) -> Sequence {
        let mut out = vec![Base::A; len];
        for i in (0..len).rev() {
            out[i] = Base::from_bits(code & 3);
            code >>= 2;
        }
        Sequence(out)
    }

    /// Hamming distance in *bases* to another sequence of equal length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &Sequence) -> usize {
        assert_eq!(self.len(), other.len(), "length mismatch");
        self.0.iter().zip(&other.0).filter(|(a, b)| a != b).count()
    }

    /// Base frequency histogram `[A, C, G, T]` as fractions.
    pub fn base_frequencies(&self) -> [f64; 4] {
        let mut counts = [0usize; 4];
        for b in &self.0 {
            counts[b.to_bits() as usize] += 1;
        }
        let total = self.len().max(1) as f64;
        counts.map(|c| c as f64 / total)
    }

    /// Shannon entropy of the base distribution, in bits (max 2.0).
    pub fn base_entropy(&self) -> f64 {
        self.base_frequencies()
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.log2())
            .sum()
    }

    /// Appends a base.
    pub fn push(&mut self, base: Base) {
        self.0.push(base);
    }
}

impl FromIterator<Base> for Sequence {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> Self {
        Sequence(iter.into_iter().collect())
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// An order-k Markov model over bases, used to generate artificial
/// genomes with controlled statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovModel {
    order: usize,
    /// Transition weights indexed by packed k-mer context, then next base.
    table: Vec<[f64; 4]>,
}

impl MarkovModel {
    /// A uniform (maximum-entropy) model of the given order.
    pub fn uniform(order: usize) -> Self {
        let contexts = 1usize << (2 * order);
        MarkovModel {
            order,
            table: vec![[0.25; 4]; contexts],
        }
    }

    /// Estimates the model from a template sequence (add-one smoothing),
    /// preserving its statistical complexity as the paper prescribes.
    pub fn estimate(template: &Sequence, order: usize) -> Self {
        let contexts = 1usize << (2 * order);
        let mut counts = vec![[1.0f64; 4]; contexts];
        let bases = template.bases();
        for w in bases.windows(order + 1) {
            let ctx = w[..order]
                .iter()
                .fold(0usize, |acc, b| (acc << 2) | b.to_bits() as usize);
            counts[ctx][w[order].to_bits() as usize] += 1.0;
        }
        for row in &mut counts {
            let total: f64 = row.iter().sum();
            for v in row.iter_mut() {
                *v /= total;
            }
        }
        MarkovModel {
            order,
            table: counts,
        }
    }

    /// Model order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Generates a sequence of `len` bases.
    pub fn generate<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Sequence {
        let mut out = Sequence::new();
        let mask = (1usize << (2 * self.order)).saturating_sub(1);
        let mut ctx = 0usize;
        for i in 0..len {
            let probs = if i < self.order {
                &[0.25; 4]
            } else {
                &self.table[ctx]
            };
            let r: f64 = rng.gen();
            let mut acc = 0.0;
            let mut chosen = Base::T;
            for (k, &p) in probs.iter().enumerate() {
                acc += p;
                if r < acc {
                    chosen = Base::from_bits(k as u64);
                    break;
                }
            }
            out.push(chosen);
            ctx = ((ctx << 2) | chosen.to_bits() as usize) & mask;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_display_roundtrip() {
        let s = Sequence::parse("ACGTGCA").unwrap();
        assert_eq!(s.len(), 7);
        assert_eq!(s.to_string(), "ACGTGCA");
        assert!(Sequence::parse("ACGX").is_none());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = Sequence::parse("GATTACA").unwrap();
        let code = s.encode();
        assert_eq!(Sequence::decode(code, 7), s);
    }

    #[test]
    fn encoding_is_lexicographic() {
        let a = Sequence::parse("AAC").unwrap();
        let b = Sequence::parse("AAG").unwrap();
        let c = Sequence::parse("CAA").unwrap();
        assert!(a.encode() < b.encode());
        assert!(b.encode() < c.encode());
    }

    #[test]
    fn hamming_distance() {
        let a = Sequence::parse("ACGT").unwrap();
        let b = Sequence::parse("ACCT").unwrap();
        assert_eq!(a.hamming(&b), 1);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn entropy_extremes() {
        let flat = Sequence::parse("AAAA").unwrap();
        assert!(flat.base_entropy() < 1e-12);
        let max = Sequence::parse("ACGTACGT").unwrap();
        assert!((max.base_entropy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_markov_statistics() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = MarkovModel::uniform(1).generate(8000, &mut rng);
        for f in s.base_frequencies() {
            assert!((f - 0.25).abs() < 0.03, "frequency {f}");
        }
        assert!(s.base_entropy() > 1.99);
    }

    #[test]
    fn estimated_model_preserves_bias() {
        // Template heavily GC-biased; generated sequences should be too.
        let template: Sequence = std::iter::repeat_n([Base::G, Base::C, Base::G, Base::G], 200)
            .flatten()
            .collect();
        let model = MarkovModel::estimate(&template, 1);
        let mut rng = StdRng::seed_from_u64(6);
        let generated = model.generate(4000, &mut rng);
        let f = generated.base_frequencies();
        let gc = f[1] + f[2];
        assert!(gc > 0.8, "GC fraction {gc} should be high");
    }

    #[test]
    fn estimated_model_preserves_dinucleotide_structure() {
        // Template alternates AC: P(C|A) ~ 1.
        let template: Sequence = std::iter::repeat_n([Base::A, Base::C], 300)
            .flatten()
            .collect();
        let model = MarkovModel::estimate(&template, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let g = model.generate(2000, &mut rng);
        // Count transitions A -> C.
        let bases = g.bases();
        let mut a_total = 0;
        let mut a_to_c = 0;
        for w in bases.windows(2) {
            if w[0] == Base::A {
                a_total += 1;
                if w[1] == Base::C {
                    a_to_c += 1;
                }
            }
        }
        assert!(a_total > 0);
        let frac = a_to_c as f64 / a_total as f64;
        assert!(frac > 0.9, "P(C|A) = {frac}");
    }

    #[test]
    fn subsequence_extraction() {
        let s = Sequence::parse("ACGTACGT").unwrap();
        assert_eq!(s.subsequence(2, 3).to_string(), "GTA");
    }
}
