//! The quantum read-alignment pipeline of §3.2.
//!
//! "The reference DNA is sliced and stored as indexed entries in a
//! superposed quantum database ... A quantum search on the database
//! amplifies the measurement probability of the nearest match to the
//! query and thereby of the corresponding index. Due to the reference
//! database and index being entangled, the closest-match index can be
//! estimated."
//!
//! The register layout is `|index> (x) |kmer>`: index bits high, the
//! 2-bit-per-base k-mer low. The database state superposes one basis state
//! per reference position; the error-tolerant oracle marks entries whose
//! k-mer part is within a base-Hamming radius of the (possibly corrupted)
//! read.

use crate::dna::Sequence;
use crate::qam::QuantumAssociativeMemory;

/// Per-base Hamming distance between two packed k-mers.
pub fn base_hamming(a: u64, b: u64, k: usize) -> usize {
    let mut diff = a ^ b;
    let mut count = 0;
    for _ in 0..k {
        if diff & 0b11 != 0 {
            count += 1;
        }
        diff >>= 2;
    }
    count
}

/// Result of a quantum alignment.
#[derive(Debug, Clone)]
pub struct AlignmentOutcome {
    /// The recalled reference position.
    pub position: usize,
    /// Probability mass on all matching entries after amplification.
    pub success_probability: f64,
    /// Amplitude-amplification iterations used (the quantum query count).
    pub iterations: usize,
    /// Number of database entries that matched the tolerance.
    pub matches: usize,
}

/// The quantum aligner: an indexed superposed k-mer database.
#[derive(Debug, Clone)]
pub struct QuantumAligner {
    reference: Sequence,
    kmer_len: usize,
    index_bits: usize,
    memory: QuantumAssociativeMemory,
}

impl QuantumAligner {
    /// Builds the aligner by slicing `reference` into all overlapping
    /// k-mers and storing `(position, kmer)` entries.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than `kmer_len`, or the register
    /// (index + 2k data qubits) exceeds the simulable range.
    pub fn new(reference: Sequence, kmer_len: usize) -> Self {
        assert!(reference.len() >= kmer_len, "reference shorter than k");
        let positions = reference.len() - kmer_len + 1;
        let index_bits = usize::BITS as usize - (positions - 1).leading_zeros() as usize;
        let index_bits = index_bits.max(1);
        let data_bits = 2 * kmer_len;
        let mut memory = QuantumAssociativeMemory::new(index_bits + data_bits);
        for pos in 0..positions {
            let kmer = reference.subsequence(pos, kmer_len).encode();
            memory.store(((pos as u64) << data_bits) | kmer);
        }
        QuantumAligner {
            reference,
            kmer_len,
            index_bits,
            memory,
        }
    }

    /// The reference being indexed.
    pub fn reference(&self) -> &Sequence {
        &self.reference
    }

    /// Qubits in the database register (`index + 2k`).
    pub fn qubit_count(&self) -> usize {
        self.memory.qubit_count()
    }

    /// Index (position) qubits.
    pub fn index_bits(&self) -> usize {
        self.index_bits
    }

    /// Number of stored entries (reference positions).
    pub fn entry_count(&self) -> usize {
        self.memory.patterns().len()
    }

    /// Aligns a read against the database, tolerating up to
    /// `max_mismatches` base substitutions.
    ///
    /// # Panics
    ///
    /// Panics if the read length differs from the aligner's k-mer length.
    pub fn align(&self, read: &Sequence, max_mismatches: usize) -> AlignmentOutcome {
        assert_eq!(
            read.len(),
            self.kmer_len,
            "read length must equal the k-mer length"
        );
        let query = read.encode();
        let k = self.kmer_len;
        let data_bits = 2 * k;
        let data_mask = (1u64 << data_bits) - 1;
        let oracle = move |entry: u64| base_hamming(entry & data_mask, query, k) <= max_mismatches;
        let matches = self
            .memory
            .patterns()
            .iter()
            .filter(|&&p| oracle(p))
            .count();
        let result = self.memory.recall(oracle, None);
        AlignmentOutcome {
            position: (result.recalled >> data_bits) as usize,
            success_probability: result.success_probability,
            iterations: result.iterations,
            matches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::best_hamming_search;
    use crate::reads::ReadGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reference() -> Sequence {
        Sequence::parse("ACGTGGCAATTCCGA").unwrap()
    }

    #[test]
    fn base_hamming_counts_bases_not_bits() {
        let a = Sequence::parse("ACGT").unwrap().encode();
        let b = Sequence::parse("ACTT").unwrap().encode(); // G->T differs in both bits
        assert_eq!(base_hamming(a, b, 4), 1);
        let c = Sequence::parse("TGCA").unwrap().encode();
        assert_eq!(base_hamming(a, c, 4), 4);
        assert_eq!(base_hamming(a, a, 4), 0);
    }

    #[test]
    fn database_stores_every_position() {
        let aligner = QuantumAligner::new(reference(), 4);
        assert_eq!(aligner.entry_count(), 12);
        assert_eq!(aligner.index_bits(), 4);
        assert_eq!(aligner.qubit_count(), 4 + 8);
    }

    #[test]
    fn exact_read_aligns_to_true_position() {
        let aligner = QuantumAligner::new(reference(), 4);
        for pos in [0usize, 3, 7, 11] {
            let read = reference().subsequence(pos, 4);
            let out = aligner.align(&read, 0);
            assert_eq!(out.position, pos, "read at {pos}");
            assert!(
                out.success_probability > 0.9,
                "p = {}",
                out.success_probability
            );
        }
    }

    #[test]
    fn corrupted_read_aligns_with_tolerance() {
        let mut rng = StdRng::seed_from_u64(12);
        let aligner = QuantumAligner::new(reference(), 5);
        let gen = ReadGenerator::new(5, 0.0);
        // Take a clean read and corrupt exactly one base.
        let clean = gen.sample_at(&reference(), 6, &mut rng);
        let mut bases: Vec<crate::dna::Base> = clean.bases.bases().to_vec();
        bases[2] = match bases[2] {
            crate::dna::Base::A => crate::dna::Base::C,
            _ => crate::dna::Base::A,
        };
        let corrupted: Sequence = bases.into_iter().collect();
        // Zero tolerance misses; tolerance 1 recovers the position.
        let strict = aligner.align(&corrupted, 0);
        let lax = aligner.align(&corrupted, 1);
        assert!(strict.matches == 0 || strict.position != 6 || lax.matches >= 1);
        assert_eq!(lax.position, 6);
        assert!(lax.success_probability > 0.8);
    }

    #[test]
    fn agrees_with_classical_baseline() {
        let mut rng = StdRng::seed_from_u64(13);
        let reference = crate::dna::MarkovModel::uniform(1).generate(28, &mut rng);
        let aligner = QuantumAligner::new(reference.clone(), 5);
        let gen = ReadGenerator::new(5, 0.0);
        for _ in 0..10 {
            let read = gen.sample(&reference, &mut rng);
            let classical = best_hamming_search(&reference, &read.bases);
            let quantum = aligner.align(&read.bases, 0);
            assert!(
                classical.positions.contains(&quantum.position),
                "quantum {} vs classical {:?}",
                quantum.position,
                classical.positions
            );
        }
    }

    #[test]
    fn iterations_scale_with_sqrt_of_database() {
        let mut rng = StdRng::seed_from_u64(14);
        let small_ref = crate::dna::MarkovModel::uniform(0).generate(12, &mut rng);
        let large_ref = crate::dna::MarkovModel::uniform(0).generate(40, &mut rng);
        let small = QuantumAligner::new(small_ref.clone(), 4);
        let large = QuantumAligner::new(large_ref.clone(), 4);
        let read_s = small_ref.subsequence(2, 4);
        let read_l = large_ref.subsequence(2, 4);
        let out_s = small.align(&read_s, 0);
        let out_l = large.align(&read_l, 0);
        // Iterations grow sublinearly with entries (sqrt shape).
        let ratio_entries = large.entry_count() as f64 / small.entry_count() as f64;
        let ratio_iters = out_l.iterations.max(1) as f64 / out_s.iterations.max(1) as f64;
        assert!(
            ratio_iters < ratio_entries,
            "iterations {ratio_iters}x vs entries {ratio_entries}x"
        );
    }

    #[test]
    #[should_panic(expected = "read length")]
    fn wrong_read_length_rejected() {
        let aligner = QuantumAligner::new(reference(), 4);
        let _ = aligner.align(&Sequence::parse("ACGTA").unwrap(), 0);
    }
}
