//! Classical alignment baselines.
//!
//! The paper motivates quantum search by the cost of classical
//! unstructured search over the read/reference space ("1000s of CPU hours"
//! for one human genome, §2.3). These are the honest classical comparators:
//! exact scanning and best-Hamming-distance scanning, instrumented with
//! comparison counts so the experiment harness can report work, not just
//! wall-clock.

use crate::dna::Sequence;

/// Result of a classical alignment query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalAlignment {
    /// Best matching position(s) in the reference.
    pub positions: Vec<usize>,
    /// Hamming distance of the best match.
    pub distance: usize,
    /// Number of base comparisons performed (the work metric).
    pub comparisons: u64,
}

/// Finds all positions where `pattern` occurs exactly in `reference`.
pub fn exact_search(reference: &Sequence, pattern: &Sequence) -> ClassicalAlignment {
    let n = reference.len();
    let m = pattern.len();
    let mut positions = Vec::new();
    let mut comparisons = 0u64;
    if m == 0 || m > n {
        return ClassicalAlignment {
            positions,
            distance: 0,
            comparisons,
        };
    }
    let rb = reference.bases();
    let pb = pattern.bases();
    for start in 0..=n - m {
        let mut matched = true;
        for (k, p) in pb.iter().enumerate() {
            comparisons += 1;
            if rb[start + k] != *p {
                matched = false;
                break;
            }
        }
        if matched {
            positions.push(start);
        }
    }
    ClassicalAlignment {
        positions,
        distance: 0,
        comparisons,
    }
}

/// Finds the position(s) of minimum Hamming distance (approximate
/// matching: the classical analogue of the paper's error-tolerant
/// alignment).
pub fn best_hamming_search(reference: &Sequence, pattern: &Sequence) -> ClassicalAlignment {
    let n = reference.len();
    let m = pattern.len();
    let mut best = usize::MAX;
    let mut positions = Vec::new();
    let mut comparisons = 0u64;
    if m == 0 || m > n {
        return ClassicalAlignment {
            positions,
            distance: 0,
            comparisons,
        };
    }
    let rb = reference.bases();
    let pb = pattern.bases();
    for start in 0..=n - m {
        let mut dist = 0usize;
        for (k, p) in pb.iter().enumerate() {
            comparisons += 1;
            if rb[start + k] != *p {
                dist += 1;
                if dist > best {
                    break; // early abandon
                }
            }
        }
        match dist.cmp(&best) {
            std::cmp::Ordering::Less => {
                best = dist;
                positions.clear();
                positions.push(start);
            }
            std::cmp::Ordering::Equal => positions.push(start),
            std::cmp::Ordering::Greater => {}
        }
    }
    ClassicalAlignment {
        positions,
        distance: best,
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> Sequence {
        Sequence::parse("ACGTACGTGGCCAATT").unwrap()
    }

    #[test]
    fn exact_finds_all_occurrences() {
        let r = exact_search(&reference(), &Sequence::parse("ACGT").unwrap());
        assert_eq!(r.positions, vec![0, 4]);
        assert!(r.comparisons > 0);
    }

    #[test]
    fn exact_miss_returns_empty() {
        let r = exact_search(&reference(), &Sequence::parse("TTTT").unwrap());
        assert!(r.positions.is_empty());
    }

    #[test]
    fn hamming_finds_best_despite_error() {
        // "ACGA" is distance 1 from "ACGT" at 0 and 4.
        let r = best_hamming_search(&reference(), &Sequence::parse("ACGA").unwrap());
        assert_eq!(r.distance, 1);
        assert_eq!(r.positions, vec![0, 4]);
    }

    #[test]
    fn hamming_distance_zero_for_exact() {
        let r = best_hamming_search(&reference(), &Sequence::parse("GGCC").unwrap());
        assert_eq!(r.distance, 0);
        assert_eq!(r.positions, vec![8]);
    }

    #[test]
    fn comparison_count_scales_linearly() {
        let small = Sequence::parse("ACGTACGT").unwrap();
        let big: Sequence = std::iter::repeat_n(small.bases().iter().copied(), 8)
            .flatten()
            .collect();
        let p = Sequence::parse("TTTT").unwrap();
        let c_small = exact_search(&small, &p).comparisons;
        let c_big = exact_search(&big, &p).comparisons;
        assert!(
            c_big > c_small * 4,
            "work should grow with reference size: {c_small} -> {c_big}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let r = exact_search(&reference(), &Sequence::new());
        assert!(r.positions.is_empty());
        let long = Sequence::parse("ACGTACGTGGCCAATTACGTACGTACGT").unwrap();
        let r = exact_search(&reference(), &long);
        assert!(r.positions.is_empty());
    }
}
