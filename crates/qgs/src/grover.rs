//! Grover search: the quantum search primitive of the genome accelerator.
//!
//! §2.3 of the paper: "the quantum search primitive (Grover's search)
//! itself is provably optimal over any other classical or quantum
//! unstructured search algorithm", with a quadratic speedup in query count
//! that matters at genomic scale. Two implementations:
//!
//! - [`grover_search`]: a state-level implementation (phase oracle plus
//!   inversion-about-the-mean), scaling to ~20 qubits;
//! - [`grover_circuit`]: a gate-level cQASM construction (X-conjugated
//!   multi-controlled Z oracle and diffuser) that exercises the compiler
//!   and micro-architecture path for small registers.

use cqasm::math::C64;
use cqasm::{GateKind, Program, Qubit};
use qxsim::StateVector;

/// The optimal Grover iteration count for `marked` solutions among
/// `2^n_qubits` items: `floor(pi/4 * sqrt(N/M))`.
pub fn optimal_iterations(n_qubits: usize, marked: usize) -> usize {
    if marked == 0 {
        return 0;
    }
    let n = (1u64 << n_qubits) as f64;
    ((std::f64::consts::FRAC_PI_4) * (n / marked as f64).sqrt()).floor() as usize
}

/// Result of a state-level Grover run.
#[derive(Debug, Clone)]
pub struct GroverResult {
    /// The final state (before measurement).
    pub state: StateVector,
    /// Iterations applied.
    pub iterations: usize,
    /// Total probability mass on marked items.
    pub success_probability: f64,
}

/// Runs Grover search over `n_qubits` with the given oracle predicate,
/// for `iterations` rounds (use [`optimal_iterations`] for the optimum).
///
/// The register starts in the uniform superposition; each round applies
/// the phase oracle and the inversion about the mean.
pub fn grover_search<F: Fn(u64) -> bool>(
    n_qubits: usize,
    oracle: F,
    iterations: usize,
) -> GroverResult {
    let mut state = StateVector::zero_state(n_qubits);
    for q in 0..n_qubits {
        state.apply_gate(&GateKind::H, &[q]);
    }
    for _ in 0..iterations {
        state.apply_phase_if(C64::real(-1.0), &oracle);
        invert_about_mean(&mut state);
    }
    let success_probability = state
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| oracle(*i as u64))
        .map(|(_, a)| a.norm_sqr())
        .sum();
    GroverResult {
        state,
        iterations,
        success_probability,
    }
}

/// The diffusion operator `2|s><s| - I` applied exactly.
fn invert_about_mean(state: &mut StateVector) {
    let amps = state.amplitudes();
    let mut mean = C64::ZERO;
    for a in amps {
        mean += *a;
    }
    let inv_n = 1.0 / amps.len() as f64;
    mean = mean * inv_n;
    let new: Vec<C64> = amps.iter().map(|a| mean * 2.0 - *a).collect();
    // new is unitary image of a normalised state; renormalisation inside
    // from_amplitudes only corrects floating-point drift.
    *state = StateVector::from_amplitudes(new);
}

/// Builds a gate-level Grover circuit marking the single basis state
/// `target`, with the optimal number of iterations, as a cQASM program
/// ending in `measure_all`.
///
/// Supports up to 3 qubits (the multi-controlled Z is built from CZ and
/// H-conjugated Toffoli).
///
/// # Panics
///
/// Panics if `n_qubits` is 0 or greater than 3, or `target >= 2^n`.
pub fn grover_circuit(n_qubits: usize, target: u64) -> Program {
    assert!(
        (1..=3).contains(&n_qubits),
        "circuit form supports 1-3 qubits"
    );
    assert!(target < (1 << n_qubits), "target out of range");
    let mut p = Program::new(n_qubits);
    let mut sub = cqasm::Subcircuit::new("init");
    for q in 0..n_qubits {
        sub.push(cqasm::Instruction::gate(GateKind::H, &[q]));
    }
    p.push_subcircuit(sub);

    let iters = optimal_iterations(n_qubits, 1).max(1);
    let mut body = cqasm::Subcircuit::with_iterations("grover_iteration", iters as u64);
    // Oracle: X-conjugate the zero bits of `target`, apply C^{n-1}Z, undo.
    let zero_bits: Vec<usize> = (0..n_qubits).filter(|q| (target >> q) & 1 == 0).collect();
    for &q in &zero_bits {
        body.push(cqasm::Instruction::gate(GateKind::X, &[q]));
    }
    push_controlled_z(&mut body, n_qubits);
    for &q in &zero_bits {
        body.push(cqasm::Instruction::gate(GateKind::X, &[q]));
    }
    // Diffuser: H^n X^n (C^{n-1}Z) X^n H^n.
    for q in 0..n_qubits {
        body.push(cqasm::Instruction::gate(GateKind::H, &[q]));
        body.push(cqasm::Instruction::gate(GateKind::X, &[q]));
    }
    push_controlled_z(&mut body, n_qubits);
    for q in 0..n_qubits {
        body.push(cqasm::Instruction::gate(GateKind::X, &[q]));
        body.push(cqasm::Instruction::gate(GateKind::H, &[q]));
    }
    p.push_subcircuit(body);

    let mut fin = cqasm::Subcircuit::new("readout");
    fin.push(cqasm::Instruction::MeasureAll);
    p.push_subcircuit(fin);
    p
}

/// Appends a Z controlled on all other qubits (C^{n-1}Z) for n = 1..=3.
fn push_controlled_z(sub: &mut cqasm::Subcircuit, n_qubits: usize) {
    match n_qubits {
        1 => sub.push(cqasm::Instruction::gate(GateKind::Z, &[0])),
        2 => sub.push(cqasm::Instruction::gate(GateKind::Cz, &[0, 1])),
        3 => {
            // CCZ = H(2) CCX(0,1,2) H(2).
            sub.push(cqasm::Instruction::gate(GateKind::H, &[2]));
            sub.push(cqasm::Instruction::Gate(cqasm::GateApp::new(
                GateKind::Toffoli,
                vec![Qubit(0), Qubit(1), Qubit(2)],
            )));
            sub.push(cqasm::Instruction::gate(GateKind::H, &[2]));
        }
        other => unreachable!("unsupported register size {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxsim::Simulator;

    #[test]
    fn optimal_iteration_counts() {
        assert_eq!(optimal_iterations(2, 1), 1);
        assert_eq!(optimal_iterations(4, 1), 3);
        assert_eq!(optimal_iterations(10, 1), 25);
        assert_eq!(optimal_iterations(10, 4), 12);
        assert_eq!(optimal_iterations(10, 0), 0);
    }

    #[test]
    fn single_marked_item_amplifies_to_near_certainty() {
        for n in 3..=8 {
            let target = (1u64 << n) - 2;
            let r = grover_search(n, |x| x == target, optimal_iterations(n, 1));
            assert!(
                r.success_probability > 0.9,
                "n={n}: success {}",
                r.success_probability
            );
        }
    }

    #[test]
    fn quadratic_scaling_of_iterations() {
        // 4x the database -> 2x the iterations.
        let i8 = optimal_iterations(8, 1) as f64;
        let i10 = optimal_iterations(10, 1) as f64;
        assert!((i10 / i8 - 2.0).abs() < 0.1, "ratio {}", i10 / i8);
    }

    #[test]
    fn overshooting_reduces_success() {
        let n = 6;
        let target = 5u64;
        let opt = optimal_iterations(n, 1);
        let at_opt = grover_search(n, |x| x == target, opt).success_probability;
        let over = grover_search(n, |x| x == target, opt * 2).success_probability;
        assert!(at_opt > over, "optimal {at_opt} vs overshoot {over}");
    }

    #[test]
    fn multiple_marked_items() {
        let n = 8;
        let marked = [3u64, 77, 200, 255];
        let r = grover_search(
            n,
            |x| marked.contains(&x),
            optimal_iterations(n, marked.len()),
        );
        assert!(r.success_probability > 0.9, "{}", r.success_probability);
        // Mass is spread across the marked set.
        for &m in &marked {
            assert!(r.state.probability_of(m) > 0.15);
        }
    }

    #[test]
    fn zero_iterations_is_uniform() {
        let r = grover_search(4, |x| x == 7, 0);
        assert!((r.success_probability - 1.0 / 16.0).abs() < 1e-10);
    }

    #[test]
    fn circuit_form_matches_state_form_two_qubits() {
        for target in 0..4u64 {
            let p = grover_circuit(2, target);
            let hist = Simulator::perfect().run_shots(&p, 200).unwrap();
            // 2-qubit Grover with one iteration is exact.
            assert_eq!(
                hist.count(target),
                200,
                "target {target} not certain: {hist}"
            );
        }
    }

    #[test]
    fn circuit_form_three_qubits_amplifies_target() {
        let target = 0b101u64;
        let p = grover_circuit(3, target);
        let hist = Simulator::perfect().run_shots(&p, 400).unwrap();
        let frac = hist.probability(target);
        // Theoretical success after 2 iterations on 8 items: ~0.945.
        assert!(frac > 0.85, "target frequency {frac}");
    }

    #[test]
    fn circuit_survives_compilation() {
        use openql::{Compiler, Platform};
        let p = grover_circuit(3, 0b110);
        let out = Compiler::new(Platform::perfect(3))
            .compile_cqasm(&p)
            .expect("compiles");
        let hist = Simulator::perfect().run_shots(&out.program, 300).unwrap();
        assert!(hist.probability(0b110) > 0.85);
    }
}
