//! Sequencing-read simulation.
//!
//! Sequencing machines emit short reads with per-base error rates; the
//! paper's alignment algorithm explicitly "considers inherent read errors
//! in the sequence, incorporating the requirement for approximate optimal
//! matching" (§3.2). This module generates reads with known ground truth.

use crate::dna::{Base, Sequence};
use rand::Rng;

/// A simulated read: the (possibly corrupted) bases plus ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Read {
    /// The read content as it leaves the sequencer.
    pub bases: Sequence,
    /// True position in the reference it was drawn from.
    pub true_position: usize,
    /// Number of substitution errors introduced.
    pub errors: usize,
}

/// Generates reads from a reference with substitution errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadGenerator {
    /// Read length in bases.
    pub read_len: usize,
    /// Per-base substitution probability.
    pub error_rate: f64,
}

impl ReadGenerator {
    /// Creates a generator.
    pub fn new(read_len: usize, error_rate: f64) -> Self {
        ReadGenerator {
            read_len,
            error_rate,
        }
    }

    /// Samples one read from a uniformly random reference position.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than the read length.
    pub fn sample<R: Rng + ?Sized>(&self, reference: &Sequence, rng: &mut R) -> Read {
        assert!(
            reference.len() >= self.read_len,
            "reference shorter than read length"
        );
        let position = rng.gen_range(0..=reference.len() - self.read_len);
        self.sample_at(reference, position, rng)
    }

    /// Samples a read from a fixed position (substitutions still random).
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the reference.
    pub fn sample_at<R: Rng + ?Sized>(
        &self,
        reference: &Sequence,
        position: usize,
        rng: &mut R,
    ) -> Read {
        let mut bases = reference.subsequence(position, self.read_len);
        let mut errors = 0;
        let original = bases.clone();
        let mut corrupted: Vec<Base> = original.bases().to_vec();
        for b in corrupted.iter_mut() {
            if rng.gen_bool(self.error_rate) {
                // Substitute with a *different* base.
                let mut nb = *b;
                while nb == *b {
                    nb = Base::from_bits(rng.gen_range(0..4));
                }
                *b = nb;
                errors += 1;
            }
        }
        bases = corrupted.into_iter().collect();
        Read {
            bases,
            true_position: position,
            errors,
        }
    }

    /// Samples a batch of reads.
    pub fn sample_batch<R: Rng + ?Sized>(
        &self,
        reference: &Sequence,
        count: usize,
        rng: &mut R,
    ) -> Vec<Read> {
        (0..count).map(|_| self.sample(reference, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reference() -> Sequence {
        Sequence::parse("ACGTACGTGGCCAATTACGT").unwrap()
    }

    #[test]
    fn error_free_reads_match_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = ReadGenerator::new(5, 0.0);
        for _ in 0..20 {
            let r = g.sample(&reference(), &mut rng);
            assert_eq!(r.errors, 0);
            assert_eq!(
                r.bases,
                reference().subsequence(r.true_position, 5),
                "read must match its source window"
            );
        }
    }

    #[test]
    fn error_rate_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = ReadGenerator::new(10, 0.2);
        let total_errors: usize = g
            .sample_batch(&reference(), 500, &mut rng)
            .iter()
            .map(|r| r.errors)
            .sum();
        let rate = total_errors as f64 / 5000.0;
        assert!((rate - 0.2).abs() < 0.03, "observed error rate {rate}");
    }

    #[test]
    fn errors_equal_hamming_distance_to_source() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = ReadGenerator::new(8, 0.3);
        for _ in 0..50 {
            let r = g.sample(&reference(), &mut rng);
            let source = reference().subsequence(r.true_position, 8);
            assert_eq!(r.bases.hamming(&source), r.errors);
        }
    }

    #[test]
    fn fixed_position_sampling() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = ReadGenerator::new(4, 0.0);
        let r = g.sample_at(&reference(), 3, &mut rng);
        assert_eq!(r.true_position, 3);
        assert_eq!(r.bases.to_string(), "TACG");
    }

    #[test]
    #[should_panic(expected = "shorter than read length")]
    fn oversized_read_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = ReadGenerator::new(100, 0.0).sample(&reference(), &mut rng);
    }
}
