//! De novo genome assembly as combinatorial optimisation.
//!
//! §3.2 of the paper: reconstruction "can either be carried out by
//! aligning these reads to an already available reference genome, or in a
//! *de novo* assembly manner. This requires the algorithmic primitive of
//! searching an unstructured database or **graph-based combinatorial
//! optimisation** respectively."
//!
//! This module implements the second primitive: reads form an overlap
//! graph; the assembly order is the maximum-overlap Hamiltonian path;
//! and that path problem is encoded as a QUBO solvable on the annealing
//! accelerator — the same machinery as the TSP stack, pointed at genomics.

use crate::dna::Sequence;
use annealer::{spins_to_bits, Qubo, Sampler};

/// Pairwise suffix–prefix overlap graph over a read set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapGraph {
    reads: Vec<Sequence>,
    /// `overlaps[i][j]`: longest suffix of read i equal to a prefix of
    /// read j (i != j).
    overlaps: Vec<Vec<usize>>,
}

impl OverlapGraph {
    /// Builds the graph; overlaps shorter than `min_overlap` count as 0.
    pub fn build(reads: &[Sequence], min_overlap: usize) -> Self {
        let n = reads.len();
        let mut overlaps = vec![vec![0usize; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let o = suffix_prefix_overlap(&reads[i], &reads[j]);
                if o >= min_overlap {
                    overlaps[i][j] = o;
                }
            }
        }
        OverlapGraph {
            reads: reads.to_vec(),
            overlaps,
        }
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Whether the graph has no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// The reads.
    pub fn reads(&self) -> &[Sequence] {
        &self.reads
    }

    /// Overlap length of the ordered pair `(i, j)`.
    pub fn overlap(&self, i: usize, j: usize) -> usize {
        self.overlaps[i][j]
    }

    /// Merges reads along an ordering into a contig.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the reads.
    pub fn merge_path(&self, order: &[usize]) -> Sequence {
        assert_eq!(order.len(), self.len(), "order must cover every read");
        let mut contig = self.reads[order[0]].clone();
        for w in order.windows(2) {
            let o = self.overlaps[w[0]][w[1]];
            let next = &self.reads[w[1]];
            for &b in &next.bases()[o..] {
                contig.push(b);
            }
        }
        contig
    }

    /// Total overlap along an ordering (the objective to maximise).
    pub fn path_overlap(&self, order: &[usize]) -> usize {
        order.windows(2).map(|w| self.overlaps[w[0]][w[1]]).sum()
    }

    /// Greedy classical assembly: repeatedly merge the highest-overlap
    /// pair. Returns the read ordering.
    #[allow(clippy::needless_range_loop)] // symmetric (i, j) scan
    pub fn greedy_order(&self) -> Vec<usize> {
        let n = self.len();
        // Each fragment chain is tracked by its head and tail read.
        let mut next: Vec<Option<usize>> = vec![None; n];
        let mut has_pred = vec![false; n];
        let mut merged_pairs = 0;
        while merged_pairs + 1 < n {
            // Best (i, j): i is a chain tail (no successor), j a chain
            // head (no predecessor), i and j in different chains.
            let mut best: Option<(usize, usize, usize)> = None;
            for i in 0..n {
                if next[i].is_some() {
                    continue;
                }
                for j in 0..n {
                    if i == j || has_pred[j] {
                        continue;
                    }
                    // Avoid closing a cycle: walk from j's chain end.
                    if chain_tail(&next, j) == i {
                        continue;
                    }
                    let o = self.overlaps[i][j];
                    if best.is_none_or(|(_, _, bo)| o > bo) {
                        best = Some((i, j, o));
                    }
                }
            }
            let Some((i, j, _)) = best else { break };
            next[i] = Some(j);
            has_pred[j] = true;
            merged_pairs += 1;
        }
        // Emit the chain from its head.
        let Some(head) = (0..n).find(|&r| !has_pred[r]) else {
            return Vec::new(); // n == 0: nothing to order
        };
        let mut order = vec![head];
        let mut cur = head;
        while let Some(nx) = next[cur] {
            order.push(nx);
            cur = nx;
        }
        // Any disconnected leftovers (shouldn't happen with full merge).
        for r in 0..n {
            if !order.contains(&r) {
                order.push(r);
            }
        }
        order
    }

    /// Encodes the maximum-overlap Hamiltonian *path* as a QUBO over
    /// `n^2` variables `x[read][slot]` (same constraint families as the
    /// TSP encoding, §3.3, minus the cyclic closing edge; overlaps enter
    /// as rewards).
    pub fn to_qubo(&self, penalty: f64) -> Qubo {
        let n = self.len();
        let var = |read: usize, slot: usize| read * n + slot;
        let mut q = Qubo::new(n * n);
        for read in 0..n {
            for s1 in 0..n {
                q.add(var(read, s1), var(read, s1), -penalty);
                for s2 in s1 + 1..n {
                    q.add(var(read, s1), var(read, s2), 2.0 * penalty);
                }
            }
        }
        for slot in 0..n {
            for r1 in 0..n {
                q.add(var(r1, slot), var(r1, slot), -penalty);
                for r2 in r1 + 1..n {
                    q.add(var(r1, slot), var(r2, slot), 2.0 * penalty);
                }
            }
        }
        // Reward consecutive overlaps (negative weight = preferred).
        for slot in 0..n - 1 {
            for r1 in 0..n {
                for r2 in 0..n {
                    if r1 == r2 {
                        continue;
                    }
                    let o = self.overlaps[r1][r2] as f64;
                    if o > 0.0 {
                        q.add(var(r1, slot), var(r2, slot + 1), -o);
                    }
                }
            }
        }
        q
    }

    /// A penalty dominating any overlap reward.
    pub fn default_penalty(&self) -> f64 {
        let max_o = self.overlaps.iter().flatten().copied().max().unwrap_or(0) as f64;
        max_o * self.len() as f64 + 1.0
    }

    /// Decodes a QUBO assignment into a read ordering, if feasible.
    pub fn decode(&self, bits: &[bool]) -> Option<Vec<usize>> {
        let n = self.len();
        if bits.len() != n * n {
            return None;
        }
        let mut order = vec![usize::MAX; n];
        for slot in 0..n {
            let mut found = None;
            for read in 0..n {
                if bits[read * n + slot] {
                    if found.is_some() {
                        return None;
                    }
                    found = Some(read);
                }
            }
            order[slot] = found?;
        }
        let mut seen = vec![false; n];
        for &r in &order {
            if seen[r] {
                return None;
            }
            seen[r] = true;
        }
        Some(order)
    }

    /// Assembles via the annealing accelerator: QUBO → sampler → best
    /// feasible ordering → contig. Returns `None` if no read decodes.
    pub fn assemble_with<S: Sampler + ?Sized>(
        &self,
        sampler: &S,
        reads_budget: u64,
    ) -> Option<(Vec<usize>, Sequence)> {
        let q = self.to_qubo(self.default_penalty());
        let (ising, _offset) = q.to_ising();
        let samples = sampler.sample(&ising, reads_budget);
        let mut best: Option<(Vec<usize>, usize)> = None;
        for s in samples.iter() {
            let bits = spins_to_bits(&s.spins);
            if let Some(order) = self.decode(&bits) {
                let score = self.path_overlap(&order);
                if best.as_ref().is_none_or(|(_, b)| score > *b) {
                    best = Some((order, score));
                }
            }
        }
        best.map(|(order, _)| {
            let contig = self.merge_path(&order);
            (order, contig)
        })
    }
}

fn chain_tail(next: &[Option<usize>], mut from: usize) -> usize {
    while let Some(n) = next[from] {
        from = n;
    }
    from
}

/// Longest suffix of `a` equal to a prefix of `b` (strictly shorter than
/// either read).
pub fn suffix_prefix_overlap(a: &Sequence, b: &Sequence) -> usize {
    let max = a.len().min(b.len()).saturating_sub(1);
    for len in (1..=max).rev() {
        if a.bases()[a.len() - len..] == b.bases()[..len] {
            return len;
        }
    }
    0
}

/// Fragments a sequence into overlapping reads of `read_len` with step
/// `stride` (test/workload helper mirroring an idealised sequencer).
pub fn fragment(reference: &Sequence, read_len: usize, stride: usize) -> Vec<Sequence> {
    let mut reads = Vec::new();
    let mut pos = 0;
    while pos + read_len <= reference.len() {
        reads.push(reference.subsequence(pos, read_len));
        if pos + read_len == reference.len() {
            break;
        }
        pos = (pos + stride).min(reference.len() - read_len);
    }
    reads
}

#[cfg(test)]
mod tests {
    use super::*;
    use annealer::SimulatedAnnealer;

    fn reference() -> Sequence {
        Sequence::parse("ACGTGGCAATTCC").unwrap()
    }

    #[test]
    fn overlap_computation() {
        let a = Sequence::parse("ACGTG").unwrap();
        let b = Sequence::parse("GTGCA").unwrap();
        assert_eq!(suffix_prefix_overlap(&a, &b), 3);
        assert_eq!(suffix_prefix_overlap(&b, &a), 1);
        let c = Sequence::parse("TTTTT").unwrap();
        assert_eq!(suffix_prefix_overlap(&a, &c), 0);
    }

    #[test]
    fn fragmentation_covers_the_reference() {
        let reads = fragment(&reference(), 6, 3);
        assert!(reads.len() >= 3);
        assert_eq!(reads[0].to_string(), "ACGTGG");
        // Last read ends exactly at the reference end.
        assert_eq!(
            reads.last().unwrap().bases(),
            &reference().bases()[reference().len() - 6..]
        );
    }

    #[test]
    fn greedy_assembly_reconstructs_the_reference() {
        let reads = fragment(&reference(), 6, 3);
        let graph = OverlapGraph::build(&reads, 2);
        let order = graph.greedy_order();
        let contig = graph.merge_path(&order);
        assert_eq!(contig, reference());
    }

    #[test]
    fn qubo_assembly_reconstructs_the_reference() {
        let reads = fragment(&reference(), 6, 3);
        let graph = OverlapGraph::build(&reads, 2);
        let sampler = SimulatedAnnealer::new().with_seed(8);
        let (order, contig) = graph
            .assemble_with(&sampler, 40)
            .expect("a feasible ordering");
        assert_eq!(contig, reference(), "order {order:?}");
    }

    #[test]
    fn qubo_optimum_is_the_max_overlap_path() {
        let reads = fragment(&reference(), 6, 4);
        let graph = OverlapGraph::build(&reads, 1);
        let q = graph.to_qubo(graph.default_penalty());
        let (bits, _) = q.brute_force_minimum();
        let order = graph.decode(&bits).expect("minimum is feasible");
        // Compare with exhaustive best path.
        let n = graph.len();
        let mut best = 0;
        let mut perm: Vec<usize> = (0..n).collect();
        permute_all(&mut perm, 0, &mut |p| {
            best = best.max(graph.path_overlap(p));
        });
        assert_eq!(graph.path_overlap(&order), best);
    }

    fn permute_all<F: FnMut(&[usize])>(items: &mut Vec<usize>, k: usize, f: &mut F) {
        if k == items.len() {
            f(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute_all(items, k + 1, f);
            items.swap(k, i);
        }
    }

    #[test]
    fn decode_rejects_infeasible() {
        let reads = fragment(&reference(), 6, 3);
        let graph = OverlapGraph::build(&reads, 2);
        let n = graph.len();
        assert!(graph.decode(&vec![false; n * n]).is_none());
        assert!(graph.decode(&vec![true; n * n]).is_none());
    }

    #[test]
    fn merge_path_without_overlap_concatenates() {
        let reads = vec![
            Sequence::parse("AAAA").unwrap(),
            Sequence::parse("CCCC").unwrap(),
        ];
        let graph = OverlapGraph::build(&reads, 1);
        let contig = graph.merge_path(&[0, 1]);
        assert_eq!(contig.to_string(), "AAAACCCC");
    }
}
