//! Offline vendored subset of the `criterion` 0.5 benchmarking API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of criterion the workspace's benches compile against: `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `BenchmarkId`,
//! `Throughput`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timing is a simple best-of-N wall-clock measurement (no statistical
//! analysis, outlier rejection, or HTML reports). Results print one line per
//! benchmark:
//!
//! ```text
//! qx_single_gate/16       time: 183.42 µs
//! ```

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. All variants behave identically
/// in this shim (every iteration runs its setup outside the timed section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declared throughput of one benchmark iteration (recorded, not analysed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; the shim equivalent of criterion's `Bencher`.
pub struct Bencher {
    samples: usize,
    best: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            best: Duration::MAX,
        }
    }

    /// Times `routine`, keeping the best sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            let dt = t.elapsed();
            if dt < self.best {
                self.best = dt;
            }
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let dt = t.elapsed();
            if dt < self.best {
                self.best = dt;
            }
        }
    }
}

fn print_result(name: &str, best: Duration) {
    let s = best.as_secs_f64();
    let human = if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    };
    println!("{name:<40} time: {human}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the throughput of subsequent benchmarks (recorded only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count for this group (accepted, unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        print_result(&format!("{}/{}", self.name, id), b.best);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        print_result(&format!("{}/{}", self.name, id), b.best);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        print_result(name, b.best);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
///
/// Supports both the simple form `criterion_group!(name, target1, target2)`
/// and the configured form
/// `criterion_group! { name = n; config = expr; targets = t1, t2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::LargeInput);
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn group_macro_and_driver_run() {
        benches();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
        assert_eq!(BenchmarkId::new("f", 2).to_string(), "f/2");
    }
}
