//! The content-addressed compiled-artifact cache.
//!
//! Keys are FNV-1a hashes of everything that determines the compiled
//! artifact: the canonical cQASM text, the platform configuration, the
//! compiler options and the qubit model (the qxsim plan bakes in the
//! model's idle structure, so a model change must miss). Values are
//! `Arc`-shared so a cache hit hands every worker the same compiled plan
//! with no copying; eviction drops the cache's reference while in-flight
//! runs keep theirs.

use crate::hash::Fnv64;
use crate::snapshot::{self, SnapshotEntry};
use openql::{CompileReport, CompilerOptions, Mapping, Platform};
use qca_core::QubitKind;
use qca_telemetry::Telemetry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Everything compilation produced for one (circuit, platform, options,
/// model) key — shared read-only between workers and across requests.
#[derive(Debug)]
pub struct CompiledArtifact {
    /// The compiled, scheduled cQASM program.
    pub cqasm: cqasm::Program,
    /// The OpenQL pass report.
    pub report: CompileReport,
    /// Final logical→physical mapping, when routing ran.
    pub final_mapping: Option<Mapping>,
    /// The lowered qxsim execution plan, replayed per shot.
    pub plan: qxsim::CompiledProgram,
    /// The canonical cQASM source this artifact was compiled from —
    /// what cache snapshots persist (recompiling the source reproduces
    /// the plan bit-for-bit).
    pub source: String,
    /// The qubit model the plan was lowered for.
    pub qubits: QubitKind,
}

/// Computes the content address of a job's compiled artifact.
///
/// `canonical_text` must be the *canonical* form (parse → `Display`), so
/// formatting differences between submissions of the same circuit still
/// hit the same entry.
pub fn artifact_key(
    canonical_text: &str,
    platform: &Platform,
    options: &CompilerOptions,
    qubits: &QubitKind,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_field(canonical_text);
    h.write_field(&format!("{platform:?}"));
    h.write_field(&format!("{options:?}"));
    h.write_field(&format!("{qubits:?}"));
    h.finish()
}

/// Cache hit/miss/eviction counters (monotonic over the cache lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an artifact.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts evicted to stay within capacity.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: usize,
    /// Maximum resident artifacts.
    pub capacity: usize,
}

struct CacheState {
    entries: HashMap<u64, (Arc<CompiledArtifact>, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded LRU cache of compiled artifacts, safe to share between
/// worker threads.
pub struct PlanCache {
    state: Mutex<CacheState>,
    capacity: usize,
    telemetry: Telemetry,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanCache {
    /// An empty cache holding at most `capacity` artifacts (minimum 1).
    pub fn new(capacity: usize, telemetry: Telemetry) -> Self {
        PlanCache {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
            telemetry,
        }
    }

    /// Looks up an artifact, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<CompiledArtifact>> {
        let mut state = self.lock();
        state.clock += 1;
        let clock = state.clock;
        let found = state.entries.get_mut(&key).map(|(artifact, stamp)| {
            *stamp = clock;
            Arc::clone(artifact)
        });
        match found {
            Some(found) => {
                state.hits += 1;
                drop(state);
                self.telemetry.incr("service.cache.hit", 1);
                Some(found)
            }
            None => {
                state.misses += 1;
                drop(state);
                self.telemetry.incr("service.cache.miss", 1);
                None
            }
        }
    }

    /// Inserts an artifact, evicting the least-recently-used entry if the
    /// cache is full. Re-inserting an existing key refreshes it in place
    /// (the race where two workers compile the same miss concurrently is
    /// benign: both produce identical artifacts).
    pub fn insert(&self, key: u64, artifact: Arc<CompiledArtifact>) {
        let mut evicted = 0u64;
        {
            let mut state = self.lock();
            state.clock += 1;
            let clock = state.clock;
            if !state.entries.contains_key(&key) && state.entries.len() >= self.capacity {
                if let Some(lru) = state
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(k, _)| *k)
                {
                    state.entries.remove(&lru);
                    state.evictions += 1;
                    evicted = 1;
                }
            }
            state.entries.insert(key, (artifact, clock));
        }
        if evicted > 0 {
            self.telemetry.incr("service.cache.evict", evicted);
        }
    }

    /// Exports every resident artifact's source for an on-disk snapshot,
    /// least-recently-used first (so a reload that overflows capacity
    /// keeps the hottest entries). Returns the entries plus how many
    /// residents were skipped because their qubit model has no snapshot
    /// representation.
    pub fn export_entries(&self) -> (Vec<SnapshotEntry>, usize) {
        let state = self.lock();
        let mut by_stamp: Vec<(&u64, &(Arc<CompiledArtifact>, u64))> =
            state.entries.iter().collect();
        by_stamp.sort_by_key(|(_, (_, stamp))| *stamp);
        let mut skipped = 0usize;
        let entries = by_stamp
            .into_iter()
            .filter_map(|(key, (artifact, _))| {
                if snapshot::snapshot_representable(&artifact.qubits) {
                    Some(SnapshotEntry {
                        key: *key,
                        qubits: artifact.qubits,
                        source: artifact.source.clone(),
                    })
                } else {
                    skipped += 1;
                    None
                }
            })
            .collect();
        (entries, skipped)
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.lock();
        CacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            entries: state.entries.len(),
            capacity: self.capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // A poisoned lock means a worker panicked mid-update; cache state
        // is a plain map + counters, always internally consistent, so
        // recover the guard rather than propagating the panic.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxsim::Simulator;

    fn artifact(text: &str) -> Arc<CompiledArtifact> {
        let program = cqasm::Program::parse(text).unwrap();
        let canonical = program.to_string();
        let out = openql::Compiler::new(Platform::perfect(program.qubit_count()))
            .compile_cqasm(&program)
            .unwrap();
        let plan = Simulator::perfect().compile(&out.program).unwrap();
        Arc::new(CompiledArtifact {
            cqasm: out.program,
            report: out.report,
            final_mapping: out.final_mapping,
            plan,
            source: canonical,
            qubits: QubitKind::Perfect,
        })
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let cache = PlanCache::new(2, Telemetry::disabled());
        assert!(cache.get(1).is_none());
        cache.insert(1, artifact("qubits 1\nx q[0]\n"));
        cache.insert(2, artifact("qubits 1\nh q[0]\n"));
        assert!(cache.get(1).is_some());
        // Inserting a third entry evicts key 2 (key 1 was touched later).
        cache.insert(3, artifact("qubits 1\nz q[0]\n"));
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn key_depends_on_every_component() {
        let platform = Platform::perfect(2);
        let options = CompilerOptions::default();
        let qubits = QubitKind::Perfect;
        let base = artifact_key("qubits 2\nh q[0]\n", &platform, &options, &qubits);
        assert_ne!(
            base,
            artifact_key("qubits 2\nx q[0]\n", &platform, &options, &qubits),
            "text must change the key"
        );
        assert_ne!(
            base,
            artifact_key(
                "qubits 2\nh q[0]\n",
                &Platform::superconducting_grid(1, 2),
                &options,
                &qubits
            ),
            "platform must change the key"
        );
        let mut alap = options;
        alap.schedule = openql::ScheduleDirection::Alap;
        assert_ne!(
            base,
            artifact_key("qubits 2\nh q[0]\n", &platform, &alap, &qubits),
            "options must change the key"
        );
        assert_ne!(
            base,
            artifact_key(
                "qubits 2\nh q[0]\n",
                &platform,
                &options,
                &QubitKind::real_transmon()
            ),
            "qubit model must change the key"
        );
    }
}
