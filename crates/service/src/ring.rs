//! A lock-free bounded MPMC ring queue — the service's admission path.
//!
//! Design (Vyukov's bounded MPMC queue): a power-of-two array of slots,
//! each carrying a seqlock-style *stamp*, plus cache-line-padded `head`
//! (pop side) and `tail` (push side) tickets. A slot's stamp encodes
//! which lap of the ring it is in:
//!
//! - `stamp == ticket`      → the slot is free for the push holding
//!   `ticket`;
//! - `stamp == ticket + 1`  → the slot holds a value for the pop holding
//!   `ticket`;
//! - anything behind        → the queue is full (push) or empty (pop).
//!
//! A producer claims a ticket with one CAS on `tail`, writes the value,
//! then *publishes* by storing `ticket + 1` into the stamp (release). A
//! consumer claims with one CAS on `head`, reads the value after
//! observing the published stamp (acquire), then frees the slot for the
//! next lap by storing `ticket + capacity`. No operation ever blocks on
//! another thread's progress mid-slot: a slow producer only delays the
//! consumers of *its* slot, never the whole ring.
//!
//! Tickets are claimed in strict counter order, so items from one
//! producer are observed in that producer's push order (per-producer
//! FIFO); a full ring is a typed `Err` (backpressure, not buffering).
//!
//! Std-only: `AtomicUsize`, `UnsafeCell`, `MaybeUninit`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads (and aligns) a value to a cache line so the producer-side and
/// consumer-side tickets never share one — a false-sharing miss per
/// operation would serialise the very contention the ring removes.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// The seqlock-style lap stamp (see module docs).
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer multi-consumer queue.
///
/// ```
/// use qca_service::ring::Ring;
/// let ring: Ring<u32> = Ring::with_capacity(4);
/// assert!(ring.push(7).is_ok());
/// assert_eq!(ring.pop(), Some(7));
/// assert_eq!(ring.pop(), None);
/// ```
pub struct Ring<T> {
    slots: Box<[Slot<T>]>,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
    /// Pop ticket counter.
    head: CachePadded<AtomicUsize>,
    /// Push ticket counter.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: values move through the ring by ownership transfer; a slot is
// written by exactly one producer (the CAS winner for its ticket) and
// read by exactly one consumer, with release/acquire stamps ordering the
// hand-off. `T: Send` is required because values cross threads.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// A ring holding at least `capacity` items (rounded up to the next
    /// power of two, minimum 2). The actual bound is [`Ring::capacity`].
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..capacity)
            .map(|i| Slot {
                stamp: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            slots,
            mask: capacity - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Pushes a value, or returns it when the ring is full (typed
    /// backpressure — the caller decides whether to shed or retry).
    ///
    /// # Errors
    ///
    /// `Err(value)` when all slots are occupied.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut ticket = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[ticket & self.mask];
            let stamp = slot.stamp.load(Ordering::Acquire);
            let lag = stamp.wrapping_sub(ticket) as isize;
            if lag == 0 {
                // The slot is free for this ticket: claim it.
                match self.tail.0.compare_exchange_weak(
                    ticket,
                    ticket.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS makes this thread the unique
                        // writer of this slot for this lap; the stamp
                        // still reads `ticket`, so no consumer touches it
                        // until the release store below publishes it.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.stamp.store(ticket.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => ticket = current,
                }
            } else if lag < 0 {
                // The slot still holds last lap's value: the ring is full.
                return Err(value);
            } else {
                // Another producer claimed this ticket; chase the tail.
                ticket = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest value, or `None` when the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let mut ticket = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[ticket & self.mask];
            let stamp = slot.stamp.load(Ordering::Acquire);
            let lag = stamp.wrapping_sub(ticket.wrapping_add(1)) as isize;
            if lag == 0 {
                // The slot holds a published value for this ticket.
                match self.head.0.compare_exchange_weak(
                    ticket,
                    ticket.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS makes this thread the unique
                        // reader of this slot for this lap, and the
                        // acquire load of the published stamp ordered the
                        // producer's write before this read.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        // Free the slot for the producer one lap ahead.
                        slot.stamp
                            .store(ticket.wrapping_add(self.mask).wrapping_add(1), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => ticket = current,
                }
            } else if lag < 0 {
                // No published value at this ticket: the ring is empty.
                return None;
            } else {
                // Another consumer claimed this ticket; chase the head.
                ticket = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// An approximate occupancy count (exact only when quiescent — under
    /// concurrent pushes/pops it is a snapshot of two racing counters).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head).min(self.slots.len())
    }

    /// Whether the ring looks empty (same snapshot caveat as
    /// [`Ring::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drain undelivered values so their destructors run.
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(Ring::<u8>::with_capacity(0).capacity(), 2);
        assert_eq!(Ring::<u8>::with_capacity(3).capacity(), 4);
        assert_eq!(Ring::<u8>::with_capacity(8).capacity(), 8);
        assert_eq!(Ring::<u8>::with_capacity(9).capacity(), 16);
    }

    #[test]
    fn fifo_within_a_single_thread() {
        let ring = Ring::with_capacity(4);
        for i in 0..4 {
            assert!(ring.push(i).is_ok());
        }
        assert_eq!(ring.push(99), Err(99), "full ring must reject");
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None, "empty ring must return None");
    }

    #[test]
    fn slots_are_reusable_across_laps() {
        let ring = Ring::with_capacity(2);
        for lap in 0..100u64 {
            assert!(ring.push(lap).is_ok());
            assert_eq!(ring.pop(), Some(lap));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn dropping_a_non_empty_ring_drops_the_values() {
        let payload = std::sync::Arc::new(());
        let ring = Ring::with_capacity(4);
        for _ in 0..3 {
            assert!(ring.push(std::sync::Arc::clone(&payload)).is_ok());
        }
        assert_eq!(std::sync::Arc::strong_count(&payload), 4);
        drop(ring);
        assert_eq!(std::sync::Arc::strong_count(&payload), 1);
    }
}
