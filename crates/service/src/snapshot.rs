//! Versioned on-disk snapshots of the plan cache.
//!
//! A snapshot persists the cache's *sources*, not its compiled plans:
//! each entry is the canonical cQASM text plus the qubit model and the
//! FNV artifact key it was cached under. On warm start the service
//! recompiles each source — compilation is deterministic, so the warmed
//! cache is bit-identical to the one that was saved, and the format
//! survives compiler evolution (a plan layout change would invalidate
//! serialized plans; sources just recompile).
//!
//! ## Format (little-endian throughout)
//!
//! ```text
//! magic    b"QPSN"                          4 bytes
//! version  u32                              4 bytes   (currently 1)
//! count    u32                              4 bytes
//! entry*   key u64 | qubits u8 | len u32 | source bytes (UTF-8)
//! footer   FNV-1a-64 of all preceding bytes 8 bytes
//! ```
//!
//! The trailing checksum covers everything before it, so any byte flip
//! or truncation is detected before entries are trusted; every decode
//! failure is a typed [`SnapshotError`], never a panic — a service
//! pointed at a damaged snapshot starts with a cold cache and a warning.

use crate::hash::Fnv64;
use qca_core::QubitKind;
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Magic bytes opening every snapshot file ("Quantum Plan SNapshot").
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"QPSN";

/// The snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Caps on a single entry's source text and on the entry count —
/// defensive bounds so a crafted length field cannot drive huge
/// allocations before the entry bytes are validated.
pub const MAX_SNAPSHOT_SOURCE_BYTES: usize = 4 << 20;
/// Maximum entries a snapshot may declare.
pub const MAX_SNAPSHOT_ENTRIES: u32 = 1 << 20;

/// One persisted cache entry: enough to recompile the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// The artifact key the entry was cached under when saved (sanity-
    /// checked against the recomputed key at load; a mismatch means the
    /// platform/options config changed and the entry is re-keyed).
    pub key: u64,
    /// The qubit model the plan was lowered for.
    pub qubits: QubitKind,
    /// The canonical cQASM source text.
    pub source: String,
}

/// Why a snapshot failed to load. Every variant is a warning-grade
/// condition: the service continues with an empty cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(String),
    /// The file is shorter than its declared contents.
    Truncated {
        /// Bytes the declared contents require.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's version is not one this build reads.
    UnsupportedVersion {
        /// Version declared by the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The trailing checksum does not match the contents (bit rot or a
    /// partial write).
    ChecksumMismatch,
    /// An entry's fields are internally inconsistent (only reachable for
    /// files that pass the checksum, i.e. crafted input).
    EntryCorrupt {
        /// Index of the offending entry.
        index: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(m) => write!(f, "snapshot io: {m}"),
            SnapshotError::Truncated { expected, found } => {
                write!(f, "snapshot truncated: need {expected} bytes, found {found}")
            }
            SnapshotError::BadMagic => write!(f, "snapshot has wrong magic bytes"),
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot version {found} unsupported (this build reads {supported})")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::EntryCorrupt { index, reason } => {
                write!(f, "snapshot entry {index} corrupt: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What a warm start accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Entries present in the snapshot file.
    pub entries: usize,
    /// Entries recompiled and inserted into the cache.
    pub loaded: usize,
    /// Entries skipped because they no longer compile (e.g. source from
    /// a build with different dialect support).
    pub skipped: usize,
    /// Entries whose recomputed key differed from the stored one
    /// (platform/options drift since the save) — still loaded, under the
    /// fresh key.
    pub rekeyed: usize,
}

fn qubits_tag(qubits: &QubitKind) -> u8 {
    match qubits {
        QubitKind::Perfect => 0,
        _ => 1,
    }
}

fn qubits_from_tag(tag: u8) -> Option<QubitKind> {
    match tag {
        0 => Some(QubitKind::Perfect),
        1 => Some(QubitKind::real_transmon()),
        _ => None,
    }
}

/// Whether an entry with this qubit model can round-trip through a
/// snapshot (custom noise models have no stable tag and are skipped at
/// save time).
pub fn snapshot_representable(qubits: &QubitKind) -> bool {
    matches!(qubits, QubitKind::Perfect) || *qubits == QubitKind::real_transmon()
}

/// Serializes entries into the snapshot byte format (header, entries,
/// trailing checksum). Entries whose model is not
/// [`snapshot_representable`] must be filtered by the caller.
pub fn encode_snapshot(entries: &[SnapshotEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        12 + 8 + entries.iter().map(|e| 13 + e.source.len()).sum::<usize>(),
    );
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for entry in entries {
        out.extend_from_slice(&entry.key.to_le_bytes());
        out.push(qubits_tag(&entry.qubits));
        out.extend_from_slice(&(entry.source.len() as u32).to_le_bytes());
        out.extend_from_slice(entry.source.as_bytes());
    }
    let mut h = Fnv64::new();
    h.write(&out);
    let checksum = h.finish();
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at + 4)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    bytes
        .get(at..at + 8)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
}

/// Decodes snapshot bytes, verifying magic, version and checksum before
/// trusting any entry.
///
/// # Errors
///
/// A typed [`SnapshotError`] describing the first problem found; never
/// panics on malformed input.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<SnapshotEntry>, SnapshotError> {
    if bytes.len() < 12 + 8 {
        return Err(SnapshotError::Truncated {
            expected: 12 + 8,
            found: bytes.len(),
        });
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = read_u32(bytes, 4).unwrap_or(0);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let body_len = bytes.len() - 8;
    let mut h = Fnv64::new();
    h.write(&bytes[..body_len]);
    let declared = read_u64(bytes, body_len).unwrap_or(0);
    if h.finish() != declared {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let count = read_u32(bytes, 8).unwrap_or(0);
    if count > MAX_SNAPSHOT_ENTRIES {
        return Err(SnapshotError::EntryCorrupt {
            index: 0,
            reason: format!("entry count {count} exceeds limit"),
        });
    }
    let mut entries = Vec::with_capacity(count.min(1024) as usize);
    let mut at = 12usize;
    for index in 0..count as usize {
        let key = read_u64(bytes, at).ok_or(SnapshotError::Truncated {
            expected: at + 8,
            found: body_len,
        })?;
        let tag = *bytes.get(at + 8).ok_or(SnapshotError::Truncated {
            expected: at + 9,
            found: body_len,
        })?;
        let qubits = qubits_from_tag(tag).ok_or_else(|| SnapshotError::EntryCorrupt {
            index,
            reason: format!("unknown qubit-model tag {tag}"),
        })?;
        let len = read_u32(bytes, at + 9).ok_or(SnapshotError::Truncated {
            expected: at + 13,
            found: body_len,
        })? as usize;
        if len > MAX_SNAPSHOT_SOURCE_BYTES {
            return Err(SnapshotError::EntryCorrupt {
                index,
                reason: format!("source length {len} exceeds limit"),
            });
        }
        let start = at + 13;
        let end = start.saturating_add(len);
        if end > body_len {
            return Err(SnapshotError::Truncated {
                expected: end,
                found: body_len,
            });
        }
        let source = std::str::from_utf8(&bytes[start..end])
            .map_err(|e| SnapshotError::EntryCorrupt {
                index,
                reason: format!("source is not UTF-8: {e}"),
            })?
            .to_string();
        entries.push(SnapshotEntry { key, qubits, source });
        at = end;
    }
    if at != body_len {
        return Err(SnapshotError::EntryCorrupt {
            index: count as usize,
            reason: format!("{} trailing bytes after last entry", body_len - at),
        });
    }
    Ok(entries)
}

/// Writes a snapshot atomically: serialize to `<path>.tmp`, fsync-free
/// rename into place — a crash mid-write leaves the previous snapshot
/// (or nothing) intact, never a half-written file under `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] if the temp file cannot be written or renamed.
pub fn write_snapshot(path: &Path, entries: &[SnapshotEntry]) -> Result<usize, SnapshotError> {
    let bytes = encode_snapshot(entries);
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", tmp.display()));
    let mut file = std::fs::File::create(&tmp).map_err(io)?;
    file.write_all(&bytes).map_err(io)?;
    drop(file);
    std::fs::rename(&tmp, path)
        .map_err(|e| SnapshotError::Io(format!("rename to {}: {e}", path.display())))?;
    Ok(entries.len())
}

/// Reads and decodes a snapshot file.
///
/// # Errors
///
/// [`SnapshotError::Io`] if the file cannot be read, otherwise any
/// [`decode_snapshot`] error.
pub fn read_snapshot(path: &Path) -> Result<Vec<SnapshotEntry>, SnapshotError> {
    let bytes = std::fs::read(path)
        .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
    decode_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<SnapshotEntry> {
        vec![
            SnapshotEntry {
                key: 0xDEAD_BEEF,
                qubits: QubitKind::Perfect,
                source: "qubits 1\nh q[0]\nmeasure_all\n".to_string(),
            },
            SnapshotEntry {
                key: 42,
                qubits: QubitKind::real_transmon(),
                source: "qubits 2\nx q[1]\n".to_string(),
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        let entries = sample_entries();
        let bytes = encode_snapshot(&entries);
        assert_eq!(decode_snapshot(&bytes).unwrap(), entries);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = encode_snapshot(&[]);
        assert_eq!(decode_snapshot(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode_snapshot(&sample_entries());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(
                decode_snapshot(&bad).is_err(),
                "flipping byte {i} must not decode cleanly"
            );
        }
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = encode_snapshot(&sample_entries());
        for cut in [0, 3, 11, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_snapshot(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let mut bytes = encode_snapshot(&sample_entries());
        bytes[0] = b'X';
        assert_eq!(decode_snapshot(&bytes).unwrap_err(), SnapshotError::BadMagic);

        // A future version with a valid checksum must be rejected as
        // version skew, not corruption.
        let mut future = encode_snapshot(&sample_entries());
        future[4] = 2;
        let body = future.len() - 8;
        let mut h = Fnv64::new();
        h.write(&future[..body]);
        let sum = h.finish().to_le_bytes();
        future[body..].copy_from_slice(&sum);
        assert_eq!(
            decode_snapshot(&future).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: 2,
                supported: SNAPSHOT_VERSION
            }
        );
    }

    #[test]
    fn write_and_read_through_a_file() {
        let path = std::env::temp_dir().join(format!(
            "qca-snapshot-test-{}.bin",
            std::process::id()
        ));
        let entries = sample_entries();
        assert_eq!(write_snapshot(&path, &entries).unwrap(), 2);
        assert_eq!(read_snapshot(&path).unwrap(), entries);
        let _ = std::fs::remove_file(&path);
    }
}
