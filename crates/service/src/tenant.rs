//! Multi-tenant admission: tenant configuration and the deficit
//! round-robin (DRR) fair dequeue.
//!
//! Each tenant gets its own admission lane (a lock-free ring on the
//! submit side, a priority heap on the scheduler side) plus a *weight*
//! and an optional *quota*:
//!
//! - the **quota** bounds how many of a tenant's jobs may sit queued at
//!   once — a flooding client sheds its own overflow instead of filling
//!   the shared queue;
//! - the **weight** drives the DRR picker: each time the scheduler
//!   visits a lane whose deficit ran out it refills the deficit with the
//!   lane's weight, then serves up to that many jobs before moving on.
//!   Over any busy window a tenant with weight `w` receives `w / Σw` of
//!   the dequeues, and a lane with queued work is always reached within
//!   one full cursor lap — no starvation.
//!
//! Within a lane, jobs still dequeue by priority then submission order,
//! exactly as the single-tenant scheduler did.

use std::collections::BinaryHeap;

/// Per-tenant scheduling policy: a display name, a DRR weight, and an
/// optional cap on queued jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Tenant name, matched against [`crate::JobSpec::tenant`]. Jobs
    /// naming no tenant (or an unknown one) land in the built-in
    /// `"default"` lane.
    pub name: String,
    /// DRR weight: relative share of dequeues under contention. Clamped
    /// to at least 1.
    pub weight: u32,
    /// Maximum jobs this tenant may have queued at once; `None` leaves
    /// only the global queue capacity in force.
    pub quota: Option<usize>,
}

impl TenantConfig {
    /// A tenant with the given name and weight and no quota.
    pub fn new(name: impl Into<String>, weight: u32) -> Self {
        TenantConfig {
            name: name.into(),
            weight: weight.max(1),
            quota: None,
        }
    }

    /// Caps this tenant's queued jobs at `quota`.
    #[must_use]
    pub fn with_quota(mut self, quota: usize) -> Self {
        self.quota = Some(quota);
        self
    }
}

struct DrrLane<T> {
    weight: u64,
    deficit: u64,
    heap: BinaryHeap<T>,
}

/// A deficit round-robin dequeue over per-lane priority heaps.
///
/// Items within a lane come out in the heap's order (highest first);
/// across lanes, a cursor walks the lanes and serves up to `weight`
/// items per visit. An idle lane's deficit resets to zero — tenants do
/// not bank credit while they have nothing queued.
///
/// ```
/// use qca_service::tenant::DrrQueue;
/// let mut q: DrrQueue<u32> = DrrQueue::new(&[1, 3]);
/// for i in 0..4 {
///     q.push(0, 100 + i); // lane 0, weight 1
///     q.push(1, 200 + i); // lane 1, weight 3
/// }
/// // lane 0 gets one dequeue per lap, lane 1 gets three.
/// let order: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
/// assert_eq!(order, vec![103, 203, 202, 201, 102, 200, 101, 100]);
/// ```
pub struct DrrQueue<T: Ord> {
    lanes: Vec<DrrLane<T>>,
    cursor: usize,
    len: usize,
}

impl<T: Ord> DrrQueue<T> {
    /// A queue with one lane per entry of `weights` (zero weights are
    /// clamped to 1).
    pub fn new(weights: &[u32]) -> Self {
        DrrQueue {
            lanes: weights
                .iter()
                .map(|w| DrrLane {
                    weight: u64::from((*w).max(1)),
                    deficit: 0,
                    heap: BinaryHeap::new(),
                })
                .collect(),
            cursor: 0,
            len: 0,
        }
    }

    /// Queues `item` on `lane`. Out-of-range lanes fold onto lane 0 —
    /// the caller maps tenant names to lane indices and lane 0 always
    /// exists for any non-empty queue.
    pub fn push(&mut self, lane: usize, item: T) {
        let idx = lane.min(self.lanes.len().saturating_sub(1));
        if let Some(l) = self.lanes.get_mut(idx) {
            l.heap.push(item);
            self.len += 1;
        }
    }

    /// Dequeues the next item under the DRR policy, or `None` when every
    /// lane is empty.
    pub fn pop(&mut self) -> Option<T> {
        let n = self.lanes.len();
        if n == 0 || self.len == 0 {
            return None;
        }
        // At most one full lap: a non-empty lane is always found within
        // `n` visits because empty lanes are skipped in O(1).
        for _ in 0..n {
            let cursor = self.cursor;
            let lane = &mut self.lanes[cursor];
            if lane.heap.is_empty() {
                // Idle lanes forfeit their credit — no banking.
                lane.deficit = 0;
                self.cursor = (cursor + 1) % n;
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = lane.weight;
            }
            lane.deficit -= 1;
            let item = lane.heap.pop();
            self.len -= 1;
            if lane.deficit == 0 {
                self.cursor = (cursor + 1) % n;
            }
            return item;
        }
        None
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items on one lane (0 for out-of-range indices).
    pub fn lane_len(&self, lane: usize) -> usize {
        self.lanes.get(lane).map_or(0, |l| l.heap.len())
    }

    /// Removes and returns every queued item, resetting all deficits.
    /// Used by shutdown paths that fail queued work in bulk.
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for lane in &mut self.lanes {
            lane.deficit = 0;
            out.extend(lane.heap.drain());
        }
        self.len = 0;
        self.cursor = 0;
        out
    }
}

impl<T: Ord> std::fmt::Debug for DrrQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrrQueue")
            .field("lanes", &self.lanes.len())
            .field("cursor", &self.cursor)
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn weights_split_dequeues_per_lap() {
        // Two lanes, weights 1:3, both saturated: each lap serves one
        // item from lane 0 and three from lane 1.
        let mut q: DrrQueue<Reverse<u32>> = DrrQueue::new(&[1, 3]);
        for i in 0..4u32 {
            q.push(0, Reverse(i));
            q.push(1, Reverse(100 + i));
        }
        let lanes: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|Reverse(v)| u32::from(v >= 100))
            .collect();
        assert_eq!(lanes, vec![0, 1, 1, 1, 0, 1, 0, 0]);
    }

    #[test]
    fn single_lane_degenerates_to_the_plain_heap_order() {
        let mut q: DrrQueue<u32> = DrrQueue::new(&[7]);
        for v in [3u32, 9, 1, 7] {
            q.push(0, v);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![9, 7, 3, 1], "max-heap order within a lane");
    }

    #[test]
    fn idle_lanes_do_not_bank_credit() {
        let mut q: DrrQueue<Reverse<u32>> = DrrQueue::new(&[4, 1]);
        // Lane 0 idle for many pops; when it finally queues work it gets
        // its weight per lap, not accumulated back-pay.
        for i in 0..6u32 {
            q.push(1, Reverse(i));
        }
        for _ in 0..3 {
            assert!(q.pop().is_some());
        }
        q.push(0, Reverse(100));
        q.push(0, Reverse(101));
        // Next pops: cursor is on lane 1 mid-quantum (weight 1 => lane
        // boundary each pop), so lane 0 is reached within one lap.
        let next: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|Reverse(v)| v).collect();
        let lane0_first = next.iter().position(|v| *v >= 100);
        assert!(
            lane0_first.is_some_and(|p| p <= 1),
            "lane 0 must be served within one lap, got order {next:?}"
        );
    }

    #[test]
    fn drain_all_empties_every_lane() {
        let mut q: DrrQueue<u32> = DrrQueue::new(&[1, 2, 3]);
        for i in 0..9u32 {
            q.push((i % 3) as usize, i);
        }
        assert_eq!(q.len(), 9);
        let mut drained = q.drain_all();
        drained.sort_unstable();
        assert_eq!(drained, (0..9u32).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn out_of_range_lane_folds_onto_lane_zero() {
        let mut q: DrrQueue<u32> = DrrQueue::new(&[1]);
        q.push(99, 42);
        assert_eq!(q.lane_len(0), 1);
        assert_eq!(q.pop(), Some(42));
    }
}
