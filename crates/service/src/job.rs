//! Job types: what callers submit, how jobs progress, what they get back.

use qca_core::QubitKind;
use qxsim::ShotHistogram;
use std::fmt;
use std::sync::Arc;

/// A ticket identifying one submitted job (unique per service instance,
/// monotonically increasing in submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Which execution engine runs the shots. The dispatcher honours this per
/// job: every engine consumes the same cached compiled plan.
///
/// `StateVector` jobs are really *sweep-family* jobs: the dispatcher
/// routes each plan to the cheapest sweep engine that is provably exact
/// for its [`qxsim::CircuitClass`] (Pauli-frame sampler, then tableau,
/// then state vector). Set [`JobSpec::force_engine`] to pin one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Monte-Carlo trajectory sampling: the default sweep family, with
    /// automatic stabilizer dispatch for Clifford plans (state-vector
    /// fallback scales to [`qxsim::MAX_SIM_QUBITS`] qubits).
    #[default]
    StateVector,
    /// Exact channel evolution on the density-matrix engine (small
    /// registers, up to [`qxsim::MAX_DENSITY_QUBITS`] qubits).
    DensityMatrix,
    /// The CHP tableau executor: Clifford-class plans only, up to
    /// [`qxsim::MAX_STAB_QUBITS`] qubits.
    Tableau,
    /// The bit-packed Pauli-frame sampler: terminally-measured
    /// Clifford plans only, up to [`qxsim::MAX_STAB_QUBITS`] qubits.
    PauliFrame,
}

impl Engine {
    /// The wire name of this engine.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::StateVector => "statevector",
            Engine::DensityMatrix => "density",
            Engine::Tableau => "tableau",
            Engine::PauliFrame => "pauli_frame",
        }
    }

    /// Parses a wire name (`"statevector"` / `"density"` / `"tableau"` /
    /// `"pauli_frame"`).
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "statevector" => Some(Engine::StateVector),
            "density" => Some(Engine::DensityMatrix),
            "tableau" => Some(Engine::Tableau),
            "pauli_frame" => Some(Engine::PauliFrame),
            _ => None,
        }
    }
}

/// Per-job retry policy for *transient* failures (injected faults,
/// worker loss). Compile errors, parse errors and expired deadlines are
/// never retried: re-running cannot fix them.
///
/// Backoff is a pure function of `(backoff_base_ms, jitter_seed,
/// attempt)` — never of timing or thread identity — so retried runs stay
/// bit-reproducible under a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total execution attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before attempt 2, in milliseconds; doubles per further
    /// attempt (capped at [`MAX_BACKOFF_MS`]). 0 retries immediately.
    pub backoff_base_ms: u64,
    /// Seed for the deterministic jitter mixed into each backoff.
    pub jitter_seed: u64,
}

/// The ceiling on any single computed backoff delay.
pub const MAX_BACKOFF_MS: u64 = 5_000;

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries (the default): the first failure is terminal.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
            jitter_seed: 0,
        }
    }

    /// Up to `max_attempts` total attempts with the given base backoff
    /// and a jitter seed of 0.
    pub fn with_attempts(max_attempts: u32, backoff_base_ms: u64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff_base_ms,
            jitter_seed: 0,
        }
    }

    /// The deterministic delay before retrying after `failed_attempt`
    /// (1-based: the attempt that just failed). Exponential in the
    /// attempt number plus seeded jitter in `[0, backoff_base_ms)`,
    /// capped at [`MAX_BACKOFF_MS`].
    pub fn backoff_ms(&self, failed_attempt: u32) -> u64 {
        if self.backoff_base_ms == 0 {
            return 0;
        }
        let exp = failed_attempt.saturating_sub(1).min(16);
        let base = self
            .backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(MAX_BACKOFF_MS);
        // SplitMix64 over (jitter_seed, attempt): stable across runs,
        // threads and retry interleavings.
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(failed_attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jitter = z % self.backoff_base_ms.max(1);
        base.saturating_add(jitter).min(MAX_BACKOFF_MS)
    }
}

/// Deterministic fault hooks on a job, for the chaos harness and tests.
/// Both fire on the first N execution *attempts* of the job, so a job
/// with a [`RetryPolicy`] allowing more attempts than the configured
/// fault count eventually succeeds — exercising the retry path end to
/// end. The default injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobFaults {
    /// The first N execution attempts panic the executing worker mid-job
    /// (models a crashing kernel; exercises supervision + respawn).
    pub panic_attempts: u32,
    /// The first N execution attempts fail with a transient injected
    /// fault (models a mid-run device failure; exercises retry).
    pub fail_attempts: u32,
}

impl JobFaults {
    /// No injected faults (the default).
    pub fn none() -> Self {
        JobFaults::default()
    }
}

/// One unit of work for the service.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The circuit, as cQASM source text (canonicalised and content-hashed
    /// at submission).
    pub circuit: String,
    /// Number of measurement shots.
    pub shots: u64,
    /// RNG seed: results are a deterministic function of
    /// (circuit, seed, model, engine), independent of worker count.
    pub seed: u64,
    /// Scheduling priority: higher runs first (FIFO within a priority).
    pub priority: u8,
    /// Per-job deadline in milliseconds from submission. A job still
    /// queued when its deadline passes fails with
    /// [`ServiceError::DeadlineExceeded`] instead of running.
    pub deadline_ms: Option<u64>,
    /// Which engine executes the shots.
    pub engine: Engine,
    /// Pins a specific engine, bypassing automatic class-based dispatch.
    /// `None` (the default) lets the dispatcher pick; a forced engine
    /// that cannot execute the plan fails the job with a typed
    /// [`ServiceError::Execute`] instead of running elsewhere.
    pub force_engine: Option<Engine>,
    /// The qubit model to simulate under.
    pub qubits: QubitKind,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Deterministic fault injection (chaos harness and tests only).
    pub faults: JobFaults,
    /// Which tenant submits this job, for quota accounting and the
    /// weighted fair dequeue. `None` (and any name the service was not
    /// configured with) lands in the built-in `"default"` lane.
    pub tenant: Option<String>,
}

impl JobSpec {
    /// A default-configured job for a circuit: 1000 shots, seed 0, normal
    /// priority, no deadline, state-vector engine, perfect qubits.
    pub fn new(circuit: impl Into<String>) -> Self {
        JobSpec {
            circuit: circuit.into(),
            shots: 1000,
            seed: 0,
            priority: 0,
            deadline_ms: None,
            engine: Engine::StateVector,
            force_engine: None,
            qubits: QubitKind::Perfect,
            retry: RetryPolicy::none(),
            faults: JobFaults::none(),
            tenant: None,
        }
    }

    /// Sets the shot count.
    pub fn with_shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the deadline in milliseconds from submission.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Sets the execution engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Pins the execution engine, bypassing automatic dispatch (see
    /// [`JobSpec::force_engine`]).
    pub fn with_force_engine(mut self, engine: Engine) -> Self {
        self.force_engine = Some(engine);
        self
    }

    /// Sets the qubit model.
    pub fn with_qubits(mut self, qubits: QubitKind) -> Self {
        self.qubits = qubits;
        self
    }

    /// Sets the retry policy for transient failures.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets deterministic fault injection (chaos harness and tests only).
    pub fn with_faults(mut self, faults: JobFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Names the submitting tenant (see [`JobSpec::tenant`]).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

/// What a finished job produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Aggregated measurement histogram over all shots.
    pub histogram: ShotHistogram,
    /// Whether the compiled plan came from the artifact cache.
    pub cache_hit: bool,
    /// How many coalesced jobs this execution served (1 = just this job).
    pub batch_size: usize,
    /// Number of shot shards the sweep was split into.
    pub shards: usize,
    /// Time spent queued, in microseconds.
    pub wait_us: u64,
    /// Time spent compiling + executing, in microseconds.
    pub exec_us: u64,
    /// Execution attempts this job took (1 = succeeded first try; more
    /// means transient failures were retried).
    pub attempts: u32,
    /// Wire name of the engine that actually executed the shots, after
    /// automatic dispatch (`"state_vector"` / `"tableau"` /
    /// `"pauli_frame"` / `"density"`).
    pub engine: &'static str,
    /// Circuit class of the compiled plan (`"clifford_terminal"` /
    /// `"clifford"` / `"general"`).
    pub class: &'static str,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it (or a batch containing it).
    Running,
    /// Finished successfully.
    Done(Arc<JobOutcome>),
    /// Failed (compile error, execution error, expired deadline).
    Failed(ServiceError),
    /// Cancelled while still queued.
    Cancelled,
}

impl JobStatus {
    /// The wire name of this status.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done(_) | JobStatus::Failed(_) | JobStatus::Cancelled
        )
    }
}

/// When one job passed each lifecycle stage — admit → claim → compile →
/// execute → settle — as microsecond offsets from the service epoch
/// (except `compile_us`, which is the compile *duration*). Stages the
/// job has not reached read `None`; retries overwrite the claim/execute
/// stamps with the latest attempt's. Returned by
/// `ServiceHandle::lifecycle` and the `trace` wire verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobLifecycle {
    /// The job's ticket.
    pub job: JobId,
    /// Whether this job emits Chrome-trace spans (deterministic 1-in-N
    /// sampling by content hash).
    pub sampled: bool,
    /// Current status wire name (`queued`/`running`/`done`/...).
    pub status: String,
    /// Scheduling priority.
    pub priority: u8,
    /// Execution attempts started so far.
    pub attempts: u32,
    /// When the job was admitted.
    pub admit_us: u64,
    /// When the latest attempt was claimed by a worker.
    pub claim_us: Option<u64>,
    /// Compile duration of the attempt that served this job (`None` on
    /// a plan-cache hit).
    pub compile_us: Option<u64>,
    /// When the latest attempt began executing.
    pub exec_start_us: Option<u64>,
    /// When the job last settled.
    pub settle_us: Option<u64>,
}

/// Typed service-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The admission queue is full — backpressure; retry later.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The submitting tenant already has its quota of jobs queued —
    /// per-tenant backpressure; other tenants are unaffected.
    TenantQuotaExceeded {
        /// The tenant whose quota is exhausted.
        tenant: String,
        /// That tenant's configured queued-job quota.
        quota: usize,
    },
    /// The circuit failed to parse.
    Parse(String),
    /// Compilation failed.
    Compile(String),
    /// Execution failed.
    Execute(String),
    /// The job's deadline passed before a worker could start it.
    DeadlineExceeded {
        /// The configured deadline.
        deadline_ms: u64,
    },
    /// No job with that id exists.
    UnknownJob(u64),
    /// The job was cancelled before it ran.
    Cancelled,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// Waiting for a result timed out (the job may still complete).
    WaitTimeout,
    /// The worker executing the job panicked (a transient failure: the
    /// pool respawns the worker and, with a [`RetryPolicy`], the job is
    /// retried).
    WorkerPanic {
        /// The panic payload, best-effort stringified.
        message: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServiceError::TenantQuotaExceeded { tenant, quota } => {
                write!(f, "tenant '{tenant}' has its quota of {quota} jobs queued")
            }
            ServiceError::Parse(m) => write!(f, "parse: {m}"),
            ServiceError::Compile(m) => write!(f, "compile: {m}"),
            ServiceError::Execute(m) => write!(f, "execute: {m}"),
            ServiceError::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms passed while queued")
            }
            ServiceError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            ServiceError::Cancelled => write!(f, "job was cancelled"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::WaitTimeout => write!(f, "timed out waiting for the result"),
            ServiceError::WorkerPanic { message } => {
                write!(f, "worker panicked while executing the job: {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_round_trip() {
        for e in [
            Engine::StateVector,
            Engine::DensityMatrix,
            Engine::Tableau,
            Engine::PauliFrame,
        ] {
            assert_eq!(Engine::parse(e.name()), Some(e));
        }
        assert_eq!(Engine::parse("quantum-annealer"), None);
    }

    #[test]
    fn builder_sets_every_field() {
        let spec = JobSpec::new("qubits 1\nx q[0]\n")
            .with_shots(42)
            .with_seed(7)
            .with_priority(3)
            .with_deadline_ms(500)
            .with_engine(Engine::DensityMatrix)
            .with_force_engine(Engine::Tableau)
            .with_qubits(QubitKind::real_transmon());
        assert_eq!(spec.shots, 42);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.priority, 3);
        assert_eq!(spec.deadline_ms, Some(500));
        assert_eq!(spec.engine, Engine::DensityMatrix);
        assert_eq!(spec.force_engine, Some(Engine::Tableau));
    }

    #[test]
    fn backoff_is_deterministic_monotone_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff_base_ms: 10,
            jitter_seed: 42,
        };
        for attempt in 1..8 {
            assert_eq!(
                policy.backoff_ms(attempt),
                policy.backoff_ms(attempt),
                "backoff must be a pure function of (policy, attempt)"
            );
            assert!(policy.backoff_ms(attempt) <= MAX_BACKOFF_MS);
        }
        // The exponential base grows until the cap.
        assert!(policy.backoff_ms(4) > policy.backoff_ms(1));
        // Different jitter seeds decorrelate the delays.
        let other = RetryPolicy {
            jitter_seed: 43,
            ..policy
        };
        assert!((1..8).any(|a| policy.backoff_ms(a) != other.backoff_ms(a)));
        // A zero base retries immediately.
        assert_eq!(RetryPolicy::none().backoff_ms(1), 0);
    }

    #[test]
    fn terminal_statuses() {
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
        assert!(JobStatus::Cancelled.is_terminal());
        assert!(JobStatus::Failed(ServiceError::WaitTimeout).is_terminal());
    }
}
