//! Service-layer chaos campaign: seeded fault scenarios against a live
//! in-process service (and, for the wire scenarios, a real TCP
//! front-end on a loopback socket).
//!
//! Sibling of [`qca_core::chaos`] (which attacks the compiler stack) —
//! this module attacks the *serving* layer: worker panics, transient
//! execution faults, retry exhaustion, mid-`wait` cancellation, abrupt
//! shutdown, oversized/malformed frames and client disconnects. Every
//! case asserts the serving invariants that matter for a shared
//! accelerator endpoint:
//!
//! 1. **No stranded waiters** — every submitted job reaches a terminal
//!    state (`done`/`failed`/`cancelled`) within a generous bound; a
//!    `WaitTimeout` is a campaign failure, not a tolerated flake.
//! 2. **The pool heals** — after every injected worker panic the live
//!    worker count returns to the configured size.
//! 3. **Bit-reproducible success** — a histogram produced through
//!    retries is bit-identical to a fault-free run of the same spec.
//! 4. **The daemon outlives its clients** — oversized frames, malformed
//!    JSON and abrupt disconnects draw typed errors (or a clean close)
//!    on that connection only; the next connection is served normally.
//!
//! Cases are derived from `seed + i * CASE_SEED_STRIDE`, so a failing
//! case can be replayed in isolation with [`run_case`].

use crate::job::{JobFaults, JobSpec, RetryPolicy, ServiceError};
use crate::service::{Service, ServiceConfig};
use crate::tcp::{TcpConfig, TcpServer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-case seed stride (same constant family as the other campaigns).
pub const CASE_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// How long a single job may take to reach a terminal state before the
/// case is declared hung. Generous: campaign circuits are tiny.
const TERMINAL_BOUND: Duration = Duration::from_secs(30);

/// The fault scenario a case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// A worker panics mid-job; retry succeeds and the pool respawns.
    WorkerPanicHeals,
    /// Transient execution faults burn attempts, then the job succeeds.
    TransientRetry,
    /// More faults than attempts: the job fails with a typed error.
    RetryExhausted,
    /// A panic with no retry budget: typed `WorkerPanic`, pool heals.
    PanicNoRetry,
    /// A queued job is cancelled while another waiter blocks on it.
    CancelMidWait,
    /// `shutdown_now` fails queued jobs with `ShuttingDown`.
    ShutdownNow,
    /// A client sends a frame over the limit and gets `frame_too_large`.
    OversizedFrame,
    /// A client sends malformed JSON and gets `bad_request`.
    MalformedFrame,
    /// A client submits and vanishes; the job still completes.
    ClientDisconnect,
    /// Tenant flooders hammer the admission rings while another thread
    /// calls `shutdown_now`: every accepted job settles typed, every
    /// rejection is typed backpressure — nothing is stranded in a ring.
    TenantFloodShutdown,
    /// A manual cache-snapshot save races `shutdown_now`'s own save; the
    /// file that survives is either loadable or a typed decode error on
    /// the next start — never a panic, never a half-warm cache.
    SnapshotShutdownRace,
    /// Admission into a full queue while the pool respawns a panicked
    /// worker: overflow draws typed `QueueFull`, everything admitted
    /// settles, and the pool heals.
    FullRingRespawn,
}

/// All scenarios, in the order the campaign cycles through them.
pub const SCENARIOS: [Scenario; 12] = [
    Scenario::WorkerPanicHeals,
    Scenario::TransientRetry,
    Scenario::RetryExhausted,
    Scenario::PanicNoRetry,
    Scenario::CancelMidWait,
    Scenario::ShutdownNow,
    Scenario::OversizedFrame,
    Scenario::MalformedFrame,
    Scenario::ClientDisconnect,
    Scenario::TenantFloodShutdown,
    Scenario::SnapshotShutdownRace,
    Scenario::FullRingRespawn,
];

/// One case's verdict.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The case seed (replayable with [`run_case`]).
    pub seed: u64,
    /// Which scenario ran.
    pub scenario: Scenario,
    /// `None` when every invariant held; otherwise what broke.
    pub failure: Option<String>,
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Cases run.
    pub cases: u64,
    /// Cases where every invariant held.
    pub passed: u64,
    /// Seeds (with scenario and detail) of failing cases.
    pub failures: Vec<CaseReport>,
}

impl CampaignReport {
    /// `true` when every case passed.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `cases` seeded fault scenarios and aggregates the verdicts.
///
/// Injected worker panics are expected here, so the default panic hook
/// (which prints a backtrace per panic) is silenced for the duration —
/// same discipline as [`qca_core::chaos`]. `--replay` via [`run_case`]
/// keeps the hook, for verbose diagnosis of a failing seed.
pub fn run_campaign(seed: u64, cases: u64) -> CampaignReport {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut report = CampaignReport::default();
    for i in 0..cases {
        let case_seed = seed.wrapping_add(i.wrapping_mul(CASE_SEED_STRIDE));
        let case = run_case(case_seed);
        report.cases += 1;
        if case.failure.is_none() {
            report.passed += 1;
        } else {
            report.failures.push(case);
        }
    }
    std::panic::set_hook(prev_hook);
    report
}

/// Runs the single case derived from `seed` (replay entry point).
pub fn run_case(seed: u64) -> CaseReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = SCENARIOS[rng.gen_range(0..SCENARIOS.len())];
    let failure = match scenario {
        Scenario::WorkerPanicHeals => worker_panic_heals(&mut rng),
        Scenario::TransientRetry => transient_retry(&mut rng),
        Scenario::RetryExhausted => retry_exhausted(&mut rng),
        Scenario::PanicNoRetry => panic_no_retry(&mut rng),
        Scenario::CancelMidWait => cancel_mid_wait(&mut rng),
        Scenario::ShutdownNow => shutdown_now_fails_queued(&mut rng),
        Scenario::OversizedFrame => oversized_frame(&mut rng),
        Scenario::MalformedFrame => malformed_frame(&mut rng),
        Scenario::ClientDisconnect => client_disconnect(&mut rng),
        Scenario::TenantFloodShutdown => tenant_flood_shutdown(&mut rng),
        Scenario::SnapshotShutdownRace => snapshot_shutdown_race(&mut rng, seed),
        Scenario::FullRingRespawn => full_ring_respawn(&mut rng),
    };
    CaseReport {
        seed,
        scenario,
        failure,
    }
}

/// A small service tuned for fast chaos cases.
fn small_service(rng: &mut StdRng) -> Service {
    Service::with_config(ServiceConfig {
        workers: rng.gen_range(1..=2),
        ..ServiceConfig::default()
    })
}

/// One of the campaign's tiny circuits.
fn pick_circuit(rng: &mut StdRng) -> &'static str {
    const CIRCUITS: [&str; 3] = [
        "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n",
        "qubits 3\nh q[0]\ncnot q[0], q[1]\ncnot q[1], q[2]\nmeasure_all\n",
        "qubits 2\nh q[0]\nmeasure q[0]\nc-x b[0], q[1]\nmeasure_all\n",
    ];
    CIRCUITS[rng.gen_range(0..CIRCUITS.len())]
}

/// A randomised fault-free spec for this case.
fn base_spec(rng: &mut StdRng) -> JobSpec {
    let mut spec = JobSpec::new(pick_circuit(rng));
    spec.shots = rng.gen_range(50..400);
    spec.seed = rng.gen_range(0..u64::from(u32::MAX));
    spec
}

/// The fault-free oracle: the same spec on a fresh single-worker
/// service. Retried runs must reproduce this bit for bit.
fn reference_histogram(spec: &JobSpec) -> Result<qxsim::ShotHistogram, String> {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    let mut clean = spec.clone();
    clean.faults = JobFaults::none();
    clean.retry = RetryPolicy::none();
    let id = handle
        .submit(clean)
        .map_err(|e| format!("reference submit failed: {e}"))?;
    let outcome = handle
        .wait(id, TERMINAL_BOUND)
        .map_err(|e| format!("reference run failed: {e}"))?;
    service.shutdown();
    Ok(outcome.histogram.clone())
}

/// Waits for the worker pool to report its configured size again.
fn pool_heals(handle: &crate::service::ServiceHandle, want: usize) -> Option<String> {
    let deadline = std::time::Instant::now() + TERMINAL_BOUND;
    while std::time::Instant::now() < deadline {
        if handle.stats().workers_live == want {
            return None;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Some(format!(
        "pool did not heal to {want} workers (live: {})",
        handle.stats().workers_live
    ))
}

fn worker_panic_heals(rng: &mut StdRng) -> Option<String> {
    let service = small_service(rng);
    let workers = service.handle().stats().workers;
    let spec = base_spec(rng)
        .with_faults(JobFaults {
            panic_attempts: 1,
            fail_attempts: 0,
        })
        .with_retry(RetryPolicy {
            max_attempts: rng.gen_range(2..=4),
            backoff_base_ms: rng.gen_range(0..3),
            jitter_seed: rng.gen_range(0..1_000),
        });
    let reference = match reference_histogram(&spec) {
        Ok(h) => h,
        Err(e) => return Some(e),
    };
    let handle = service.handle();
    let id = match handle.submit(spec) {
        Ok(id) => id,
        Err(e) => return Some(format!("submit failed: {e}")),
    };
    let outcome = match handle.wait(id, TERMINAL_BOUND) {
        Ok(o) => o,
        Err(e) => return Some(format!("job did not survive a worker panic: {e}")),
    };
    if outcome.attempts < 2 {
        return Some(format!(
            "expected a retried attempt, got {}",
            outcome.attempts
        ));
    }
    if outcome.histogram != reference {
        return Some("retried histogram diverged from the fault-free run".to_string());
    }
    if let Some(fail) = pool_heals(&handle, workers) {
        return Some(fail);
    }
    if handle.stats().panics == 0 {
        return Some("panic was not counted".to_string());
    }
    service.shutdown();
    None
}

fn transient_retry(rng: &mut StdRng) -> Option<String> {
    let service = small_service(rng);
    let fail_attempts = rng.gen_range(1..=2);
    let spec = base_spec(rng)
        .with_faults(JobFaults {
            panic_attempts: 0,
            fail_attempts,
        })
        .with_retry(RetryPolicy {
            max_attempts: fail_attempts + rng.gen_range(1_u32..=2),
            backoff_base_ms: rng.gen_range(0..3),
            jitter_seed: rng.gen_range(0..1_000),
        });
    let reference = match reference_histogram(&spec) {
        Ok(h) => h,
        Err(e) => return Some(e),
    };
    let handle = service.handle();
    let id = match handle.submit(spec) {
        Ok(id) => id,
        Err(e) => return Some(format!("submit failed: {e}")),
    };
    let outcome = match handle.wait(id, TERMINAL_BOUND) {
        Ok(o) => o,
        Err(e) => return Some(format!("job did not survive transient faults: {e}")),
    };
    if outcome.attempts != fail_attempts + 1 {
        return Some(format!(
            "expected {} attempts, got {}",
            fail_attempts + 1,
            outcome.attempts
        ));
    }
    if outcome.histogram != reference {
        return Some("retried histogram diverged from the fault-free run".to_string());
    }
    if handle.stats().retries_scheduled < u64::from(fail_attempts) {
        return Some("retries were not counted".to_string());
    }
    service.shutdown();
    None
}

fn retry_exhausted(rng: &mut StdRng) -> Option<String> {
    let service = small_service(rng);
    let max_attempts = rng.gen_range(1..=3);
    let spec = base_spec(rng)
        .with_faults(JobFaults {
            panic_attempts: 0,
            fail_attempts: max_attempts + 2,
        })
        .with_retry(RetryPolicy {
            max_attempts,
            backoff_base_ms: rng.gen_range(0..2),
            jitter_seed: 7,
        });
    let handle = service.handle();
    let id = match handle.submit(spec) {
        Ok(id) => id,
        Err(e) => return Some(format!("submit failed: {e}")),
    };
    match handle.wait(id, TERMINAL_BOUND) {
        Ok(_) => Some("job succeeded despite exhausted retries".to_string()),
        Err(ServiceError::Execute(_)) => {
            let stats = handle.stats();
            if max_attempts > 1 && stats.retries_exhausted == 0 {
                return Some("exhaustion was not counted".to_string());
            }
            service.shutdown();
            None
        }
        Err(other) => Some(format!("expected a typed execute failure, got: {other}")),
    }
}

fn panic_no_retry(rng: &mut StdRng) -> Option<String> {
    let service = small_service(rng);
    let workers = service.handle().stats().workers;
    let spec = base_spec(rng).with_faults(JobFaults {
        panic_attempts: 9,
        fail_attempts: 0,
    });
    let handle = service.handle();
    let id = match handle.submit(spec) {
        Ok(id) => id,
        Err(e) => return Some(format!("submit failed: {e}")),
    };
    match handle.wait(id, TERMINAL_BOUND) {
        Ok(_) => Some("job succeeded despite a persistent panic".to_string()),
        Err(ServiceError::WorkerPanic { .. }) => {
            if let Some(fail) = pool_heals(&handle, workers) {
                return Some(fail);
            }
            service.shutdown();
            None
        }
        Err(ServiceError::WaitTimeout) => {
            Some("waiter timed out: panicking job never settled".to_string())
        }
        Err(other) => Some(format!("expected WorkerPanic, got: {other}")),
    }
}

fn cancel_mid_wait(rng: &mut StdRng) -> Option<String> {
    // Single worker, pinned by a slow job, so the victim stays queued.
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    let mut slow =
        JobSpec::new("qubits 10\nh q[0]\nmeasure q[0]\nc-x b[0], q[1]\nh q[2]\nmeasure_all\n");
    slow.shots = 2_000;
    slow.seed = rng.gen_range(0..1_000);
    let _pin = match handle.submit(slow) {
        Ok(id) => id,
        Err(e) => return Some(format!("pin submit failed: {e}")),
    };
    let victim = match handle.submit(base_spec(rng)) {
        Ok(id) => id,
        Err(e) => return Some(format!("victim submit failed: {e}")),
    };
    // Cancel from a second thread while this one blocks in wait().
    let canceller = {
        let handle = handle.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            handle.cancel(victim)
        })
    };
    let waited = handle.wait(victim, TERMINAL_BOUND);
    let cancelled = matches!(canceller.join(), Ok(Ok(true)));
    let verdict = match waited {
        Err(ServiceError::Cancelled) if cancelled => None,
        // The worker got to the victim before the canceller: a completed
        // job is also a valid terminal state for this race.
        Ok(_) if !cancelled => None,
        Err(ServiceError::WaitTimeout) => Some("waiter timed out on a cancelled job".to_string()),
        other => Some(format!(
            "unexpected wait outcome (cancelled={cancelled}): {other:?}"
        )),
    };
    service.shutdown();
    verdict
}

fn shutdown_now_fails_queued(rng: &mut StdRng) -> Option<String> {
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    let mut ids = Vec::new();
    for _ in 0..rng.gen_range(2..5) {
        match handle.submit(base_spec(rng)) {
            Ok(id) => ids.push(id),
            Err(e) => return Some(format!("submit failed: {e}")),
        }
    }
    service.shutdown_now();
    // Every job must be terminal: done (it ran before the shutdown won
    // the race) or failed with a typed shutdown/pool error.
    for id in ids {
        match handle.wait(id, Duration::from_secs(5)) {
            Ok(_) => {}
            Err(ServiceError::ShuttingDown | ServiceError::WorkerPanic { .. }) => {}
            Err(ServiceError::WaitTimeout) => {
                return Some(format!("job {} stranded by shutdown_now", id.0));
            }
            Err(other) => return Some(format!("unexpected terminal state: {other}")),
        }
    }
    None
}

/// Spins up a TCP front-end with tight limits for the wire scenarios.
fn tcp_fixture(rng: &mut StdRng) -> Result<(Service, TcpServer, TcpConfig), String> {
    let service = small_service(rng);
    let config = TcpConfig {
        max_request_bytes: 4 * 1024,
        read_timeout: Some(Duration::from_secs(5)),
        write_timeout: Some(Duration::from_secs(5)),
        max_connections: 8,
        drain_timeout: Duration::from_secs(2),
    };
    let server = TcpServer::bind_with("127.0.0.1:0", service.handle(), config)
        .map_err(|e| format!("bind failed: {e}"))?;
    Ok((service, server, config))
}

fn request_line(stream: &mut TcpStream, line: &str) -> Result<String, String> {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("write failed: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone failed: {e}"))?,
    );
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("read failed: {e}"))?;
    Ok(response)
}

/// After an abusive connection, a fresh connection must still be served.
fn still_serving(addr: std::net::SocketAddr) -> Option<String> {
    let mut probe = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return Some(format!("follow-up connect failed: {e}")),
    };
    match request_line(&mut probe, "{\"verb\":\"stats\"}") {
        Ok(resp) if resp.contains("\"ok\":true") => None,
        Ok(resp) => Some(format!("follow-up stats failed: {}", resp.trim())),
        Err(e) => Some(e),
    }
}

fn oversized_frame(rng: &mut StdRng) -> Option<String> {
    let (service, server, config) = match tcp_fixture(rng) {
        Ok(f) => f,
        Err(e) => return Some(e),
    };
    let addr = server.local_addr();
    let verdict = (|| {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
        // One line, one byte over the limit, no newline until the end.
        let frame = "x".repeat(config.max_request_bytes + rng.gen_range(1_usize..2_000));
        let response = request_line(&mut stream, &frame)?;
        if !response.contains("frame_too_large") {
            return Err(format!(
                "expected frame_too_large, got: {}",
                response.trim()
            ));
        }
        Ok(())
    })();
    let follow_up = still_serving(addr);
    server.stop();
    service.shutdown();
    verdict.err().or(follow_up)
}

fn malformed_frame(rng: &mut StdRng) -> Option<String> {
    let (service, server, _config) = match tcp_fixture(rng) {
        Ok(f) => f,
        Err(e) => return Some(e),
    };
    let addr = server.local_addr();
    const GARBAGE: [&str; 4] = [
        "not json at all",
        "{\"verb\":\"submit\"}",
        "{\"verb\":\"frobnicate\",\"job\":1}",
        "{\"verb\":",
    ];
    let verdict = (|| {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
        let garbage = GARBAGE[rng.gen_range(0..GARBAGE.len())];
        let response = request_line(&mut stream, garbage)?;
        if !response.contains("\"ok\":false") {
            return Err(format!("malformed frame accepted: {}", response.trim()));
        }
        // Same connection must still serve a valid request.
        let response = request_line(&mut stream, "{\"verb\":\"stats\"}")?;
        if !response.contains("\"ok\":true") {
            return Err(format!(
                "connection poisoned by bad frame: {}",
                response.trim()
            ));
        }
        Ok(())
    })();
    let follow_up = still_serving(addr);
    server.stop();
    service.shutdown();
    verdict.err().or(follow_up)
}

fn client_disconnect(rng: &mut StdRng) -> Option<String> {
    let (service, server, _config) = match tcp_fixture(rng) {
        Ok(f) => f,
        Err(e) => return Some(e),
    };
    let addr = server.local_addr();
    let handle = service.handle();
    let verdict = (|| {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
        let spec = base_spec(rng);
        let line = crate::wire::encode_request(&crate::wire::Request::Submit(spec));
        let response = request_line(&mut stream, &line)?;
        if !response.contains("\"ok\":true") {
            return Err(format!("submit failed: {}", response.trim()));
        }
        // Vanish abruptly, possibly mid-line.
        let _ = stream.write_all(b"{\"verb\":\"resu");
        drop(stream);
        // The orphaned job must still reach a terminal state in-process.
        let stats_deadline = std::time::Instant::now() + TERMINAL_BOUND;
        loop {
            let stats = handle.stats();
            if stats.queued == 0 && stats.running == 0 {
                break;
            }
            if std::time::Instant::now() >= stats_deadline {
                return Err("orphaned job never drained".to_string());
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(())
    })();
    let follow_up = still_serving(addr);
    server.stop();
    service.shutdown();
    verdict.err().or(follow_up)
}

fn tenant_flood_shutdown(rng: &mut StdRng) -> Option<String> {
    use crate::tenant::TenantConfig;
    let service = Service::with_config(ServiceConfig {
        workers: rng.gen_range(1..=2),
        queue_capacity: rng.gen_range(8..32),
        tenants: vec![
            TenantConfig::new("flood", 1),
            TenantConfig::new("vip", 4),
        ],
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    // Two flooder threads hammer the "flood" ring while the main thread
    // mixes in vip work and then yanks the service down mid-flood.
    let flooders: Vec<_> = (0..2)
        .map(|t| {
            let handle = handle.clone();
            let mut spec = base_spec(rng);
            std::thread::spawn(move || {
                let mut admitted = Vec::new();
                for i in 0..30_u64 {
                    spec.seed = spec.seed.wrapping_add(t * 1000 + i);
                    match handle.submit(spec.clone().with_tenant("flood")) {
                        Ok(id) => admitted.push(id),
                        // Backpressure and shutdown are the *expected*
                        // typed rejections under flood; anything else is
                        // a scenario failure.
                        Err(ServiceError::QueueFull { .. }
                        | ServiceError::TenantQuotaExceeded { .. }
                        | ServiceError::ShuttingDown) => {}
                        Err(other) => return Err(format!("flood submit: {other}")),
                    }
                }
                Ok(admitted)
            })
        })
        .collect();
    let mut vip_ids = Vec::new();
    for _ in 0..rng.gen_range(2..6) {
        match handle.submit(base_spec(rng).with_tenant("vip")) {
            Ok(id) => vip_ids.push(id),
            Err(ServiceError::QueueFull { .. } | ServiceError::ShuttingDown) => {}
            Err(e) => return Some(format!("vip submit: {e}")),
        }
    }
    std::thread::sleep(Duration::from_millis(rng.gen_range(0..10)));
    service.shutdown_now();
    let mut admitted = vip_ids;
    for flooder in flooders {
        match flooder.join() {
            Ok(Ok(ids)) => admitted.extend(ids),
            Ok(Err(e)) => return Some(e),
            Err(_) => return Some("flooder thread panicked".to_string()),
        }
    }
    // Every accepted ticket must be terminal — a job stranded inside a
    // ring (admitted but never failed by the shutdown sweep) times out
    // here and fails the case.
    for id in admitted {
        match handle.wait(id, Duration::from_secs(5)) {
            Ok(_) => {}
            Err(ServiceError::ShuttingDown | ServiceError::WorkerPanic { .. }) => {}
            Err(ServiceError::WaitTimeout) => {
                return Some(format!("job {} stranded in a ring by shutdown", id.0));
            }
            Err(other) => return Some(format!("unexpected terminal state: {other}")),
        }
    }
    None
}

fn snapshot_shutdown_race(rng: &mut StdRng, seed: u64) -> Option<String> {
    let path = std::env::temp_dir().join(format!(
        "qca-chaos-snap-{}-{seed:016x}.qpsn",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let config = ServiceConfig {
        workers: 1,
        snapshot_path: Some(path.clone()),
        ..ServiceConfig::default()
    };
    let service = Service::with_config(config.clone());
    let handle = service.handle();
    // Populate the cache so both racing saves have real entries.
    for _ in 0..rng.gen_range(1..4) {
        let id = match handle.submit(base_spec(rng)) {
            Ok(id) => id,
            Err(e) => return Some(format!("populate submit: {e}")),
        };
        if let Err(e) = handle.wait(id, TERMINAL_BOUND) {
            return Some(format!("populate run: {e}"));
        }
    }
    // A manual save races shutdown_now's own snapshot of the same path.
    let saver = {
        let handle = handle.clone();
        let path = path.clone();
        std::thread::spawn(move || handle.save_snapshot(&path))
    };
    std::thread::sleep(Duration::from_millis(rng.gen_range(0..3)));
    service.shutdown_now();
    // The manual save may succeed or fail typed; it must not panic.
    if saver.join().is_err() {
        let _ = std::fs::remove_file(&path);
        return Some("manual snapshot save panicked".to_string());
    }
    // Whatever file won the race: the next start either warms from it or
    // reports a typed decode error and stays cold — and serves either way.
    let revived = Service::with_config(config);
    let handle = revived.handle();
    let warm = handle.warm_status();
    let verdict = (|| {
        match warm {
            Some(Ok(_)) | Some(Err(_)) => {}
            None => return Err("snapshot file vanished after two saves".to_string()),
        }
        let id = handle
            .submit(base_spec(rng))
            .map_err(|e| format!("post-restart submit: {e}"))?;
        handle
            .wait(id, TERMINAL_BOUND)
            .map_err(|e| format!("post-restart run: {e}"))?;
        Ok(())
    })();
    revived.shutdown();
    let _ = std::fs::remove_file(&path);
    verdict.err()
}

fn full_ring_respawn(rng: &mut StdRng) -> Option<String> {
    let capacity = rng.gen_range(2..5);
    let service = Service::with_config(ServiceConfig {
        workers: 1,
        queue_capacity: capacity,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    // The pin panics once and retries: the single worker dies and the
    // supervisor respawns it while the flood below slams the full ring.
    let pin = base_spec(rng)
        .with_faults(JobFaults {
            panic_attempts: 1,
            fail_attempts: 0,
        })
        .with_retry(RetryPolicy {
            max_attempts: 2,
            backoff_base_ms: rng.gen_range(1..5),
            jitter_seed: rng.gen_range(0..1_000),
        });
    let pin_id = match handle.submit(pin) {
        Ok(id) => id,
        Err(e) => return Some(format!("pin submit: {e}")),
    };
    let mut admitted = vec![pin_id];
    let mut rejected = 0_u32;
    for _ in 0..(capacity * 6) {
        match handle.submit(base_spec(rng)) {
            Ok(id) => admitted.push(id),
            Err(ServiceError::QueueFull {
                capacity: reported,
            }) => {
                if reported != capacity {
                    return Some(format!(
                        "QueueFull reported capacity {reported}, configured {capacity}"
                    ));
                }
                rejected += 1;
            }
            Err(e) => return Some(format!("flood submit: {e}")),
        }
    }
    if rejected == 0 {
        return Some(format!(
            "flooding {} jobs past capacity {capacity} drew no QueueFull",
            capacity * 6
        ));
    }
    for id in admitted {
        match handle.wait(id, TERMINAL_BOUND) {
            Ok(_) => {}
            Err(ServiceError::WorkerPanic { .. }) => {}
            Err(ServiceError::WaitTimeout) => {
                return Some(format!("job {} stranded during respawn", id.0));
            }
            Err(other) => return Some(format!("unexpected terminal state: {other}")),
        }
    }
    if let Some(fail) = pool_heals(&handle, 1) {
        return Some(fail);
    }
    let stats = handle.stats();
    if stats.rejected < u64::from(rejected) {
        return Some("shed jobs were not counted in stats.rejected".to_string());
    }
    service.shutdown();
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_passes_once() {
        // One deterministic seed per scenario index: walk seeds until each
        // scenario has been exercised at least once.
        let mut seen = std::collections::HashSet::new();
        let mut seed = 0xC0FFEE_u64;
        let mut guard = 0;
        while seen.len() < SCENARIOS.len() && guard < 200 {
            let report = run_case(seed);
            assert!(
                report.failure.is_none(),
                "seed {} scenario {:?} failed: {:?}",
                report.seed,
                report.scenario,
                report.failure
            );
            seen.insert(format!("{:?}", report.scenario));
            seed = seed.wrapping_add(CASE_SEED_STRIDE);
            guard += 1;
        }
        assert_eq!(seen.len(), SCENARIOS.len(), "not every scenario was hit");
    }

    #[test]
    fn campaign_replay_is_deterministic() {
        let a = run_campaign(42, 12);
        let b = run_campaign(42, 12);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.passed, b.passed);
        assert_eq!(
            a.failures.iter().map(|f| f.seed).collect::<Vec<_>>(),
            b.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
        );
    }
}
