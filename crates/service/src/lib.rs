//! qca-service: the accelerator serving runtime.
//!
//! Turns the single-shot [`qca_core::FullStack`] pipeline into a served
//! accelerator in the sense of the paper's full-stack architecture (the
//! quantum device as a co-processor behind a queue, not a library call):
//!
//! - **Content-addressed plan cache** ([`PlanCache`]): compiled artifacts
//!   keyed by FNV-1a over (canonical cQASM, platform, compiler options,
//!   qubit model); repeat submissions skip compilation entirely.
//! - **Job scheduler** ([`Service`]): bounded lock-free admission with
//!   priorities, per-job deadlines, cancellation and typed backpressure;
//!   identical queued jobs coalesce into one execution, and a per-tenant
//!   deficit-round-robin dequeue ([`tenant`]) keeps adversarial clients
//!   from starving each other.
//! - **Worker pool**: `std::thread` workers dispatch per-job engines
//!   (state-vector or density-matrix) and split large sweeps into
//!   shot-range shards whose merged histogram is bit-identical to a
//!   single-worker run.
//! - **Front-ends**: the in-process [`ServiceHandle`] and a
//!   newline-delimited-JSON TCP server ([`TcpServer`], the `qca-serve`
//!   binary).
//!
//! Std-only by design: no async runtime, no serde — admission is a
//! lock-free MPMC ring ([`ring`]) per tenant (the scheduler's `Mutex` +
//! `Condvar` remain only for worker parking and settlement), the wire
//! format reuses `qca_telemetry`'s JSON, and the plan cache can persist
//! itself to a checksummed on-disk snapshot ([`snapshot`]) for instant
//! warm starts.
//!
//! ```
//! use qca_service::{JobSpec, Service};
//! use std::time::Duration;
//!
//! let service = Service::start();
//! let handle = service.handle();
//! let job = handle
//!     .submit(JobSpec::new("qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n"))
//!     .unwrap();
//! let outcome = handle.wait(job, Duration::from_secs(10)).unwrap();
//! assert_eq!(outcome.histogram.shots(), 1000);
//! service.shutdown();
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod cache;
pub mod chaos;
pub mod hash;
pub mod job;
pub mod ring;
pub mod service;
pub mod snapshot;
pub mod tcp;
pub mod tenant;
pub mod wire;

pub use cache::{artifact_key, CacheStats, CompiledArtifact, PlanCache};
pub use hash::{fnv1a, Fnv64};
pub use job::{
    Engine, JobFaults, JobId, JobLifecycle, JobOutcome, JobSpec, JobStatus, RetryPolicy,
    ServiceError,
};
pub use ring::Ring;
pub use service::{
    LatencySummary, PlatformSpec, Service, ServiceConfig, ServiceHandle, ServiceStats, TcpStats,
    TenantStat,
};
pub use snapshot::{
    decode_snapshot, encode_snapshot, read_snapshot, write_snapshot, SnapshotEntry, SnapshotError,
    SnapshotReport, SNAPSHOT_VERSION,
};
pub use tcp::{TcpConfig, TcpServer, MAX_REQUEST_BYTES};
pub use tenant::{DrrQueue, TenantConfig};
