//! The TCP front-end: newline-delimited JSON over a loopback socket.
//!
//! Each accepted connection gets its own thread running a simple
//! read-line → [`crate::wire::handle_line`] → write-line loop, so a
//! client blocked in a long `result` wait never stalls other clients.
//! The accept loop itself runs on a dedicated thread; [`TcpServer`] hands
//! back the bound address (bind to port 0 to let the OS pick).
//!
//! # Hardening
//!
//! The front-end defends itself against misbehaving clients:
//!
//! - **Bounded frames**: a request line longer than
//!   [`TcpConfig::max_request_bytes`] is answered with a typed
//!   `frame_too_large` error and the connection is closed — the server
//!   never buffers an unbounded line (`service.tcp.oversized`).
//! - **Read/write timeouts**: a client that stalls mid-line (slow loris)
//!   or stops draining responses is disconnected after
//!   [`TcpConfig::read_timeout`] / [`TcpConfig::write_timeout`]
//!   (`service.tcp.timeouts`).
//! - **Connection cap**: beyond [`TcpConfig::max_connections`] concurrent
//!   clients, new connections receive an immediate `overloaded` response
//!   and are dropped instead of spawning a thread (`service.tcp.shed`).
//! - **Graceful stop**: [`TcpServer::stop`] stops accepting, then waits
//!   up to [`TcpConfig::drain_timeout`] for in-flight connections to
//!   finish their current line.

use crate::service::ServiceHandle;
use crate::wire;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Limits applied to every client connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Longest accepted request line in bytes (excluding the newline).
    /// Longer frames get a `frame_too_large` error and a disconnect.
    pub max_request_bytes: usize,
    /// How long a connection may sit idle (or stall mid-line) before it
    /// is dropped. `None` disables the read timeout.
    pub read_timeout: Option<Duration>,
    /// How long a response write may block before the client is dropped.
    /// `None` disables the write timeout.
    pub write_timeout: Option<Duration>,
    /// Concurrent-connection cap; connections beyond it are shed with an
    /// `overloaded` response instead of a serving thread.
    pub max_connections: usize,
    /// How long [`TcpServer::stop`] waits for in-flight connections to
    /// drain before returning anyway.
    pub drain_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_request_bytes: MAX_REQUEST_BYTES,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            max_connections: 64,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Default request-frame bound: far above any realistic circuit in this
/// stack, far below anything that could pressure memory.
pub const MAX_REQUEST_BYTES: usize = 256 * 1024;

/// A running TCP front-end.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<AtomicUsize>,
    drain_timeout: Duration,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, or `"127.0.0.1:0"` for an
    /// OS-assigned port) and starts serving the handle with the default
    /// [`TcpConfig`] limits.
    ///
    /// # Errors
    ///
    /// Propagates bind and accept-thread spawn failures — a server whose
    /// accept loop never started must not report success.
    pub fn bind(addr: &str, handle: ServiceHandle) -> std::io::Result<TcpServer> {
        Self::bind_with(addr, handle, TcpConfig::default())
    }

    /// [`TcpServer::bind`] with explicit limits.
    ///
    /// # Errors
    ///
    /// Propagates bind and accept-thread spawn failures.
    pub fn bind_with(
        addr: &str,
        handle: ServiceHandle,
        config: TcpConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(AtomicUsize::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name("qca-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &handle, &accept_stop, &accept_conns, config))?;
        Ok(TcpServer {
            addr,
            stop,
            conns,
            drain_timeout: config.drain_timeout,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections, joins the accept thread and
    /// waits (up to the configured drain timeout) for in-flight
    /// connections to finish their current line loop.
    pub fn stop(mut self) {
        self.shut_down();
    }

    /// Signals the accept loop, joins it, then drains connections.
    /// Idempotent: `stop()` followed by `Drop` (or a second call) is a
    /// no-op, and a dead listener only costs a failed poke.
    fn shut_down(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Poke the accept loop awake with a throwaway connection so
            // it observes the flag without a non-blocking listener. The
            // listener may already be gone — that also unblocks accept.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + self.drain_timeout;
        while self.conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shut_down();
    }
}

/// Decrements the live-connection count when a serving thread exits,
/// however it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: &TcpListener,
    handle: &ServiceHandle,
    stop: &AtomicBool,
    conns: &Arc<AtomicUsize>,
    config: TcpConfig,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Load shedding: answer and drop instead of spawning a thread.
        if conns.load(Ordering::SeqCst) >= config.max_connections.max(1) {
            handle.note_tcp_shed();
            shed_connection(&stream);
            continue;
        }
        conns.fetch_add(1, Ordering::SeqCst);
        let guard = ConnGuard(Arc::clone(conns));
        let handle = handle.clone();
        // On spawn failure the guard and stream drop: the count is
        // restored and the client sees a closed connection — it can
        // retry; the accept loop keeps running.
        let _ = std::thread::Builder::new()
            .name("qca-serve-conn".to_string())
            .spawn(move || {
                let _guard = guard;
                serve_connection_with(&stream, &handle, config);
            });
    }
}

/// Tells a shed client why it was dropped (best effort, bounded wait).
fn shed_connection(stream: &TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut writer = BufWriter::new(stream);
    let response = wire::error_response("overloaded", "connection limit reached, retry later");
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Serves one connection with the default limits. Kept for embedders
/// that accept their own sockets.
pub fn serve_connection(stream: &TcpStream, handle: &ServiceHandle) {
    serve_connection_with(stream, handle, TcpConfig::default());
}

/// Serves one connection: one JSON request per line, one JSON response
/// per line, until the client closes, sends an oversized frame, stalls
/// past a timeout, or an I/O error occurs.
pub fn serve_connection_with(stream: &TcpStream, handle: &ServiceHandle, config: TcpConfig) {
    if stream.set_read_timeout(config.read_timeout).is_err()
        || stream.set_write_timeout(config.write_timeout).is_err()
    {
        return;
    }
    // Request/response lines are tiny; without TCP_NODELAY, Nagle plus
    // delayed ACKs pins every round trip at ~40ms.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let max = config.max_request_bytes;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        // Read at most one byte past the limit: if no newline arrived by
        // then the frame is oversized and the client is cut off before it
        // can make the server buffer arbitrarily much.
        let read = (&mut reader)
            .take(max as u64 + 1)
            .read_until(b'\n', &mut buf);
        match read {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e) => {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    handle.note_tcp_timeout();
                }
                return;
            }
        }
        if buf.last() != Some(&b'\n') && buf.len() > max {
            handle.note_tcp_oversized();
            let response = wire::error_response(
                "frame_too_large",
                &format!("request line exceeds {max} bytes"),
            );
            let _ = writer.write_all(response.as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
            return;
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let response = wire::handle_line(handle, line);
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            return;
        }
    }
}
