//! The TCP front-end: newline-delimited JSON over a loopback socket.
//!
//! Each accepted connection gets its own thread running a simple
//! read-line → [`crate::wire::handle_line`] → write-line loop, so a
//! client blocked in a long `result` wait never stalls other clients.
//! The accept loop itself runs on a dedicated thread; [`TcpServer`] hands
//! back the bound address (bind to port 0 to let the OS pick).

use crate::service::ServiceHandle;
use crate::wire;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running TCP front-end.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, or `"127.0.0.1:0"` for an
    /// OS-assigned port) and starts serving the handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, handle: ServiceHandle) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("qca-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &handle, &accept_stop))
            .ok();
        Ok(TcpServer {
            addr,
            stop,
            accept_thread,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Connections already being served finish their current line loop
    /// when the client disconnects.
    pub fn stop(mut self) {
        self.signal_stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn signal_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop awake with a throwaway connection so it
        // observes the flag without needing a non-blocking listener.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.signal_stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, handle: &ServiceHandle, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let handle = handle.clone();
        // On spawn failure the stream drops and the client sees a closed
        // connection — it can retry; the accept loop keeps running.
        let _ = std::thread::Builder::new()
            .name("qca-serve-conn".to_string())
            .spawn(move || serve_connection(&stream, &handle));
    }
}

/// Serves one connection: one JSON request per line, one JSON response
/// per line, until the client closes or an I/O error occurs.
pub fn serve_connection(stream: &TcpStream, handle: &ServiceHandle) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let response = wire::handle_line(handle, &line);
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            return;
        }
    }
}
