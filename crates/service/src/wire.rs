//! The newline-delimited JSON wire protocol spoken by `qca-serve`.
//!
//! One request per line, one response per line. Requests are JSON objects
//! with a `"verb"` field; responses always carry `"ok"` (boolean) and, on
//! failure, `"error"` (a stable kind string) plus `"message"`.
//!
//! | verb     | request fields                                        | response |
//! |----------|-------------------------------------------------------|----------|
//! | `submit` | `circuit` (required), `shots`, `seed`, `priority`, `deadline_ms`, `engine` (`statevector`/`density`), `force_engine` (`statevector`/`tableau`/`pauli_frame`/`density` — pins the engine, bypassing class-based dispatch), `qubits` (`perfect`/`transmon`), `tenant` (fair-dequeue lane name; unconfigured names fold onto `default`) | `{"ok":true,"job":N}` |
//! | `status` | `job`                                                 | `{"ok":true,"job":N,"status":"queued"...}` |
//! | `result` | `job`, `timeout_ms` (default 30000)                   | status + `histogram` + cache/batch/latency fields |
//! | `cancel` | `job`                                                 | `{"ok":true,"cancelled":bool}` |
//! | `stats`  | —                                                     | service + cache + tcp counters, latency percentiles, per-tenant `tenants` array |
//! | `metrics`| `format` (`json` default, or `prometheus`)            | the full telemetry snapshot: embedded JSON report or Prometheus text in `"metrics"` |
//! | `trace`  | `job`                                                 | the job's lifecycle record (admit/claim/compile/execute/settle stamps + `sampled`) |
//!
//! Histogram keys are the measured bit pattern (qubit 0 = least
//! significant bit) rendered in decimal, values are shot counts.

use crate::job::{
    Engine, JobFaults, JobId, JobLifecycle, JobSpec, JobStatus, RetryPolicy, ServiceError,
};
use crate::service::{ServiceHandle, ServiceStats};
use qca_core::QubitKind;
use qca_telemetry::export::escape;
use qca_telemetry::json::{self, JsonValue};
use qxsim::ShotHistogram;
use std::time::Duration;

/// Default `result` wait when the request does not set `timeout_ms`.
pub const DEFAULT_RESULT_TIMEOUT_MS: u64 = 30_000;

/// A decoded wire request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job.
    Submit(JobSpec),
    /// Query a job's status without blocking.
    Status(JobId),
    /// Block (up to the timeout) for a job's outcome.
    Result {
        /// The job to wait for.
        id: JobId,
        /// Maximum wait in milliseconds.
        timeout_ms: u64,
    },
    /// Cancel a queued job.
    Cancel(JobId),
    /// Service counters.
    Stats,
    /// The full telemetry snapshot in the requested format.
    Metrics(MetricsFormat),
    /// A job's lifecycle record.
    Trace(JobId),
}

/// Which exposition the `metrics` verb returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// The JSON metrics report, embedded as an object in the response.
    #[default]
    Json,
    /// Prometheus text exposition, embedded as an escaped string.
    Prometheus,
}

impl MetricsFormat {
    /// The wire name of this format.
    pub fn name(self) -> &'static str {
        match self {
            MetricsFormat::Json => "json",
            MetricsFormat::Prometheus => "prometheus",
        }
    }
}

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(JsonValue::as_f64).map(|n| n as u64)
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message for malformed JSON, a missing/unknown verb or
/// missing required fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line)?;
    let verb = v
        .get("verb")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing \"verb\"".to_string())?;
    let job_id = || -> Result<JobId, String> {
        get_u64(&v, "job")
            .map(JobId)
            .ok_or_else(|| "missing \"job\"".to_string())
    };
    match verb {
        "submit" => {
            let circuit = v
                .get("circuit")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "missing \"circuit\"".to_string())?;
            let mut spec = JobSpec::new(circuit);
            if let Some(shots) = get_u64(&v, "shots") {
                spec.shots = shots;
            }
            if let Some(seed) = get_u64(&v, "seed") {
                spec.seed = seed;
            }
            if let Some(priority) = get_u64(&v, "priority") {
                spec.priority = u8::try_from(priority.min(255)).unwrap_or(u8::MAX);
            }
            if let Some(deadline) = get_u64(&v, "deadline_ms") {
                spec.deadline_ms = Some(deadline);
            }
            if let Some(engine) = v.get("engine").and_then(JsonValue::as_str) {
                spec.engine =
                    Engine::parse(engine).ok_or_else(|| format!("unknown engine {engine:?}"))?;
            }
            if let Some(forced) = v.get("force_engine").and_then(JsonValue::as_str) {
                spec.force_engine = Some(
                    Engine::parse(forced)
                        .ok_or_else(|| format!("unknown force_engine {forced:?}"))?,
                );
            }
            if let Some(qubits) = v.get("qubits").and_then(JsonValue::as_str) {
                spec.qubits = match qubits {
                    "perfect" => QubitKind::Perfect,
                    "transmon" => QubitKind::real_transmon(),
                    other => return Err(format!("unknown qubit model {other:?}")),
                };
            }
            if let Some(tenant) = v.get("tenant").and_then(JsonValue::as_str) {
                spec.tenant = Some(tenant.to_string());
            }
            if let Some(attempts) = get_u64(&v, "retry_max_attempts") {
                spec.retry.max_attempts = u32::try_from(attempts).unwrap_or(u32::MAX).max(1);
            }
            if let Some(backoff) = get_u64(&v, "retry_backoff_ms") {
                spec.retry.backoff_base_ms = backoff;
            }
            if let Some(jitter) = get_u64(&v, "retry_jitter_seed") {
                spec.retry.jitter_seed = jitter;
            }
            if let Some(panics) = get_u64(&v, "fault_panic_attempts") {
                spec.faults.panic_attempts = u32::try_from(panics).unwrap_or(u32::MAX);
            }
            if let Some(fails) = get_u64(&v, "fault_fail_attempts") {
                spec.faults.fail_attempts = u32::try_from(fails).unwrap_or(u32::MAX);
            }
            Ok(Request::Submit(spec))
        }
        "status" => Ok(Request::Status(job_id()?)),
        "result" => Ok(Request::Result {
            id: job_id()?,
            timeout_ms: get_u64(&v, "timeout_ms").unwrap_or(DEFAULT_RESULT_TIMEOUT_MS),
        }),
        "cancel" => Ok(Request::Cancel(job_id()?)),
        "stats" => Ok(Request::Stats),
        "metrics" => {
            let format = match v.get("format").and_then(JsonValue::as_str) {
                None | Some("json") => MetricsFormat::Json,
                Some("prometheus") => MetricsFormat::Prometheus,
                Some(other) => return Err(format!("unknown metrics format {other:?}")),
            };
            Ok(Request::Metrics(format))
        }
        "trace" => Ok(Request::Trace(job_id()?)),
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// Encodes a request as one wire line — the inverse of [`parse_request`]:
/// `parse_request(&encode_request(&r)) == Ok(r)` for every request the
/// wire can represent.
///
/// Two representability caveats, both inherited from the JSON wire
/// format: the `qubits` field can only name the `perfect` and `transmon`
/// models (any other [`QubitKind`] is omitted and decodes to the
/// default, perfect qubits), and integers above 2^53 lose precision in
/// JSON numbers.
pub fn encode_request(request: &Request) -> String {
    match request {
        Request::Submit(spec) => {
            let mut out = format!(
                "{{\"verb\":\"submit\",\"circuit\":\"{}\",\"shots\":{},\"seed\":{},\"priority\":{},\"engine\":\"{}\"",
                escape(&spec.circuit),
                spec.shots,
                spec.seed,
                spec.priority,
                spec.engine.name(),
            );
            if let Some(deadline) = spec.deadline_ms {
                out.push_str(&format!(",\"deadline_ms\":{deadline}"));
            }
            if let Some(forced) = spec.force_engine {
                out.push_str(&format!(",\"force_engine\":\"{}\"", forced.name()));
            }
            match spec.qubits {
                QubitKind::Perfect => out.push_str(",\"qubits\":\"perfect\""),
                k if k == QubitKind::real_transmon() => out.push_str(",\"qubits\":\"transmon\""),
                _ => {}
            }
            if let Some(tenant) = &spec.tenant {
                out.push_str(&format!(",\"tenant\":\"{}\"", escape(tenant)));
            }
            if spec.retry != RetryPolicy::none() {
                out.push_str(&format!(
                    ",\"retry_max_attempts\":{},\"retry_backoff_ms\":{},\"retry_jitter_seed\":{}",
                    spec.retry.max_attempts, spec.retry.backoff_base_ms, spec.retry.jitter_seed
                ));
            }
            if spec.faults != JobFaults::none() {
                out.push_str(&format!(
                    ",\"fault_panic_attempts\":{},\"fault_fail_attempts\":{}",
                    spec.faults.panic_attempts, spec.faults.fail_attempts
                ));
            }
            out.push('}');
            out
        }
        Request::Status(id) => format!("{{\"verb\":\"status\",\"job\":{}}}", id.0),
        Request::Result { id, timeout_ms } => format!(
            "{{\"verb\":\"result\",\"job\":{},\"timeout_ms\":{timeout_ms}}}",
            id.0
        ),
        Request::Cancel(id) => format!("{{\"verb\":\"cancel\",\"job\":{}}}", id.0),
        Request::Stats => "{\"verb\":\"stats\"}".to_string(),
        Request::Metrics(format) => {
            format!("{{\"verb\":\"metrics\",\"format\":\"{}\"}}", format.name())
        }
        Request::Trace(id) => format!("{{\"verb\":\"trace\",\"job\":{}}}", id.0),
    }
}

fn error_kind(err: &ServiceError) -> &'static str {
    match err {
        ServiceError::QueueFull { .. } => "queue_full",
        ServiceError::TenantQuotaExceeded { .. } => "tenant_quota",
        ServiceError::Parse(_) => "parse",
        ServiceError::Compile(_) => "compile",
        ServiceError::Execute(_) => "execute",
        ServiceError::DeadlineExceeded { .. } => "deadline",
        ServiceError::UnknownJob(_) => "unknown_job",
        ServiceError::Cancelled => "cancelled",
        ServiceError::ShuttingDown => "shutting_down",
        ServiceError::WaitTimeout => "timeout",
        ServiceError::WorkerPanic { .. } => "worker_panic",
    }
}

pub(crate) fn error_response(kind: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}",
        escape(kind),
        escape(message)
    )
}

fn histogram_json(hist: &ShotHistogram) -> String {
    let mut out = String::from("{");
    for (i, (bits, count)) in hist.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{bits}\":{count}"));
    }
    out.push('}');
    out
}

fn tenants_json(stats: &ServiceStats) -> String {
    let mut out = String::from("[");
    for (i, t) in stats.tenants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "{{\"name\":\"{}\",\"weight\":{},\"quota\":{},\"queued\":{},",
                "\"submitted\":{},\"completed\":{},\"shed\":{}}}"
            ),
            escape(&t.name),
            t.weight,
            t.quota
                .map_or_else(|| "null".to_string(), |q| q.to_string()),
            t.queued,
            t.submitted,
            t.completed,
            t.shed,
        ));
    }
    out.push(']');
    out
}

fn stats_json(stats: &ServiceStats) -> String {
    format!(
        concat!(
            "{{\"ok\":true,\"submitted\":{},\"completed\":{},\"failed\":{},",
            "\"cancelled\":{},\"rejected\":{},\"coalesced\":{},\"queued\":{},",
            "\"running\":{},\"workers\":{},\"workers_live\":{},\"panics\":{},",
            "\"respawns\":{},\"retries_scheduled\":{},\"retries_exhausted\":{},",
            "\"cache\":{{\"hits\":{},\"misses\":{},",
            "\"evictions\":{},\"entries\":{},\"capacity\":{}}},",
            "\"tcp\":{{\"shed\":{},\"oversized\":{},\"timeouts\":{}}},",
            "\"latency\":{{\"queue_wait_p50_us\":{},\"queue_wait_p99_us\":{},",
            "\"execute_p50_us\":{},\"execute_p99_us\":{},",
            "\"e2e_p50_us\":{},\"e2e_p99_us\":{},\"jobs_measured\":{}}},",
            "\"tenants\":{}}}"
        ),
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.cancelled,
        stats.rejected,
        stats.coalesced,
        stats.queued,
        stats.running,
        stats.workers,
        stats.workers_live,
        stats.panics,
        stats.respawns,
        stats.retries_scheduled,
        stats.retries_exhausted,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
        stats.cache.entries,
        stats.cache.capacity,
        stats.tcp.shed,
        stats.tcp.oversized,
        stats.tcp.timeouts,
        stats.latency.queue_wait_p50_us,
        stats.latency.queue_wait_p99_us,
        stats.latency.execute_p50_us,
        stats.latency.execute_p99_us,
        stats.latency.e2e_p50_us,
        stats.latency.e2e_p99_us,
        stats.latency.jobs_measured,
        tenants_json(stats),
    )
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn trace_json(lc: &JobLifecycle) -> String {
    format!(
        concat!(
            "{{\"ok\":true,\"job\":{},\"sampled\":{},\"status\":\"{}\",",
            "\"priority\":{},\"attempts\":{},\"admit_us\":{},\"claim_us\":{},",
            "\"compile_us\":{},\"exec_start_us\":{},\"settle_us\":{}}}"
        ),
        lc.job.0,
        lc.sampled,
        escape(&lc.status),
        lc.priority,
        lc.attempts,
        lc.admit_us,
        opt_u64(lc.claim_us),
        opt_u64(lc.compile_us),
        opt_u64(lc.exec_start_us),
        opt_u64(lc.settle_us),
    )
}

fn metrics_response(handle: &ServiceHandle, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Json => {
            // Re-parse the pretty report and embed it compactly so the
            // response stays one line.
            let report = handle.telemetry().export_json();
            match json::parse(&report) {
                Ok(v) => format!(
                    "{{\"ok\":true,\"format\":\"json\",\"metrics\":{}}}",
                    v.to_compact()
                ),
                Err(e) => error_response("internal", &format!("metrics report invalid: {e}")),
            }
        }
        MetricsFormat::Prometheus => format!(
            "{{\"ok\":true,\"format\":\"prometheus\",\"metrics\":\"{}\"}}",
            escape(&handle.telemetry().export_prometheus())
        ),
    }
}

/// Serves one request line against the service, returning exactly one
/// JSON response line (without the trailing newline). Never fails: every
/// problem becomes an `"ok":false` response.
pub fn handle_line(handle: &ServiceHandle, line: &str) -> String {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => return error_response("bad_request", &msg),
    };
    match request {
        Request::Submit(spec) => match handle.submit(spec) {
            Ok(id) => format!("{{\"ok\":true,\"job\":{}}}", id.0),
            Err(err) => error_response(error_kind(&err), &err.to_string()),
        },
        Request::Status(id) => match handle.poll(id) {
            Ok(status) => format!(
                "{{\"ok\":true,\"job\":{},\"status\":\"{}\"}}",
                id.0,
                status.name()
            ),
            Err(err) => error_response(error_kind(&err), &err.to_string()),
        },
        Request::Result { id, timeout_ms } => {
            match handle.wait(id, Duration::from_millis(timeout_ms)) {
                Ok(outcome) => format!(
                    concat!(
                        "{{\"ok\":true,\"job\":{},\"status\":\"done\",",
                        "\"histogram\":{},\"shots\":{},\"cache_hit\":{},",
                        "\"batch_size\":{},\"shards\":{},\"wait_us\":{},\"exec_us\":{},",
                        "\"attempts\":{},\"engine\":\"{}\",\"class\":\"{}\"}}"
                    ),
                    id.0,
                    histogram_json(&outcome.histogram),
                    outcome.histogram.shots(),
                    outcome.cache_hit,
                    outcome.batch_size,
                    outcome.shards,
                    outcome.wait_us,
                    outcome.exec_us,
                    outcome.attempts,
                    outcome.engine,
                    outcome.class,
                ),
                Err(err) => error_response(error_kind(&err), &err.to_string()),
            }
        }
        Request::Cancel(id) => match handle.cancel(id) {
            Ok(cancelled) => format!("{{\"ok\":true,\"cancelled\":{cancelled}}}"),
            Err(err) => error_response(error_kind(&err), &err.to_string()),
        },
        Request::Stats => stats_json(&handle.stats()),
        Request::Metrics(format) => metrics_response(handle, format),
        Request::Trace(id) => match handle.lifecycle(id) {
            Ok(lc) => trace_json(&lc),
            Err(err) => error_response(error_kind(&err), &err.to_string()),
        },
    }
}

/// Whether a status means the wire client should keep polling.
pub fn status_is_pending(status: &JobStatus) -> bool {
    !status.is_terminal()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_submit() {
        let line = concat!(
            "{\"verb\":\"submit\",\"circuit\":\"qubits 1\\nx q[0]\\n\",",
            "\"shots\":64,\"seed\":9,\"priority\":2,\"deadline_ms\":100,",
            "\"engine\":\"density\",\"qubits\":\"transmon\"}"
        );
        let Request::Submit(spec) = parse_request(line).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(spec.circuit, "qubits 1\nx q[0]\n");
        assert_eq!(spec.shots, 64);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.priority, 2);
        assert_eq!(spec.deadline_ms, Some(100));
        assert_eq!(spec.engine, Engine::DensityMatrix);
    }

    #[test]
    fn parses_force_engine() {
        let line = concat!(
            "{\"verb\":\"submit\",\"circuit\":\"qubits 1\\nh q[0]\\n\",",
            "\"force_engine\":\"tableau\"}"
        );
        let Request::Submit(spec) = parse_request(line).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(spec.force_engine, Some(Engine::Tableau));
        assert!(parse_request(
            "{\"verb\":\"submit\",\"circuit\":\"qubits 1\\nh q[0]\\n\",\"force_engine\":\"abacus\"}"
        )
        .is_err());
    }

    #[test]
    fn parses_and_encodes_tenant() {
        let line = concat!(
            "{\"verb\":\"submit\",\"circuit\":\"qubits 1\\nh q[0]\\n\",",
            "\"tenant\":\"batch\"}"
        );
        let Request::Submit(spec) = parse_request(line).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(spec.tenant.as_deref(), Some("batch"));
        let encoded = encode_request(&Request::Submit(spec));
        assert!(encoded.contains("\"tenant\":\"batch\""));
        // Omitted tenant stays None (routes to the default lane).
        let Request::Submit(spec) =
            parse_request("{\"verb\":\"submit\",\"circuit\":\"qubits 1\\nh q[0]\\n\"}").unwrap()
        else {
            panic!("expected submit");
        };
        assert_eq!(spec.tenant, None);
    }

    #[test]
    fn submit_defaults_match_jobspec_defaults() {
        let line = "{\"verb\":\"submit\",\"circuit\":\"qubits 1\\nh q[0]\\n\"}";
        let Request::Submit(spec) = parse_request(line).unwrap() else {
            panic!("expected submit");
        };
        let fresh = JobSpec::new("qubits 1\nh q[0]\n");
        assert_eq!(spec.shots, fresh.shots);
        assert_eq!(spec.seed, fresh.seed);
        assert_eq!(spec.engine, fresh.engine);
        assert_eq!(spec.deadline_ms, None);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"verb\":\"submit\"}").is_err());
        assert!(parse_request("{\"verb\":\"status\"}").is_err());
        assert!(parse_request("{\"verb\":\"frobnicate\"}").is_err());
        assert!(parse_request("{\"circuit\":\"x\"}").is_err());
        assert!(parse_request("{\"verb\":\"trace\"}").is_err());
        assert!(parse_request("{\"verb\":\"metrics\",\"format\":\"xml\"}").is_err());
    }

    #[test]
    fn metrics_defaults_to_json_format() {
        assert_eq!(
            parse_request("{\"verb\":\"metrics\"}"),
            Ok(Request::Metrics(MetricsFormat::Json))
        );
    }

    #[test]
    fn encode_then_parse_is_identity_on_every_verb() {
        let mut spec = JobSpec::new("qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n");
        spec.shots = 1234;
        spec.seed = 42;
        spec.priority = 3;
        spec.deadline_ms = Some(500);
        spec.engine = Engine::DensityMatrix;
        spec.force_engine = Some(Engine::PauliFrame);
        spec.qubits = QubitKind::real_transmon();
        spec.tenant = Some("team-\"alpha\"".to_string());
        for req in [
            Request::Submit(spec),
            Request::Status(JobId(7)),
            Request::Result {
                id: JobId(9),
                timeout_ms: 100,
            },
            Request::Cancel(JobId(3)),
            Request::Stats,
            Request::Metrics(MetricsFormat::Json),
            Request::Metrics(MetricsFormat::Prometheus),
            Request::Trace(JobId(11)),
        ] {
            let line = encode_request(&req);
            assert_eq!(
                parse_request(&line),
                Ok(req),
                "round-trip failed for {line}"
            );
        }
    }

    #[test]
    fn encoded_circuit_newlines_survive_the_wire() {
        let req = Request::Submit(JobSpec::new("qubits 1\nx q[0]\nmeasure_all\n"));
        let line = encode_request(&req);
        assert!(!line.contains('\n'), "wire lines must be single lines");
        let Request::Submit(spec) = parse_request(&line).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(spec.circuit, "qubits 1\nx q[0]\nmeasure_all\n");
    }

    #[test]
    fn histogram_renders_as_decimal_keyed_object() {
        let mut hist = ShotHistogram::new();
        hist.record_many(0, 3);
        hist.record_many(3, 5);
        assert_eq!(histogram_json(&hist), "{\"0\":3,\"3\":5}");
        let parsed = json::parse(&histogram_json(&hist)).unwrap();
        assert_eq!(parsed.get("3").and_then(JsonValue::as_f64), Some(5.0));
    }

    #[test]
    fn error_responses_are_valid_json() {
        let resp = error_response("parse", "line 1: \"oops\"\nnewline");
        let parsed = json::parse(&resp).unwrap();
        assert_eq!(parsed.get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(
            parsed.get("error").and_then(JsonValue::as_str),
            Some("parse")
        );
    }
}
