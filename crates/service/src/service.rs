//! The serving runtime: admission queue, coalescing scheduler, worker
//! pool, shot sharding and the in-process client handle.
//!
//! # Scheduling model
//!
//! Submission parses and content-hashes the circuit, then admits the job
//! through a *lock-free* path: capacity and per-tenant quota are
//! reserved with atomic counters (a full queue rejects with
//! [`ServiceError::QueueFull`], an exhausted tenant with
//! [`ServiceError::TenantQuotaExceeded`] — backpressure, not buffering)
//! and the job is pushed into its tenant's bounded MPMC ring
//! ([`crate::ring::Ring`]) without ever touching the scheduler mutex.
//! Workers drain the rings into per-tenant priority heaps (higher
//! priority first, FIFO within a priority) and dequeue across tenants
//! with a deficit-round-robin picker ([`crate::tenant::DrrQueue`]), so
//! no client can starve another. Worker threads then:
//!
//! 1. **Coalesce** — every still-queued job with the same execution key
//!    (circuit hash + seed + shots + engine + model) is batched and served
//!    by this one execution.
//! 2. **Resolve the plan** — the content-addressed [`PlanCache`] either
//!    hands back a shared `Arc` (hit: no compile work, no compile span) or
//!    the worker compiles and inserts (miss).
//! 3. **Execute** — large state-vector sweeps are split into shot-range
//!    shards re-enqueued for the whole pool; per-shot counter-derived RNG
//!    streams make the merged histogram bit-identical to a single-worker
//!    run (see [`qxsim::Simulator::run_shot_range`]).
//!
//! Results are delivered through [`ServiceHandle::wait`]/`poll`; every
//! stage records telemetry (queue depth, wait vs execute latency, cache
//! hit rate, batch and shard sizes) into the service's
//! [`qca_telemetry::Telemetry`] context.

use crate::cache::{artifact_key, CacheStats, CompiledArtifact, PlanCache};
use crate::hash::Fnv64;
use crate::job::{Engine, JobId, JobLifecycle, JobOutcome, JobSpec, JobStatus, ServiceError};
use crate::ring::Ring;
use crate::snapshot::{self, SnapshotError, SnapshotReport};
use crate::tenant::{DrrQueue, TenantConfig};
use openql::{Compiler, CompilerOptions, Platform};
use qca_telemetry::{LogHistogram, Telemetry};
use qxsim::{ExecuteError, ShotHistogram, Simulator};
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How the service chooses the compile platform for each job.
#[derive(Debug, Clone)]
pub enum PlatformSpec {
    /// A fully-connected perfect platform sized to each circuit (the
    /// application-development default).
    PerfectSized,
    /// One fixed platform shared by every job (circuits must fit it).
    Fixed(Platform),
}

impl PlatformSpec {
    fn platform_for(&self, qubit_count: usize) -> Platform {
        match self {
            PlatformSpec::PerfectSized => Platform::perfect(qubit_count),
            PlatformSpec::Fixed(p) => p.clone(),
        }
    }
}

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs (minimum 1).
    pub workers: usize,
    /// Admission queue capacity; submissions beyond it are rejected with
    /// [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Compiled-artifact cache capacity (entries).
    pub cache_capacity: usize,
    /// State-vector jobs with at least this many shots are split into
    /// per-worker shot-range shards.
    pub shard_min_shots: u64,
    /// Compile platform selection.
    pub platform: PlatformSpec,
    /// Compiler options applied to every job.
    pub options: CompilerOptions,
    /// Supervision budget: how many crashed workers the service will
    /// respawn over its lifetime. A panicking job is always converted
    /// into a typed failure; this budget only bounds pool healing, so a
    /// pathological workload cannot respawn-loop forever. If the budget
    /// runs out and the last worker dies, the service fails every queued
    /// job (instead of stranding waiters) and stops admission.
    pub max_respawns: u64,
    /// Chrome-trace span sampling: one job in `trace_sample_n` (chosen
    /// deterministically by content hash, `exec_key % n == 0`) emits
    /// per-stage lifecycle spans. `0` disables span emission entirely;
    /// `1` traces every job. Content-based sampling means the *same*
    /// jobs are traced on every run of a seeded workload.
    pub trace_sample_n: u64,
    /// Tenant lanes for the weighted fair dequeue. A `"default"` lane
    /// (weight 1, no quota) is always present; jobs naming no tenant or
    /// an unconfigured name land there. Empty = single-tenant service.
    pub tenants: Vec<TenantConfig>,
    /// Where to persist the plan cache across restarts. On start, a
    /// readable snapshot at this path warms the cache (sources are
    /// recompiled, so warm hits are bit-identical); a corrupt or
    /// version-skewed file is a typed warning and the cache starts cold.
    /// On shutdown the cache is snapshotted back. `None` disables
    /// persistence.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 256,
            cache_capacity: 64,
            shard_min_shots: 4096,
            platform: PlatformSpec::PerfectSized,
            options: CompilerOptions::default(),
            max_respawns: 8,
            trace_sample_n: 8,
            tenants: Vec::new(),
            snapshot_path: None,
        }
    }
}

/// Latency percentiles over everything the service has settled so far,
/// estimated from its internal [`LogHistogram`]s (~6% relative error).
/// All values are microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median admission-to-claim wait.
    pub queue_wait_p50_us: u64,
    /// 99th-percentile admission-to-claim wait.
    pub queue_wait_p99_us: u64,
    /// Median execution time (per attempt).
    pub execute_p50_us: u64,
    /// 99th-percentile execution time (per attempt).
    pub execute_p99_us: u64,
    /// Median end-to-end latency (admission to terminal state).
    pub e2e_p50_us: u64,
    /// 99th-percentile end-to-end latency.
    pub e2e_p99_us: u64,
    /// Jobs contributing to the end-to-end distribution.
    pub jobs_measured: u64,
}

/// TCP front-end counters (see `qca_service::tcp`), surfaced on
/// [`ServiceStats`] so they are queryable over the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Connections shed at the accept loop (over `max_connections`).
    pub shed: u64,
    /// Frames rejected for exceeding `max_request_bytes`.
    pub oversized: u64,
    /// Connections dropped for stalling past a read/write timeout.
    pub timeouts: u64,
}

/// Per-tenant counters, surfaced on [`ServiceStats`] and the `stats`
/// wire verb.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStat {
    /// The tenant's configured name (`"default"` for the built-in lane).
    pub name: String,
    /// DRR weight in force for this lane.
    pub weight: u32,
    /// Queued-job quota, if one is configured.
    pub quota: Option<usize>,
    /// Jobs this tenant currently has queued.
    pub queued: usize,
    /// Jobs this tenant has had admitted.
    pub submitted: u64,
    /// Jobs this tenant has had finish successfully.
    pub completed: u64,
    /// Submissions shed for this tenant (global backpressure or its own
    /// quota).
    pub shed: u64,
}

/// A snapshot of service-level counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs rejected by backpressure.
    pub rejected: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs failed (compile/execute/deadline).
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Jobs that rode along in another job's batch.
    pub coalesced: u64,
    /// Jobs currently queued.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Worker threads (configured pool size).
    pub workers: usize,
    /// Worker threads currently alive (dips below `workers` while a
    /// crashed worker is being respawned, or permanently once the
    /// supervision budget is spent).
    pub workers_live: usize,
    /// Worker panics caught and converted into typed job failures.
    pub panics: u64,
    /// Crashed workers respawned by supervision.
    pub respawns: u64,
    /// Transient-failure retries scheduled (per job, per retry).
    pub retries_scheduled: u64,
    /// Jobs whose transient failures outlived their retry budget.
    pub retries_exhausted: u64,
    /// Artifact-cache counters.
    pub cache: CacheStats,
    /// Latency percentiles over settled jobs.
    pub latency: LatencySummary,
    /// TCP front-end counters (zero unless a `TcpServer` fronts this
    /// service).
    pub tcp: TcpStats,
    /// Per-tenant counters, in lane order (the `"default"` lane is
    /// always present).
    pub tenants: Vec<TenantStat>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    completed: u64,
    failed: u64,
    cancelled: u64,
    coalesced: u64,
    panics: u64,
    respawns: u64,
    retries_scheduled: u64,
    retries_exhausted: u64,
}

struct JobRecord {
    spec: JobSpec,
    program: cqasm::Program,
    platform: Platform,
    artifact_key: u64,
    exec_key: u64,
    /// Index of the tenant lane this job was admitted through (resolved
    /// once at submission; drives quota release and fair dequeue).
    lane: usize,
    submitted_at: Instant,
    status: JobStatus,
    /// Execution attempts started so far (incremented when a batch
    /// containing this job is claimed by a worker).
    attempts: u32,
    /// Whether this job emits lifecycle trace spans (deterministic 1-in-N
    /// by content hash; see [`ServiceConfig::trace_sample_n`]).
    sampled: bool,
    /// When the latest attempt was claimed by a worker.
    claimed_at: Option<Instant>,
    /// Compile time of the attempt that served this job (`None` on a
    /// plan-cache hit — no compile happened).
    compile_us: Option<u64>,
    /// When the latest attempt began executing.
    exec_started_at: Option<Instant>,
    /// When the job last settled (terminal state or retry scheduling).
    settled_at: Option<Instant>,
}

/// A failure plus whether retrying could help (injected faults and
/// worker loss are transient; compile errors and deadlines are not).
#[derive(Debug, Clone)]
struct Failure {
    error: ServiceError,
    transient: bool,
}

/// One shot-range shard of a sharded sweep, claimable by any worker.
struct ShardTask {
    sim: Simulator,
    artifact: Arc<CompiledArtifact>,
    /// (job id, attempt the job was claimed at) for every batch member.
    batch: Vec<(u64, u32)>,
    cache_hit: bool,
    compile_us: Option<u64>,
    shards: usize,
    exec_started: Instant,
    started_at: Instant,
    /// Resolved engine and circuit class, for the settled outcome.
    engine: &'static str,
    class: &'static str,
    merge: Mutex<ShardMerge>,
}

struct ShardMerge {
    histogram: ShotHistogram,
    remaining: usize,
    /// First failure observed by any shard; poisons the whole sweep.
    failure: Option<Failure>,
}

enum Item {
    Lead(JobId),
    Shard {
        task: Arc<ShardTask>,
        lo: u64,
        hi: u64,
    },
}

struct QueueEntry {
    priority: u8,
    seq: u64,
    item: Item,
}

/// A retry waiting out its backoff before re-entering the ready queue.
struct DelayedEntry {
    ready_at: Instant,
    /// Tenant lane the entry re-enters through (retries compete fairly
    /// like fresh work).
    lane: usize,
    entry: QueueEntry,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier sequence number.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct SchedState {
    /// Shot-range shards of sweeps already claimed — always dequeued
    /// before fresh leads, so started work finishes promptly.
    shards: BinaryHeap<QueueEntry>,
    /// Fresh leads and retries, one priority heap per tenant lane under
    /// the deficit-round-robin picker.
    ready: DrrQueue<QueueEntry>,
    /// Retries sleeping out their backoff (small; scanned linearly).
    delayed: Vec<DelayedEntry>,
    jobs: HashMap<u64, JobRecord>,
    /// Execution key → still-queued job ids, for coalescing.
    pending: HashMap<u64, Vec<u64>>,
    next_seq: u64,
    running: usize,
    /// Worker threads currently alive (spawn-accounted, exit-decremented).
    live_workers: usize,
    /// Remaining supervision budget for respawning crashed workers.
    respawns_left: u64,
    shutdown: bool,
    totals: Totals,
    /// Admission-to-claim wait per attempt.
    lat_queue_wait: LogHistogram,
    /// Compile time per cache miss.
    lat_compile: LogHistogram,
    /// Execution time per attempt.
    lat_execute: LogHistogram,
    /// Admission-to-terminal-state latency per job.
    lat_e2e: LogHistogram,
}

/// A job travelling from the lock-free admission path to the scheduler:
/// everything `drain_admissions` needs to file it under the lock.
struct AdmitMsg {
    id: u64,
    priority: u8,
    record: JobRecord,
}

/// One tenant's admission lane: the lock-free ring submissions land in,
/// plus quota state and counters (all atomics — the submit path never
/// takes the scheduler lock).
struct TenantLane {
    name: String,
    weight: u32,
    quota: Option<usize>,
    ring: Ring<AdmitMsg>,
    /// Jobs this tenant currently has queued (reserved at submit,
    /// released at claim/cancel/expiry, re-reserved on retry).
    queued: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
}

struct Shared {
    state: Mutex<SchedState>,
    work_ready: Condvar,
    job_done: Condvar,
    cache: PlanCache,
    config: ServiceConfig,
    telemetry: Telemetry,
    /// Tenant admission lanes, in DRR order. The `"default"` lane always
    /// exists.
    lanes: Vec<TenantLane>,
    /// Tenant name → lane index.
    lane_index: HashMap<String, usize>,
    /// Lane for jobs naming no tenant (or an unknown one).
    default_lane: usize,
    /// Ticket allocator for the lock-free submit path.
    next_id: AtomicU64,
    /// Jobs queued across all tenants — the global-capacity reservation
    /// counter on the submit path.
    queued_total: AtomicUsize,
    submitted_total: AtomicU64,
    rejected_total: AtomicU64,
    /// Mirrors `SchedState::shutdown` for the lock-free submit path.
    shutdown_flag: AtomicBool,
    /// Workers currently parked in `work_ready.wait` — submit only
    /// bounces on the mutex to notify when someone is actually asleep.
    sleepers: AtomicUsize,
    /// What the warm start from `config.snapshot_path` accomplished:
    /// `None` when persistence is off or no snapshot file existed.
    warm: Option<Result<SnapshotReport, SnapshotError>>,
    /// When the service started; job lifecycle records report offsets
    /// from this epoch.
    epoch: Instant,
    /// TCP front-end counters, bumped by `note_tcp_*` from the accept
    /// loop and connection handlers (atomics: the TCP path must not
    /// contend on the scheduler lock).
    tcp_shed: AtomicU64,
    tcp_oversized: AtomicU64,
    tcp_timeouts: AtomicU64,
    /// Join handles for every live worker thread, including respawns.
    worker_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn handles(&self) -> MutexGuard<'_, Vec<std::thread::JoinHandle<()>>> {
        match self.worker_handles.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Wakes one parked worker if any are parked. The lock bounce before
    /// `notify_one` closes the race where a worker registered as a
    /// sleeper but has not yet reached `wait` — acquiring the mutex
    /// orders this notify after the sleeper releases it inside `wait`.
    fn wake_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.lock());
            self.work_ready.notify_one();
        }
    }
}

/// A cloneable client handle to a running [`Service`]: submit jobs, poll
/// or wait for results, cancel queued work, read stats.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("stats", &self.stats())
            .finish()
    }
}

/// The serving runtime: owns the worker pool. Dropping the service (or
/// calling [`Service::shutdown`]) stops admission, drains the queue and
/// joins the workers; [`Service::shutdown_now`] fails queued jobs with a
/// typed error instead of draining.
pub struct Service {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.shared.config.workers)
            .finish()
    }
}

impl Service {
    /// Starts a service with default configuration.
    pub fn start() -> Self {
        Service::with_config(ServiceConfig::default())
    }

    /// Starts a service with the given configuration and a disabled
    /// telemetry context.
    pub fn with_config(config: ServiceConfig) -> Self {
        Service::with_telemetry(config, Telemetry::disabled())
    }

    /// Starts a service recording per-stage telemetry (queue depth, wait
    /// vs execute latency, cache hit rate, batch/shard sizes) into the
    /// given context.
    pub fn with_telemetry(mut config: ServiceConfig, telemetry: Telemetry) -> Self {
        config.workers = config.workers.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        let max_respawns = config.max_respawns;
        // Tenant lanes: configured tenants in order, plus the built-in
        // "default" lane if none of them claims the name.
        let mut tenant_cfgs = config.tenants.clone();
        if !tenant_cfgs.iter().any(|t| t.name == "default") {
            tenant_cfgs.push(TenantConfig::new("default", 1));
        }
        let mut lane_index = HashMap::new();
        let lanes: Vec<TenantLane> = tenant_cfgs
            .iter()
            .enumerate()
            .map(|(i, t)| {
                lane_index.entry(t.name.clone()).or_insert(i);
                // Quota and global capacity bound the jobs outstanding in
                // a lane's ring, so a ring this size can never overflow.
                let ring_cap = t
                    .quota
                    .unwrap_or(config.queue_capacity)
                    .min(config.queue_capacity)
                    .max(1);
                TenantLane {
                    name: t.name.clone(),
                    weight: t.weight.max(1),
                    quota: t.quota,
                    ring: Ring::with_capacity(ring_cap),
                    queued: AtomicUsize::new(0),
                    submitted: AtomicU64::new(0),
                    completed: AtomicU64::new(0),
                    shed: AtomicU64::new(0),
                }
            })
            .collect();
        let default_lane = lane_index.get("default").copied().unwrap_or(0);
        let weights: Vec<u32> = lanes.iter().map(|l| l.weight).collect();
        // Warm the plan cache from the configured snapshot before any
        // worker can race a compile against the load.
        let cache = PlanCache::new(config.cache_capacity, telemetry.clone());
        let warm = config
            .snapshot_path
            .as_deref()
            .filter(|p| p.exists())
            .map(|p| warm_start(&cache, &config, &telemetry, p));
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                shards: BinaryHeap::new(),
                ready: DrrQueue::new(&weights),
                delayed: Vec::new(),
                jobs: HashMap::new(),
                pending: HashMap::new(),
                next_seq: 0,
                running: 0,
                live_workers: 0,
                respawns_left: max_respawns,
                shutdown: false,
                totals: Totals::default(),
                lat_queue_wait: LogHistogram::new(),
                lat_compile: LogHistogram::new(),
                lat_execute: LogHistogram::new(),
                lat_e2e: LogHistogram::new(),
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            cache,
            config,
            telemetry,
            lanes,
            lane_index,
            default_lane,
            next_id: AtomicU64::new(1),
            queued_total: AtomicUsize::new(0),
            submitted_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            shutdown_flag: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            warm,
            epoch: Instant::now(),
            tcp_shed: AtomicU64::new(0),
            tcp_oversized: AtomicU64::new(0),
            tcp_timeouts: AtomicU64::new(0),
            worker_handles: Mutex::new(Vec::new()),
        });
        for i in 0..shared.config.workers {
            spawn_worker(&shared, &format!("qca-service-worker-{i}"));
        }
        Service { shared }
    }

    /// A client handle (cheap to clone, safe to share across threads).
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The service telemetry context.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Stops admission, drains the remaining queue and joins the workers.
    /// Every already-admitted job still runs to a terminal state.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Stops admission and fails every still-queued job (including
    /// retries sleeping out a backoff) with
    /// [`ServiceError::ShuttingDown`], then joins the workers. In-flight
    /// executions — including all shards of a sweep already started —
    /// finish normally, so every waiter reaches a terminal state.
    pub fn shutdown_now(mut self) {
        fail_queued_jobs(&self.shared, &ServiceError::ShuttingDown);
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
            self.shared.shutdown_flag.store(true, Ordering::SeqCst);
        }
        self.shared.work_ready.notify_all();
        // Join until the pool is empty; a respawned worker registers its
        // handle before its predecessor exits, so looping to exhaustion
        // collects replacements too.
        loop {
            let handle = self.shared.handles().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => {
                    if self.shared.lock().live_workers == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        // Final sweep: a submission racing shutdown can land in a ring
        // after the last worker's final drain. Fail it typed rather than
        // strand its waiter.
        fail_queued_jobs(&self.shared, &ServiceError::ShuttingDown);
        if let Some(path) = self.shared.config.snapshot_path.clone() {
            match save_snapshot_to(&self.shared, &path) {
                Ok(n) => self
                    .shared
                    .telemetry
                    .incr("service.snapshot.saved_entries", n as u64),
                Err(_) => self.shared.telemetry.incr("service.snapshot.save_failed", 1),
            }
        }
        self.shared.job_done.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl ServiceHandle {
    /// Submits a job: parses and content-hashes the circuit, reserves
    /// capacity and tenant quota with atomic counters, and pushes the
    /// job into its tenant's lock-free admission ring — the scheduler
    /// mutex is never taken on this path.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Parse`] for invalid cQASM,
    /// [`ServiceError::QueueFull`] under global backpressure,
    /// [`ServiceError::TenantQuotaExceeded`] when the tenant's own quota
    /// is spent, [`ServiceError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ServiceError> {
        let shared = &self.shared;
        let program =
            cqasm::Program::parse(&spec.circuit).map_err(|e| ServiceError::Parse(e.to_string()))?;
        // Canonical form: parse → pretty-print, so formatting differences
        // between submissions hash identically.
        let canonical = program.to_string();
        let platform = shared.config.platform.platform_for(program.qubit_count());
        let akey = artifact_key(&canonical, &platform, &shared.config.options, &spec.qubits);
        let exec_key = {
            let mut h = Fnv64::new();
            h.write(&akey.to_le_bytes());
            h.write(&spec.seed.to_le_bytes());
            h.write(&spec.shots.to_le_bytes());
            h.write_field(spec.engine.name());
            h.write_field(spec.force_engine.map_or("auto", |e| e.name()));
            // Retry policy and fault injection change execution behaviour,
            // so jobs differing in them must never coalesce. The tenant is
            // deliberately NOT hashed: identical work from different
            // tenants still deduplicates into one execution.
            h.write(&spec.retry.max_attempts.to_le_bytes());
            h.write(&spec.retry.backoff_base_ms.to_le_bytes());
            h.write(&spec.retry.jitter_seed.to_le_bytes());
            h.write(&spec.faults.panic_attempts.to_le_bytes());
            h.write(&spec.faults.fail_attempts.to_le_bytes());
            h.finish()
        };
        if shared.shutdown_flag.load(Ordering::SeqCst) {
            shared.telemetry.incr("service.jobs.rejected", 1);
            return Err(ServiceError::ShuttingDown);
        }
        let lane_idx = spec
            .tenant
            .as_deref()
            .and_then(|name| shared.lane_index.get(name))
            .copied()
            .unwrap_or(shared.default_lane);
        let lane = &shared.lanes[lane_idx];
        // Reserve global capacity, then the tenant quota; undo on
        // failure. fetch_add-then-check makes concurrent submits race
        // safely: the loser sees the counter over the limit and backs
        // out its own reservation.
        let prev = shared.queued_total.fetch_add(1, Ordering::SeqCst);
        if prev >= shared.config.queue_capacity {
            shared.queued_total.fetch_sub(1, Ordering::SeqCst);
            self.count_shed(lane);
            return Err(ServiceError::QueueFull {
                capacity: shared.config.queue_capacity,
            });
        }
        let tenant_prev = lane.queued.fetch_add(1, Ordering::SeqCst);
        if let Some(quota) = lane.quota {
            if tenant_prev >= quota {
                lane.queued.fetch_sub(1, Ordering::SeqCst);
                shared.queued_total.fetch_sub(1, Ordering::SeqCst);
                self.count_shed(lane);
                return Err(ServiceError::TenantQuotaExceeded {
                    tenant: lane.name.clone(),
                    quota,
                });
            }
        }
        let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
        let priority = spec.priority;
        // Deterministic 1-in-N trace sampling by content hash: the same
        // jobs of a seeded workload are traced on every run.
        let sample_n = shared.config.trace_sample_n;
        let sampled = sample_n > 0 && exec_key % sample_n == 0;
        let record = JobRecord {
            spec,
            program,
            platform,
            artifact_key: akey,
            exec_key,
            lane: lane_idx,
            submitted_at: Instant::now(),
            status: JobStatus::Queued,
            attempts: 0,
            sampled,
            claimed_at: None,
            compile_us: None,
            exec_started_at: None,
            settled_at: None,
        };
        if lane
            .ring
            .push(AdmitMsg {
                id,
                priority,
                record,
            })
            .is_err()
        {
            // Unreachable in practice: the reservations above bound the
            // jobs outstanding in this ring below its capacity. Kept as
            // typed backpressure rather than an assertion.
            lane.queued.fetch_sub(1, Ordering::SeqCst);
            shared.queued_total.fetch_sub(1, Ordering::SeqCst);
            self.count_shed(lane);
            return Err(ServiceError::QueueFull {
                capacity: shared.config.queue_capacity,
            });
        }
        shared.submitted_total.fetch_add(1, Ordering::SeqCst);
        lane.submitted.fetch_add(1, Ordering::SeqCst);
        shared.telemetry.incr("service.jobs.submitted", 1);
        if shared.telemetry.is_enabled() {
            shared
                .telemetry
                .incr_labeled("service.tenant.submitted", &lane.name, 1);
            shared.telemetry.record_value(
                "service.queue.depth",
                shared.queued_total.load(Ordering::SeqCst) as f64,
            );
        }
        // Close the race with a shutdown that drained the rings between
        // the flag check above and our push: if the flag is now set, make
        // sure this job either runs or fails typed — never strands.
        if shared.shutdown_flag.load(Ordering::SeqCst) {
            if let Some(err) = rescue_shutdown_race(shared, id) {
                return Err(err);
            }
        }
        shared.wake_one();
        Ok(JobId(id))
    }

    /// Counts a shed submission, both globally and per tenant.
    fn count_shed(&self, lane: &TenantLane) {
        self.shared.rejected_total.fetch_add(1, Ordering::SeqCst);
        lane.shed.fetch_add(1, Ordering::SeqCst);
        self.shared.telemetry.incr("service.jobs.rejected", 1);
        if self.shared.telemetry.is_enabled() {
            self.shared
                .telemetry
                .incr_labeled("service.tenant.shed", &lane.name, 1);
        }
    }

    /// The job's current status.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`] for a ticket this service never issued.
    pub fn poll(&self, id: JobId) -> Result<JobStatus, ServiceError> {
        let mut state = self.shared.lock();
        // The job may still be in its admission ring (submitted but not
        // yet drained by a worker): help the drain so a submit-then-poll
        // caller always sees its own ticket.
        if !state.jobs.contains_key(&id.0) {
            drain_admissions(&self.shared, &mut state);
        }
        state
            .jobs
            .get(&id.0)
            .map(|r| r.status.clone())
            .ok_or(ServiceError::UnknownJob(id.0))
    }

    /// Blocks until the job reaches a terminal state (or `timeout`
    /// passes) and returns its outcome.
    ///
    /// # Errors
    ///
    /// The job's own failure, [`ServiceError::WaitTimeout`] on timeout,
    /// [`ServiceError::UnknownJob`] for a foreign ticket.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Result<Arc<JobOutcome>, ServiceError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        if !state.jobs.contains_key(&id.0) {
            drain_admissions(&self.shared, &mut state);
        }
        loop {
            match state.jobs.get(&id.0) {
                None => return Err(ServiceError::UnknownJob(id.0)),
                Some(record) => match &record.status {
                    JobStatus::Done(outcome) => return Ok(Arc::clone(outcome)),
                    JobStatus::Failed(err) => return Err(err.clone()),
                    JobStatus::Cancelled => return Err(ServiceError::Cancelled),
                    JobStatus::Queued | JobStatus::Running => {}
                },
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServiceError::WaitTimeout);
            }
            let (guard, _result) = match self.shared.job_done.wait_timeout(state, deadline - now) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let pair = poisoned.into_inner();
                    (pair.0, pair.1)
                }
            };
            state = guard;
        }
    }

    /// Cancels a queued job. Returns `true` if the job was still queued
    /// (it will never run); `false` if it already started or finished.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`] for a foreign ticket.
    pub fn cancel(&self, id: JobId) -> Result<bool, ServiceError> {
        let mut state = self.shared.lock();
        if !state.jobs.contains_key(&id.0) {
            drain_admissions(&self.shared, &mut state);
        }
        let record = state
            .jobs
            .get_mut(&id.0)
            .ok_or(ServiceError::UnknownJob(id.0))?;
        if record.status != JobStatus::Queued {
            return Ok(false);
        }
        record.status = JobStatus::Cancelled;
        let now = Instant::now();
        record.settled_at = Some(now);
        let e2e_us = u64::try_from(
            now.saturating_duration_since(record.submitted_at)
                .as_micros(),
        )
        .unwrap_or(u64::MAX);
        let priority = record.spec.priority;
        let lane = record.lane;
        state.lat_e2e.record(e2e_us);
        state.totals.cancelled += 1;
        drop(state);
        self.shared.queued_total.fetch_sub(1, Ordering::SeqCst);
        self.shared.lanes[lane].queued.fetch_sub(1, Ordering::SeqCst);
        self.shared.telemetry.incr("service.jobs.cancelled", 1);
        if self.shared.telemetry.is_enabled() {
            let prio = priority.to_string();
            self.shared.telemetry.record_hist_labeled(
                "service.latency.e2e_us",
                &[("priority", &prio), ("outcome", "cancelled")],
                e2e_us,
            );
        }
        self.shared.job_done.notify_all();
        Ok(true)
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let tenants = self
            .shared
            .lanes
            .iter()
            .map(|lane| TenantStat {
                name: lane.name.clone(),
                weight: lane.weight,
                quota: lane.quota,
                queued: lane.queued.load(Ordering::SeqCst),
                submitted: lane.submitted.load(Ordering::SeqCst),
                completed: lane.completed.load(Ordering::SeqCst),
                shed: lane.shed.load(Ordering::SeqCst),
            })
            .collect();
        let state = self.shared.lock();
        ServiceStats {
            submitted: self.shared.submitted_total.load(Ordering::SeqCst),
            rejected: self.shared.rejected_total.load(Ordering::SeqCst),
            completed: state.totals.completed,
            failed: state.totals.failed,
            cancelled: state.totals.cancelled,
            coalesced: state.totals.coalesced,
            queued: self.shared.queued_total.load(Ordering::SeqCst),
            running: state.running,
            workers: self.shared.config.workers,
            workers_live: state.live_workers,
            panics: state.totals.panics,
            respawns: state.totals.respawns,
            retries_scheduled: state.totals.retries_scheduled,
            retries_exhausted: state.totals.retries_exhausted,
            cache: self.shared.cache.stats(),
            latency: LatencySummary {
                queue_wait_p50_us: state.lat_queue_wait.quantile(0.50),
                queue_wait_p99_us: state.lat_queue_wait.quantile(0.99),
                execute_p50_us: state.lat_execute.quantile(0.50),
                execute_p99_us: state.lat_execute.quantile(0.99),
                e2e_p50_us: state.lat_e2e.quantile(0.50),
                e2e_p99_us: state.lat_e2e.quantile(0.99),
                jobs_measured: state.lat_e2e.count(),
            },
            tcp: TcpStats {
                shed: self.shared.tcp_shed.load(Ordering::Relaxed),
                oversized: self.shared.tcp_oversized.load(Ordering::Relaxed),
                timeouts: self.shared.tcp_timeouts.load(Ordering::Relaxed),
            },
            tenants,
        }
    }

    /// What warming the cache from `snapshot_path` accomplished: `None`
    /// when persistence is off or no snapshot file existed at start,
    /// `Some(Err(..))` when the file was unreadable (the service still
    /// started, with a cold cache).
    pub fn warm_status(&self) -> Option<Result<SnapshotReport, SnapshotError>> {
        self.shared.warm.clone()
    }

    /// Snapshots the current plan cache to `path` (atomic tmp + rename),
    /// independent of the configured shutdown snapshot. Returns how many
    /// entries were written.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be written.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        save_snapshot_to(&self.shared, path)
    }

    /// The job's lifecycle record: when it passed each stage (admit →
    /// claim → compile → execute → settle), as microsecond offsets from
    /// the service epoch, plus whether it was trace-sampled. Available
    /// for every known job at any stage — not-yet-reached stages read
    /// `None`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`] for a ticket this service never issued.
    pub fn lifecycle(&self, id: JobId) -> Result<JobLifecycle, ServiceError> {
        let epoch = self.shared.epoch;
        let offset = |at: Instant| -> u64 {
            u64::try_from(at.saturating_duration_since(epoch).as_micros()).unwrap_or(u64::MAX)
        };
        let mut state = self.shared.lock();
        if !state.jobs.contains_key(&id.0) {
            drain_admissions(&self.shared, &mut state);
        }
        let record = state
            .jobs
            .get(&id.0)
            .ok_or(ServiceError::UnknownJob(id.0))?;
        Ok(JobLifecycle {
            job: id,
            sampled: record.sampled,
            status: record.status.name().to_string(),
            priority: record.spec.priority,
            attempts: record.attempts,
            admit_us: offset(record.submitted_at),
            claim_us: record.claimed_at.map(offset),
            compile_us: record.compile_us,
            exec_start_us: record.exec_started_at.map(offset),
            settle_us: record.settled_at.map(offset),
        })
    }

    /// Counts a connection shed by the TCP accept loop.
    pub fn note_tcp_shed(&self) {
        self.shared.tcp_shed.fetch_add(1, Ordering::Relaxed);
        self.shared.telemetry.incr("service.tcp.shed", 1);
    }

    /// Counts a frame rejected for exceeding the size limit.
    pub fn note_tcp_oversized(&self) {
        self.shared.tcp_oversized.fetch_add(1, Ordering::Relaxed);
        self.shared.telemetry.incr("service.tcp.oversized", 1);
    }

    /// Counts a connection dropped for stalling past a timeout.
    pub fn note_tcp_timeout(&self) {
        self.shared.tcp_timeouts.fetch_add(1, Ordering::Relaxed);
        self.shared.telemetry.incr("service.tcp.timeouts", 1);
    }

    /// The service telemetry context.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }
}

/// Why a worker loop returned.
enum WorkerExit {
    /// The service is shutting down and the queue is drained.
    Shutdown,
    /// A job panicked under this worker. The job itself was settled (a
    /// typed failure or a scheduled retry), but the thread's state is
    /// suspect — supervision retires it and respawns a replacement.
    Panicked,
}

/// Whether one queue entry was processed cleanly or unwound.
enum StepOutcome {
    Done,
    Panicked,
}

/// Spawns one supervised worker thread and registers its handle. The
/// live-worker count is incremented here (not in the thread) so
/// supervision never observes a transient empty pool during a respawn.
fn spawn_worker(shared: &Arc<Shared>, name: &str) {
    let spawned = {
        let worker = Arc::clone(shared);
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || worker_entry(&worker))
            .or_else(|_| {
                // Naming a thread can fail on exotic platforms; an
                // anonymous worker is better than a smaller pool.
                let worker = Arc::clone(shared);
                std::thread::Builder::new().spawn(move || worker_entry(&worker))
            })
    };
    if let Ok(handle) = spawned {
        shared.lock().live_workers += 1;
        shared.handles().push(handle);
    }
}

/// One worker thread's lifetime: run the loop; if a job panics, settle
/// it, retire this thread and respawn a replacement (budget permitting).
fn worker_entry(shared: &Arc<Shared>) {
    loop {
        match worker_loop(shared) {
            WorkerExit::Shutdown => break,
            WorkerExit::Panicked => {
                // The panic itself was already counted at the catch site
                // (before the job settled); here we only account for the
                // worker's retirement and replacement.
                let respawn = {
                    let mut state = shared.lock();
                    if !state.shutdown && state.respawns_left > 0 {
                        state.respawns_left -= 1;
                        state.totals.respawns += 1;
                        true
                    } else {
                        false
                    }
                };
                if respawn {
                    shared.telemetry.incr("service.workers.respawns", 1);
                    // A panic may have left thread state inconsistent:
                    // hand the slot to a fresh thread. spawn_worker
                    // increments live_workers only on success, so a
                    // failed spawn falls through to pool-death handling
                    // below via the next loop iteration... instead keep
                    // serving on this thread if the spawn failed.
                    let before = shared.lock().live_workers;
                    spawn_worker(shared, "qca-service-worker-respawn");
                    if shared.lock().live_workers > before {
                        break;
                    }
                    continue;
                }
                // Budget spent (or shutting down): this worker dies for
                // good. If it was the last one, fail everything queued so
                // no waiter is stranded forever.
                pool_collapse_if_last(shared);
                break;
            }
        }
    }
    shared.lock().live_workers -= 1;
}

/// If the exiting worker is the last live one, stop admission and fail
/// every queued job and orphaned shard: with no workers left they would
/// otherwise strand their waiters forever.
fn pool_collapse_if_last(shared: &Shared) {
    let last = shared.lock().live_workers == 1;
    if last {
        fail_queued_jobs(
            shared,
            &ServiceError::WorkerPanic {
                message: "worker pool exhausted its supervision budget".to_string(),
            },
        );
    }
}

/// Stops admission and fails every still-queued job (and undispatched
/// shard range) with `error`. In-flight work is untouched. Used by
/// [`Service::shutdown_now`] and pool-collapse handling.
fn fail_queued_jobs(shared: &Shared, error: &ServiceError) {
    let orphaned_shards = {
        let mut state = shared.lock();
        state.shutdown = true;
        shared.shutdown_flag.store(true, Ordering::SeqCst);
        // Pull ring-resident submissions into the scheduler first so
        // they fail typed like everything else.
        drain_admissions(shared, &mut state);
        let mut entries: Vec<QueueEntry> = state.shards.drain().collect();
        entries.extend(state.ready.drain_all());
        entries.extend(state.delayed.drain(..).map(|d| d.entry));
        state.pending.clear();
        let mut orphans = Vec::new();
        let state = &mut *state;
        for entry in entries {
            match entry.item {
                Item::Shard { task, lo, hi } => orphans.push((task, lo, hi)),
                Item::Lead(id) => {
                    if let Some(record) = state.jobs.get_mut(&id.0) {
                        if record.status == JobStatus::Queued {
                            record.status = JobStatus::Failed(error.clone());
                            shared.queued_total.fetch_sub(1, Ordering::SeqCst);
                            shared.lanes[record.lane]
                                .queued
                                .fetch_sub(1, Ordering::SeqCst);
                            state.totals.failed += 1;
                        }
                    }
                }
            }
        }
        orphans
    };
    shared.job_done.notify_all();
    // Orphaned shard ranges will never run: contribute a failure for each
    // so the sweep's merge count still reaches zero and the batch settles.
    for (task, _lo, _hi) in orphaned_shards {
        shard_done(
            shared,
            &task,
            Err(Failure {
                error: error.clone(),
                transient: false,
            }),
        );
    }
}

fn worker_loop(shared: &Shared) -> WorkerExit {
    loop {
        let Some(entry) = next_entry(shared) else {
            return WorkerExit::Shutdown;
        };
        let step = match entry.item {
            Item::Shard { task, lo, hi } => shard_step(shared, &task, lo, hi),
            Item::Lead(id) => lead_step(shared, id),
        };
        if matches!(step, StepOutcome::Panicked) {
            return WorkerExit::Panicked;
        }
    }
}

/// Moves every ring-resident submission into the scheduler's per-tenant
/// heaps: assigns dequeue sequence numbers, files the job record, and
/// registers it for coalescing. Called by workers before each dequeue
/// and by client-side lookups that miss (so a freshly-submitted ticket
/// is always observable) — draining is cooperative, not owned by any
/// one thread.
fn drain_admissions(shared: &Shared, state: &mut SchedState) {
    for (lane_idx, lane) in shared.lanes.iter().enumerate() {
        while let Some(msg) = lane.ring.pop() {
            let seq = state.next_seq;
            state.next_seq += 1;
            state
                .pending
                .entry(msg.record.exec_key)
                .or_default()
                .push(msg.id);
            state.jobs.insert(msg.id, msg.record);
            state.ready.push(
                lane_idx,
                QueueEntry {
                    priority: msg.priority,
                    seq,
                    item: Item::Lead(JobId(msg.id)),
                },
            );
        }
    }
}

/// Closes the submit/shutdown race: called by `submit` when it observed
/// the shutdown flag *after* pushing into a ring. By then a shutdown's
/// final drain may already have passed this ring. Drains again under the
/// lock; if the job is still queued it fails typed (`Some(error)` tells
/// submit to report rejection), and if a worker already picked it up it
/// will settle normally (`None`).
fn rescue_shutdown_race(shared: &Shared, id: u64) -> Option<ServiceError> {
    let mut state = shared.lock();
    drain_admissions(shared, &mut state);
    let Some(record) = state.jobs.get_mut(&id) else {
        return Some(ServiceError::ShuttingDown);
    };
    if record.status != JobStatus::Queued {
        return None;
    }
    record.status = JobStatus::Failed(ServiceError::ShuttingDown);
    record.settled_at = Some(Instant::now());
    let lane = record.lane;
    state.totals.failed += 1;
    drop(state);
    shared.queued_total.fetch_sub(1, Ordering::SeqCst);
    shared.lanes[lane].queued.fetch_sub(1, Ordering::SeqCst);
    shared.job_done.notify_all();
    Some(ServiceError::ShuttingDown)
}

/// Warms the plan cache from an on-disk snapshot: each persisted source
/// is recompiled deterministically (same platform selection, options and
/// qubit model as live submissions), so subsequent cache hits serve
/// plans bit-identical to the run that wrote the snapshot. Compilation
/// here deliberately does *not* attach telemetry and emits no compile
/// span — a warm-started service serving a cached job must look exactly
/// like a hot cache, which is the observable warm-start criterion.
fn warm_start(
    cache: &PlanCache,
    config: &ServiceConfig,
    telemetry: &Telemetry,
    path: &Path,
) -> Result<SnapshotReport, SnapshotError> {
    let entries = snapshot::read_snapshot(path)?;
    let _span = telemetry.span("service", "warm_start");
    let total = entries.len();
    let mut loaded = 0usize;
    let mut skipped = 0usize;
    let mut rekeyed = 0usize;
    for entry in entries {
        let Ok(program) = cqasm::Program::parse(&entry.source) else {
            skipped += 1;
            continue;
        };
        let canonical = program.to_string();
        let platform = config.platform.platform_for(program.qubit_count());
        let Ok(out) =
            Compiler::with_options(platform.clone(), config.options).compile_cqasm(&program)
        else {
            skipped += 1;
            continue;
        };
        let Ok(plan) = Simulator::with_model(entry.qubits.to_model()).compile(&out.program) else {
            skipped += 1;
            continue;
        };
        let akey = artifact_key(&canonical, &platform, &config.options, &entry.qubits);
        if akey != entry.key {
            // The snapshot predates a compiler/platform change; the entry
            // is still usable, filed under its *current* key.
            rekeyed += 1;
        }
        cache.insert(
            akey,
            Arc::new(CompiledArtifact {
                cqasm: out.program,
                report: out.report,
                final_mapping: out.final_mapping,
                plan,
                source: canonical,
                qubits: entry.qubits,
            }),
        );
        loaded += 1;
    }
    telemetry.incr("service.snapshot.loaded_entries", loaded as u64);
    Ok(SnapshotReport {
        entries: total,
        loaded,
        skipped,
        rekeyed,
    })
}

/// Persists the plan cache to `path` (atomic tmp-file + rename), LRU
/// first so a capacity-bounded reload keeps the hottest entries.
/// Returns how many entries were written.
fn save_snapshot_to(shared: &Shared, path: &Path) -> Result<usize, SnapshotError> {
    let (entries, _skipped) = shared.cache.export_entries();
    let count = entries.len();
    snapshot::write_snapshot(path, &entries)?;
    Ok(count)
}

/// The failsafe cap on a worker's park time: even if a wakeup is lost,
/// the worker re-drains the admission rings at least this often.
const PARK_FAILSAFE: Duration = Duration::from_millis(50);

/// Pops the next runnable entry: drains the admission rings, promotes
/// retries whose backoff elapsed, serves claimed shards first and then
/// the fair dequeue. Returns `None` when the service is shut down and
/// fully drained.
fn next_entry(shared: &Shared) -> Option<QueueEntry> {
    let mut state = shared.lock();
    loop {
        drain_admissions(shared, &mut state);
        let now = Instant::now();
        let mut next_ready: Option<Instant> = None;
        let mut i = 0;
        while i < state.delayed.len() {
            // Under shutdown, backoffs are cut short so the drain finishes.
            if state.shutdown || state.delayed[i].ready_at <= now {
                let due = state.delayed.swap_remove(i);
                state.ready.push(due.lane, due.entry);
            } else {
                let at = state.delayed[i].ready_at;
                next_ready = Some(next_ready.map_or(at, |cur| cur.min(at)));
                i += 1;
            }
        }
        // Shards of already-claimed sweeps run before fresh leads: the
        // fair dequeue arbitrates admission, not completion of work the
        // pool already started.
        if let Some(entry) = state.shards.pop() {
            return Some(entry);
        }
        if let Some(entry) = state.ready.pop() {
            return Some(entry);
        }
        if state.shutdown {
            return None;
        }
        // Park. Register as a sleeper, then re-drain: a submit that
        // pushed before our registration may have skipped its notify
        // (it saw zero sleepers), so the work must be re-checked after
        // the registration is visible.
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        drain_admissions(shared, &mut state);
        if !state.ready.is_empty() || !state.shards.is_empty() || state.shutdown {
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let wait = next_ready.map_or(PARK_FAILSAFE, |at| {
            at.saturating_duration_since(now).min(PARK_FAILSAFE)
        });
        state = match shared.work_ready.wait_timeout(state, wait) {
            Ok((guard, _)) => guard,
            Err(poisoned) => poisoned.into_inner().0,
        };
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A claimed batch: everything the execution phases need, captured under
/// the lock so the panic-isolation boundary can settle the batch even if
/// execution unwinds.
struct Claim {
    /// (job id, attempt the job was claimed at) for every batch member.
    batch: Vec<(u64, u32)>,
    spec: JobSpec,
    program: cqasm::Program,
    platform: Platform,
    akey: u64,
    /// The lead job's attempt number (drives fault injection).
    attempt: u32,
    priority: u8,
    started_at: Instant,
}

/// How `run_claim` left the batch.
enum RunOutcome {
    /// Settled (delivered, failed or requeued for retry).
    Finished,
    /// Converted into a sharded sweep; the caller runs the first range.
    Sharded {
        task: Arc<ShardTask>,
        lo: u64,
        hi: u64,
    },
}

/// Handles a popped lead entry with panic isolation: claim the batch,
/// then run it under `catch_unwind` so a panicking job becomes a typed
/// failure (or a retry) for every waiter instead of a stranded batch.
fn lead_step(shared: &Shared, id: JobId) -> StepOutcome {
    let Some(claim) = claim_batch(shared, id) else {
        return StepOutcome::Done;
    };
    shared
        .telemetry
        .record_value("service.batch.jobs", claim.batch.len() as f64);
    if claim.batch.len() > 1 {
        shared
            .telemetry
            .incr("service.jobs.coalesced", (claim.batch.len() - 1) as u64);
    }
    match catch_unwind(AssertUnwindSafe(|| run_claim(shared, &claim))) {
        Ok(RunOutcome::Finished) => StepOutcome::Done,
        Ok(RunOutcome::Sharded { task, lo, hi }) => shard_step(shared, &task, lo, hi),
        Err(payload) => {
            count_panic(shared);
            settle_batch(
                shared,
                &claim.batch,
                Err(Failure {
                    error: ServiceError::WorkerPanic {
                        message: panic_message(payload.as_ref()),
                    },
                    transient: true,
                }),
                ExecMeta {
                    cache_hit: false,
                    compile_us: None,
                    shards: 1,
                    started_at: claim.started_at,
                    exec_started: claim.started_at,
                    engine: "none",
                    class: "unknown",
                },
            );
            StepOutcome::Panicked
        }
    }
}

/// Counts a caught job panic. Runs at the catch site, *before* the batch
/// settles, so an observer that saw the job's terminal state also sees
/// the panic in `stats`.
fn count_panic(shared: &Shared) {
    shared.telemetry.incr("service.workers.panics", 1);
    shared.lock().totals.panics += 1;
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Phase 1 (under the lock): validate, enforce the deadline, coalesce,
/// and bump each claimed job's attempt counter.
fn claim_batch(shared: &Shared, id: JobId) -> Option<Claim> {
    let mut state = shared.lock();
    let record = state.jobs.get(&id.0)?;
    // Cancelled, already served by an earlier batch, or already failed.
    if record.status != JobStatus::Queued {
        return None;
    }
    if let Some(deadline_ms) = record.spec.deadline_ms {
        if record.submitted_at.elapsed() >= Duration::from_millis(deadline_ms) {
            let err = ServiceError::DeadlineExceeded { deadline_ms };
            let mut lane = 0;
            if let Some(r) = state.jobs.get_mut(&id.0) {
                r.status = JobStatus::Failed(err);
                lane = r.lane;
            }
            state.totals.failed += 1;
            drop(state);
            shared.queued_total.fetch_sub(1, Ordering::SeqCst);
            shared.lanes[lane].queued.fetch_sub(1, Ordering::SeqCst);
            shared.telemetry.incr("service.jobs.deadline_expired", 1);
            shared.job_done.notify_all();
            return None;
        }
    }
    let exec_key = record.exec_key;
    let spec = record.spec.clone();
    let program = record.program.clone();
    let platform = record.platform.clone();
    let akey = record.artifact_key;
    // Coalesce every still-queued job with the same execution key
    // (including this one) into one batch.
    let ids = state.pending.remove(&exec_key).unwrap_or_default();
    let mut batch = Vec::with_capacity(ids.len().max(1));
    let mut attempt = 1;
    let claim_now = Instant::now();
    for jid in ids {
        if let Some(r) = state.jobs.get_mut(&jid) {
            if r.status == JobStatus::Queued {
                r.status = JobStatus::Running;
                r.attempts += 1;
                r.claimed_at = Some(claim_now);
                if jid == id.0 {
                    attempt = r.attempts;
                }
                let lane = r.lane;
                batch.push((jid, r.attempts));
                shared.lanes[lane].queued.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    if batch.is_empty() {
        return None;
    }
    state.running += batch.len();
    state.totals.coalesced += (batch.len() - 1) as u64;
    let priority = spec.priority;
    let inflight = state.running;
    drop(state);
    let depth = shared
        .queued_total
        .fetch_sub(batch.len(), Ordering::SeqCst)
        .saturating_sub(batch.len());
    // Sampled gauges: one observation per claim, so the min/max/mean of
    // queue depth and inflight jobs track load without a poller thread.
    shared
        .telemetry
        .record_value("service.queue.depth", depth as f64);
    shared
        .telemetry
        .record_value("service.jobs.inflight", inflight as f64);
    Some(Claim {
        batch,
        spec,
        program,
        platform,
        akey,
        attempt,
        priority,
        started_at: claim_now,
    })
}

/// Phases 2–3 (no lock): inject configured faults, resolve the compiled
/// artifact, execute (sharded or inline) and settle the batch. Runs
/// inside `lead_step`'s `catch_unwind`, so a panic anywhere in here —
/// injected or real — is converted into a typed failure.
fn run_claim(shared: &Shared, claim: &Claim) -> RunOutcome {
    let _exec_span = shared.telemetry.span("service", "execute");
    let spec = &claim.spec;
    // Deterministic fault hooks (chaos harness and tests).
    if claim.attempt <= spec.faults.fail_attempts {
        settle_batch(
            shared,
            &claim.batch,
            Err(Failure {
                error: ServiceError::Execute(format!(
                    "injected transient fault (attempt {})",
                    claim.attempt
                )),
                transient: true,
            }),
            ExecMeta {
                cache_hit: false,
                compile_us: None,
                shards: 1,
                started_at: claim.started_at,
                exec_started: claim.started_at,
                engine: "none",
                class: "unknown",
            },
        );
        return RunOutcome::Finished;
    }
    if claim.attempt <= spec.faults.panic_attempts {
        // Unwinds into lead_step's catch_unwind exactly like a real
        // kernel panic would (panic_any: this is fault injection, not an
        // abort path — clippy::panic stays deny for everything else).
        #[allow(clippy::panic)]
        std::panic::panic_any(format!("injected worker panic (attempt {})", claim.attempt));
    }

    // Resolve the compiled artifact.
    let artifact = shared.cache.get(claim.akey);
    let cache_hit = artifact.is_some();
    let mut compile_us = None;
    let artifact = match artifact {
        Some(found) => Ok(found),
        None => {
            let compile_started = Instant::now();
            let compiled = compile_artifact(shared, &claim.program, &claim.platform, spec);
            compile_us =
                Some(u64::try_from(compile_started.elapsed().as_micros()).unwrap_or(u64::MAX));
            compiled
        }
    };
    let artifact = match artifact {
        Ok(a) => a,
        Err(err) => {
            settle_batch(
                shared,
                &claim.batch,
                Err(Failure {
                    error: err,
                    transient: false,
                }),
                ExecMeta {
                    cache_hit: false,
                    compile_us: None,
                    shards: 1,
                    started_at: claim.started_at,
                    exec_started: claim.started_at,
                    engine: "none",
                    class: "unknown",
                },
            );
            return RunOutcome::Finished;
        }
    };

    // Execute. Auto dispatch routes each sweep to the cheapest engine
    // that is exact for the plan's circuit class; `force_engine` pins
    // one, and a pinned engine that cannot run the plan is a typed,
    // non-transient failure (pre-flighted here so sharded sweeps fail
    // the same way unsharded ones do). Large sweeps shard across the
    // pool regardless of which sweep engine runs them.
    let select = match spec.force_engine {
        None | Some(Engine::DensityMatrix) => qxsim::EngineSelect::Auto,
        Some(Engine::StateVector) => qxsim::EngineSelect::StateVector,
        Some(Engine::Tableau) => qxsim::EngineSelect::Tableau,
        Some(Engine::PauliFrame) => qxsim::EngineSelect::PauliFrame,
    };
    let sim = Simulator::with_model(spec.qubits.to_model())
        .with_seed(spec.seed)
        .with_engine_select(select);
    let density =
        spec.engine == Engine::DensityMatrix || spec.force_engine == Some(Engine::DensityMatrix);
    let class = artifact.plan.circuit_class().name();
    let exec_started = Instant::now();
    let engine = if density {
        "density"
    } else {
        match sim.plan_engine(&artifact.plan) {
            Ok(resolved) => resolved.name(),
            Err(e) => {
                settle_batch(
                    shared,
                    &claim.batch,
                    Err(execute_failure(&e)),
                    ExecMeta {
                        cache_hit,
                        compile_us,
                        shards: 1,
                        started_at: claim.started_at,
                        exec_started,
                        engine: "none",
                        class,
                    },
                );
                return RunOutcome::Finished;
            }
        }
    };
    shared.telemetry.incr_labeled("service.engine", engine, 1);
    let shards =
        if !density && shared.config.workers > 1 && spec.shots >= shared.config.shard_min_shots {
            shared.config.workers.min(
                usize::try_from(spec.shots / shared.config.shard_min_shots.max(1)).unwrap_or(1),
            )
        } else {
            1
        }
        .max(1);
    if shards > 1 {
        let task = Arc::new(ShardTask {
            sim,
            artifact,
            batch: claim.batch.clone(),
            cache_hit,
            compile_us,
            shards,
            exec_started,
            started_at: claim.started_at,
            engine,
            class,
            merge: Mutex::new(ShardMerge {
                histogram: ShotHistogram::new(),
                remaining: shards,
                failure: None,
            }),
        });
        {
            let mut state = shared.lock();
            for t in 1..shards {
                let lo = spec.shots * t as u64 / shards as u64;
                let hi = spec.shots * (t as u64 + 1) / shards as u64;
                let seq = state.next_seq;
                state.next_seq += 1;
                // Shards bypass the fair dequeue: they belong to a claim
                // the pool already admitted, so they go on the dedicated
                // shards heap every worker serves first.
                state.shards.push(QueueEntry {
                    priority: claim.priority,
                    seq,
                    item: Item::Shard {
                        task: Arc::clone(&task),
                        lo,
                        hi,
                    },
                });
            }
        }
        shared.work_ready.notify_all();
        shared
            .telemetry
            .record_value("service.batch.shards", shards as f64);
        // This worker takes the first shard itself (via shard_step, which
        // has its own panic boundary — a panic mid-shard must be recorded
        // in the merge so sibling shards can still settle the batch).
        return RunOutcome::Sharded {
            task,
            lo: 0,
            hi: spec.shots / shards as u64,
        };
    }
    let result = if density {
        sim.run_density_planned(&artifact.plan, spec.shots)
    } else {
        sim.run_shots_planned(&artifact.plan, spec.shots, 1)
    }
    .map_err(|e| execute_failure(&e));
    settle_batch(
        shared,
        &claim.batch,
        result,
        ExecMeta {
            cache_hit,
            compile_us,
            shards: 1,
            started_at: claim.started_at,
            exec_started,
            engine,
            class,
        },
    );
    RunOutcome::Finished
}

/// Maps an engine error to a service failure, classifying transience:
/// injected faults and worker loss can succeed on retry; anything else
/// (validation, capacity) is deterministic and retrying cannot help.
fn execute_failure(e: &ExecuteError) -> Failure {
    Failure {
        error: ServiceError::Execute(e.to_string()),
        transient: matches!(
            e,
            ExecuteError::InjectedFault { .. } | ExecuteError::Worker(_)
        ),
    }
}

/// Compiles a cache miss under the service compile span and publishes the
/// artifact. The span exists *only* on this path: a warm cache emits no
/// compile span (the acceptance criterion for cached submissions).
fn compile_artifact(
    shared: &Shared,
    program: &cqasm::Program,
    platform: &Platform,
    spec: &JobSpec,
) -> Result<Arc<CompiledArtifact>, ServiceError> {
    let _span = shared.telemetry.span("service", "compile");
    let out = Compiler::with_options(platform.clone(), shared.config.options)
        .with_telemetry(shared.telemetry.clone())
        .compile_cqasm(program)
        .map_err(|e| ServiceError::Compile(e.to_string()))?;
    let plan = Simulator::with_model(spec.qubits.to_model())
        .compile(&out.program)
        .map_err(|e| ServiceError::Compile(e.to_string()))?;
    let artifact = Arc::new(CompiledArtifact {
        cqasm: out.program,
        report: out.report,
        final_mapping: out.final_mapping,
        plan,
        source: program.to_string(),
        qubits: spec.qubits,
    });
    let akey = artifact_key(
        &artifact.source,
        platform,
        &shared.config.options,
        &spec.qubits,
    );
    shared.cache.insert(akey, Arc::clone(&artifact));
    Ok(artifact)
}

/// Executes one shot-range shard under its own panic boundary and
/// contributes the partial histogram (or a failure) to the merge.
/// Merging is commutative, so completion order does not affect the
/// result; a panic in one shard fails the batch but the last-arriving
/// shard still settles it — no waiter is stranded.
fn shard_step(shared: &Shared, task: &Arc<ShardTask>, lo: u64, hi: u64) -> StepOutcome {
    let run = catch_unwind(AssertUnwindSafe(|| {
        task.sim.run_shot_range(&task.artifact.plan, lo, hi)
    }));
    match run {
        Ok(part) => {
            shard_done(shared, task, Ok(part));
            StepOutcome::Done
        }
        Err(payload) => {
            count_panic(shared);
            shard_done(
                shared,
                task,
                Err(Failure {
                    error: ServiceError::WorkerPanic {
                        message: panic_message(payload.as_ref()),
                    },
                    transient: true,
                }),
            );
            StepOutcome::Panicked
        }
    }
}

/// Records one shard's contribution; the contribution that brings the
/// outstanding count to zero settles the whole batch (with the first
/// recorded failure, if any shard failed).
fn shard_done(
    shared: &Shared,
    task: &Arc<ShardTask>,
    contribution: Result<ShotHistogram, Failure>,
) {
    let settled = {
        let mut merge = match task.merge.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match contribution {
            Ok(part) => merge.histogram.merge(&part),
            Err(failure) => {
                if merge.failure.is_none() {
                    merge.failure = Some(failure);
                }
            }
        }
        merge.remaining -= 1;
        if merge.remaining == 0 {
            Some(match merge.failure.take() {
                Some(failure) => Err(failure),
                None => Ok(std::mem::take(&mut merge.histogram)),
            })
        } else {
            None
        }
    };
    if let Some(result) = settled {
        settle_batch(
            shared,
            &task.batch,
            result,
            ExecMeta {
                cache_hit: task.cache_hit,
                compile_us: task.compile_us,
                shards: task.shards,
                started_at: task.started_at,
                exec_started: task.exec_started,
                engine: task.engine,
                class: task.class,
            },
        );
    }
}

/// Timing/provenance for one settled execution.
struct ExecMeta {
    cache_hit: bool,
    /// Compile time, `None` on a cache hit (or when settlement happens
    /// before the compile stage — faults, panics, compile errors).
    compile_us: Option<u64>,
    shards: usize,
    started_at: Instant,
    exec_started: Instant,
    /// Wire name of the engine that executed the shots (`"none"` when
    /// settlement happened before dispatch).
    engine: &'static str,
    /// Circuit class of the compiled plan (`"unknown"` before compile).
    class: &'static str,
}

/// Delivers one execution's result to every job in its batch: success
/// and permanent failures become terminal states; transient failures
/// with retry budget left are requeued with deterministic backoff.
///
/// Settlement is idempotent per (job, attempt): a job whose attempt
/// counter moved on (already retried and reclaimed) or that is no
/// longer `Running` (cancelled) is skipped, so a late-arriving shard of
/// a superseded attempt cannot clobber newer state.
fn settle_batch(
    shared: &Shared,
    batch: &[(u64, u32)],
    result: Result<ShotHistogram, Failure>,
    meta: ExecMeta,
) {
    let settle_now = Instant::now();
    let exec_us = u64::try_from(
        settle_now
            .saturating_duration_since(meta.exec_started)
            .as_micros(),
    )
    .unwrap_or(u64::MAX);
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut retried = 0u64;
    let mut exhausted = 0u64;
    /// Per-job data carried out of the lock for telemetry emission.
    struct Settled {
        id: u64,
        priority: u8,
        outcome: &'static str,
        terminal: bool,
        wait_us: u64,
        e2e_us: u64,
        sampled: bool,
        submitted_at: Instant,
        lane: usize,
    }
    let mut settled: Vec<Settled> = Vec::new();
    {
        let mut guard = shared.lock();
        let state = &mut *guard;
        for &(id, attempt) in batch {
            let Some(record) = state.jobs.get_mut(&id) else {
                continue;
            };
            if record.status != JobStatus::Running || record.attempts != attempt {
                continue;
            }
            state.running -= 1;
            let wait_us = u64::try_from(
                meta.started_at
                    .saturating_duration_since(record.submitted_at)
                    .as_micros(),
            )
            .unwrap_or(u64::MAX);
            let e2e_us = u64::try_from(
                settle_now
                    .saturating_duration_since(record.submitted_at)
                    .as_micros(),
            )
            .unwrap_or(u64::MAX);
            // Lifecycle stamps for `ServiceHandle::lifecycle` / `trace`.
            if meta.compile_us.is_some() {
                record.compile_us = meta.compile_us;
            }
            record.exec_started_at = Some(meta.exec_started);
            record.settled_at = Some(settle_now);
            let priority = record.spec.priority;
            let sampled = record.sampled;
            let submitted_at = record.submitted_at;
            let lane = record.lane;
            state.lat_queue_wait.record(wait_us);
            state.lat_execute.record(exec_us);
            if let Some(c) = meta.compile_us {
                state.lat_compile.record(c);
            }
            shared
                .telemetry
                .record_value("service.job.wait_us", wait_us as f64);
            shared
                .telemetry
                .record_value("service.job.exec_us", exec_us as f64);
            match &result {
                Ok(histogram) => {
                    record.status = JobStatus::Done(Arc::new(JobOutcome {
                        histogram: histogram.clone(),
                        cache_hit: meta.cache_hit,
                        batch_size: batch.len(),
                        shards: meta.shards,
                        wait_us,
                        exec_us,
                        attempts: record.attempts,
                        engine: meta.engine,
                        class: meta.class,
                    }));
                    state.totals.completed += 1;
                    completed += 1;
                    shared.lanes[lane].completed.fetch_add(1, Ordering::SeqCst);
                    state.lat_e2e.record(e2e_us);
                    settled.push(Settled {
                        id,
                        priority,
                        outcome: "ok",
                        terminal: true,
                        wait_us,
                        e2e_us,
                        sampled,
                        submitted_at,
                        lane,
                    });
                }
                Err(failure) => {
                    let retryable = failure.transient
                        && !state.shutdown
                        && record.attempts < record.spec.retry.max_attempts;
                    if retryable {
                        // Requeue for another attempt after a seeded
                        // backoff. The job keeps its id and spec, so the
                        // retried run replays identical RNG streams.
                        record.status = JobStatus::Queued;
                        let delay_ms = record.spec.retry.backoff_ms(record.attempts);
                        let priority = record.spec.priority;
                        shared.queued_total.fetch_add(1, Ordering::SeqCst);
                        shared.lanes[lane].queued.fetch_add(1, Ordering::SeqCst);
                        state.totals.retries_scheduled += 1;
                        retried += 1;
                        state.pending.entry(record.exec_key).or_default().push(id);
                        let seq = state.next_seq;
                        state.next_seq += 1;
                        let entry = QueueEntry {
                            priority,
                            seq,
                            item: Item::Lead(JobId(id)),
                        };
                        if delay_ms == 0 {
                            state.ready.push(lane, entry);
                        } else {
                            state.delayed.push(DelayedEntry {
                                ready_at: Instant::now() + Duration::from_millis(delay_ms),
                                entry,
                                lane,
                            });
                        }
                        settled.push(Settled {
                            id,
                            priority,
                            outcome: "retried",
                            terminal: false,
                            wait_us,
                            e2e_us,
                            sampled,
                            submitted_at,
                            lane,
                        });
                    } else {
                        record.status = JobStatus::Failed(failure.error.clone());
                        state.totals.failed += 1;
                        failed += 1;
                        if failure.transient && record.spec.retry.max_attempts > 1 {
                            state.totals.retries_exhausted += 1;
                            exhausted += 1;
                        }
                        state.lat_e2e.record(e2e_us);
                        settled.push(Settled {
                            id,
                            priority,
                            outcome: "failed",
                            terminal: true,
                            wait_us,
                            e2e_us,
                            sampled,
                            submitted_at,
                            lane,
                        });
                    }
                }
            }
        }
    }
    // Latency histograms and sampled trace spans, outside the scheduler
    // lock. The disabled-telemetry path pays one branch and allocates
    // nothing (label strings are only built when enabled).
    if shared.telemetry.is_enabled() {
        for s in &settled {
            let prio = s.priority.to_string();
            let labels = [("priority", prio.as_str()), ("outcome", s.outcome)];
            shared.telemetry.record_hist_labeled(
                "service.latency.queue_wait_us",
                &labels,
                s.wait_us,
            );
            shared
                .telemetry
                .record_hist_labeled("service.latency.execute_us", &labels, exec_us);
            if let Some(c) = meta.compile_us {
                shared
                    .telemetry
                    .record_hist_labeled("service.latency.compile_us", &labels, c);
            }
            if s.terminal {
                shared
                    .telemetry
                    .record_hist_labeled("service.latency.e2e_us", &labels, s.e2e_us);
                if s.outcome == "ok" {
                    shared.telemetry.incr_labeled(
                        "service.tenant.completed",
                        &shared.lanes[s.lane].name,
                        1,
                    );
                }
            }
            if s.sampled && s.terminal {
                let id = s.id;
                let cat = "service.job";
                shared.telemetry.record_span_at(
                    cat,
                    &format!("job-{id}.queue_wait"),
                    s.submitted_at,
                    meta.started_at,
                );
                if let Some(c) = meta.compile_us {
                    if let Some(compile_started) =
                        meta.exec_started.checked_sub(Duration::from_micros(c))
                    {
                        shared.telemetry.record_span_at(
                            cat,
                            &format!("job-{id}.compile"),
                            compile_started,
                            meta.exec_started,
                        );
                    }
                }
                shared.telemetry.record_span_at(
                    cat,
                    &format!("job-{id}.execute"),
                    meta.exec_started,
                    settle_now,
                );
                shared.telemetry.record_span_at(
                    cat,
                    &format!("job-{id}.e2e"),
                    s.submitted_at,
                    settle_now,
                );
            }
        }
    }
    if completed > 0 {
        shared.telemetry.incr("service.jobs.completed", completed);
    }
    if failed > 0 {
        shared.telemetry.incr("service.jobs.failed", failed);
    }
    if retried > 0 {
        shared.telemetry.incr("service.retries.scheduled", retried);
        shared.work_ready.notify_all();
    }
    if exhausted > 0 {
        shared
            .telemetry
            .incr("service.retries.exhausted", exhausted);
    }
    shared.job_done.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobStatus;
    use qca_core::QubitKind;

    const BELL: &str = "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n";

    /// A circuit the fast paths cannot serve (the T gate keeps it off
    /// the stabilizer engines; mid-circuit measurement forces per-shot
    /// state-vector interpretation), used to keep the single worker busy
    /// while the test arranges the queue behind it.
    fn slow_circuit() -> String {
        let mut s = String::from("qubits 12\nt q[0]\n");
        for q in 0..12 {
            s.push_str(&format!("h q[{q}]\n"));
        }
        s.push_str("measure q[0]\n");
        for q in 0..12 {
            s.push_str(&format!("h q[{q}]\n"));
        }
        s.push_str("measure_all\n");
        s
    }

    fn single_worker(queue_capacity: usize) -> Service {
        Service::with_config(ServiceConfig {
            workers: 1,
            queue_capacity,
            ..ServiceConfig::default()
        })
    }

    /// Submits a slow job and blocks until the worker has dequeued it,
    /// so everything submitted next stays queued behind it.
    fn occupy_worker(handle: &ServiceHandle) -> JobId {
        let id = handle
            .submit(JobSpec::new(slow_circuit()).with_shots(400))
            .unwrap();
        while handle.stats().running == 0 {
            std::thread::yield_now();
        }
        id
    }

    fn wait(handle: &ServiceHandle, id: JobId) -> Arc<JobOutcome> {
        handle.wait(id, Duration::from_secs(60)).unwrap()
    }

    #[test]
    fn submit_wait_roundtrip_on_the_bell_state() {
        let service = single_worker(16);
        let handle = service.handle();
        let id = handle.submit(JobSpec::new(BELL).with_shots(500)).unwrap();
        let outcome = wait(&handle, id);
        assert_eq!(outcome.histogram.shots(), 500);
        for (bits, _) in outcome.histogram.iter() {
            assert!(bits == 0b00 || bits == 0b11, "non-Bell outcome {bits:#b}");
        }
        assert!(!outcome.cache_hit, "first submission must compile");
        assert_eq!(outcome.batch_size, 1);
        let stats = handle.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cache.misses, 1);
        service.shutdown();
    }

    #[test]
    fn repeat_submission_hits_the_cache() {
        let service = single_worker(16);
        let handle = service.handle();
        let cold = wait(
            &handle,
            handle.submit(JobSpec::new(BELL).with_seed(7)).unwrap(),
        );
        // Same circuit in different formatting: canonicalisation makes it
        // the same artifact.
        let warm = wait(
            &handle,
            handle
                .submit(
                    JobSpec::new("qubits 2\n h  q[0]\ncnot q[0],q[1]\nmeasure_all\n").with_seed(7),
                )
                .unwrap(),
        );
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(cold.histogram, warm.histogram, "seeded runs must agree");
        let stats = handle.stats();
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.cache.hits, 1);
        service.shutdown();
    }

    #[test]
    fn invalid_circuits_are_rejected_at_submission() {
        let service = single_worker(4);
        let handle = service.handle();
        let err = handle.submit(JobSpec::new("qubits 1\nwarp q[0]\n"));
        assert!(matches!(err, Err(ServiceError::Parse(_))), "{err:?}");
        assert_eq!(handle.stats().submitted, 0);
        service.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let service = single_worker(2);
        let handle = service.handle();
        let blocker = occupy_worker(&handle);
        handle.submit(JobSpec::new(BELL).with_seed(1)).unwrap();
        handle.submit(JobSpec::new(BELL).with_seed(2)).unwrap();
        let err = handle.submit(JobSpec::new(BELL).with_seed(3));
        assert_eq!(err, Err(ServiceError::QueueFull { capacity: 2 }));
        assert_eq!(handle.stats().rejected, 1);
        wait(&handle, blocker);
        service.shutdown();
    }

    #[test]
    fn queued_jobs_can_be_cancelled_but_running_jobs_cannot() {
        let service = single_worker(16);
        let handle = service.handle();
        let blocker = occupy_worker(&handle);
        let queued = handle.submit(JobSpec::new(BELL)).unwrap();
        assert_eq!(handle.cancel(queued), Ok(true));
        assert_eq!(handle.poll(queued), Ok(JobStatus::Cancelled));
        assert_eq!(
            handle.wait(queued, Duration::from_secs(1)),
            Err(ServiceError::Cancelled)
        );
        assert_eq!(handle.cancel(blocker), Ok(false), "already running");
        wait(&handle, blocker);
        assert_eq!(handle.stats().cancelled, 1);
        service.shutdown();
    }

    #[test]
    fn expired_deadlines_fail_instead_of_running() {
        let service = single_worker(16);
        let handle = service.handle();
        let blocker = occupy_worker(&handle);
        let doomed = handle
            .submit(JobSpec::new(BELL).with_deadline_ms(1))
            .unwrap();
        let err = handle.wait(doomed, Duration::from_secs(60));
        assert_eq!(err, Err(ServiceError::DeadlineExceeded { deadline_ms: 1 }));
        wait(&handle, blocker);
        let stats = handle.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
        service.shutdown();
    }

    #[test]
    fn identical_queued_jobs_coalesce_into_one_execution() {
        let service = single_worker(16);
        let handle = service.handle();
        let blocker = occupy_worker(&handle);
        let spec = JobSpec::new(BELL).with_seed(11).with_shots(200);
        let ids: Vec<JobId> = (0..3)
            .map(|_| handle.submit(spec.clone()).unwrap())
            .collect();
        wait(&handle, blocker);
        let outcomes: Vec<Arc<JobOutcome>> = ids.iter().map(|&id| wait(&handle, id)).collect();
        for outcome in &outcomes {
            assert_eq!(outcome.batch_size, 3);
            assert_eq!(outcome.histogram, outcomes[0].histogram);
        }
        let stats = handle.stats();
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.completed, 4);
        // One compile for the blocker, one for the whole batch.
        assert_eq!(stats.cache.misses, 2);
        service.shutdown();
    }

    #[test]
    fn higher_priority_jobs_dequeue_first() {
        let service = single_worker(16);
        let handle = service.handle();
        let blocker = occupy_worker(&handle);
        // Distinct seeds so nothing coalesces; submitted low-to-high.
        let ids: Vec<JobId> = (0..4u8)
            .map(|p| {
                handle
                    .submit(JobSpec::new(BELL).with_seed(u64::from(p)).with_priority(p))
                    .unwrap()
            })
            .collect();
        wait(&handle, blocker);
        let waits: Vec<u64> = ids.iter().map(|&id| wait(&handle, id).wait_us).collect();
        for pair in waits.windows(2) {
            assert!(
                pair[0] > pair[1],
                "lower priority must wait longer: {waits:?}"
            );
        }
        service.shutdown();
    }

    #[test]
    fn sharded_sweeps_match_the_single_worker_histogram() {
        let spec = JobSpec::new(BELL).with_seed(3).with_shots(20_000);
        let serial = Service::with_config(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let reference = wait(
            &serial.handle(),
            serial.handle().submit(spec.clone()).unwrap(),
        );
        assert_eq!(reference.shards, 1);
        serial.shutdown();
        let pooled = Service::with_config(ServiceConfig {
            workers: 4,
            shard_min_shots: 1000,
            ..ServiceConfig::default()
        });
        let sharded = wait(&pooled.handle(), pooled.handle().submit(spec).unwrap());
        assert!(sharded.shards > 1, "expected a sharded sweep");
        assert_eq!(
            reference.histogram, sharded.histogram,
            "sharding must be bit-identical to a single-worker run"
        );
        pooled.shutdown();
    }

    #[test]
    fn density_engine_jobs_run_unsharded() {
        let service = Service::with_config(ServiceConfig {
            workers: 4,
            shard_min_shots: 100,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let spec = JobSpec::new(BELL)
            .with_engine(Engine::DensityMatrix)
            .with_qubits(QubitKind::real_transmon())
            .with_shots(2000);
        let outcome = wait(&handle, handle.submit(spec).unwrap());
        assert_eq!(outcome.shards, 1, "density jobs must never shard");
        assert_eq!(outcome.histogram.shots(), 2000);
        service.shutdown();
    }

    #[test]
    fn clifford_jobs_dispatch_to_stabilizer_engines() {
        let service = single_worker(16);
        let handle = service.handle();
        // Terminal-measured Clifford -> Pauli-frame sampler.
        let bell = wait(&handle, handle.submit(JobSpec::new(BELL)).unwrap());
        assert_eq!(bell.engine, "pauli_frame");
        assert_eq!(bell.class, "clifford_terminal");
        assert_eq!(bell.histogram.count(0b01) + bell.histogram.count(0b10), 0);
        // Mid-circuit measurement -> tableau executor.
        let mid = "qubits 2\nh q[0]\nmeasure q[0]\nc-x b[0], q[1]\nmeasure_all\n";
        let mid = wait(&handle, handle.submit(JobSpec::new(mid)).unwrap());
        assert_eq!(mid.engine, "tableau");
        assert_eq!(mid.class, "clifford");
        // A T gate pins the job to the state-vector engine.
        let t = wait(
            &handle,
            handle
                .submit(JobSpec::new("qubits 1\nt q[0]\nmeasure_all\n"))
                .unwrap(),
        );
        assert_eq!(t.engine, "state_vector");
        assert_eq!(t.class, "general");
        service.shutdown();
    }

    #[test]
    fn forced_engine_mismatch_is_a_typed_failure() {
        let service = single_worker(16);
        let handle = service.handle();
        let forced =
            JobSpec::new("qubits 1\nt q[0]\nmeasure_all\n").with_force_engine(Engine::Tableau);
        let id = handle.submit(forced).unwrap();
        match handle.wait(id, Duration::from_secs(10)) {
            Err(ServiceError::Execute(msg)) => {
                assert!(msg.contains("engine mismatch"), "unexpected message: {msg}");
            }
            other => panic!("expected a typed execute error, got {other:?}"),
        }
        // Forcing the frame sampler onto a mid-circuit-measurement plan
        // fails the same way; forcing a matching engine succeeds.
        let mid = "qubits 2\nh q[0]\nmeasure q[0]\nc-x b[0], q[1]\nmeasure_all\n";
        let id = handle
            .submit(JobSpec::new(mid).with_force_engine(Engine::PauliFrame))
            .unwrap();
        assert!(matches!(
            handle.wait(id, Duration::from_secs(10)),
            Err(ServiceError::Execute(_))
        ));
        let ok = wait(
            &handle,
            handle
                .submit(JobSpec::new(mid).with_force_engine(Engine::Tableau))
                .unwrap(),
        );
        assert_eq!(ok.engine, "tableau");
        service.shutdown();
    }

    /// A GHZ chain over `n` qubits with a terminal measure run on the
    /// first `k`.
    fn ghz_source(n: usize, k: usize) -> String {
        let mut s = format!("qubits {n}\nh q[0]\n");
        for q in 0..n - 1 {
            s.push_str(&format!("cnot q[{q}], q[{}]\n", q + 1));
        }
        for q in 0..k {
            s.push_str(&format!("measure q[{q}]\n"));
        }
        s
    }

    #[test]
    fn thousand_qubit_ghz_serves_identically_at_any_worker_count() {
        // Far past MAX_SIM_QUBITS = 30: only the stabilizer path can
        // serve this, and its histogram must be bit-identical whether
        // the sweep runs unsharded or sharded 2 or 4 ways.
        let spec = JobSpec::new(ghz_source(1000, 32))
            .with_seed(5)
            .with_shots(2000);
        let mut histograms = Vec::new();
        for workers in [1, 2, 4] {
            let service = Service::with_config(ServiceConfig {
                workers,
                shard_min_shots: 500,
                ..ServiceConfig::default()
            });
            let handle = service.handle();
            let outcome = wait(&handle, handle.submit(spec.clone()).unwrap());
            assert_eq!(outcome.engine, "pauli_frame");
            assert_eq!(outcome.class, "clifford_terminal");
            assert_eq!(outcome.histogram.shots(), 2000);
            if workers > 1 {
                assert!(outcome.shards > 1, "expected a sharded sweep");
            }
            let all_ones = (1u64 << 32) - 1;
            assert_eq!(
                outcome.histogram.count(0) + outcome.histogram.count(all_ones),
                2000,
                "GHZ must only ever measure all-zeros or all-ones"
            );
            histograms.push(outcome.histogram.clone());
            service.shutdown();
        }
        assert_eq!(histograms[0], histograms[1]);
        assert_eq!(histograms[0], histograms[2]);
    }

    #[test]
    fn shutdown_rejects_new_work_and_drains_the_queue() {
        let service = single_worker(16);
        let handle = service.handle();
        let blocker = occupy_worker(&handle);
        let queued = handle.submit(JobSpec::new(BELL)).unwrap();
        service.shutdown();
        assert_eq!(
            handle.submit(JobSpec::new(BELL)),
            Err(ServiceError::ShuttingDown)
        );
        // Both in-flight and queued jobs finished before shutdown returned.
        assert!(handle.poll(blocker).unwrap().is_terminal());
        assert!(handle.poll(queued).unwrap().is_terminal());
    }

    #[test]
    fn unknown_tickets_are_typed_errors() {
        let service = single_worker(4);
        let handle = service.handle();
        assert_eq!(handle.poll(JobId(999)), Err(ServiceError::UnknownJob(999)));
        assert_eq!(
            handle.cancel(JobId(999)),
            Err(ServiceError::UnknownJob(999))
        );
        assert_eq!(
            handle.wait(JobId(999), Duration::from_millis(10)),
            Err(ServiceError::UnknownJob(999))
        );
        service.shutdown();
    }
}
